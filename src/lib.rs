//! Workspace facade for the authenticated shortest-path verification
//! system (reproduction of Yiu, Lin, Mouratidis, ICDE 2010).
//!
//! The implementation lives in three layered crates, re-exported here:
//!
//! * [`graph`] ([`spnet_graph`]) — spatial road networks, shortest-path
//!   algorithms and the reusable [`spnet_graph::search::SearchWorkspace`].
//! * [`crypto`] ([`spnet_crypto`]) — SHA-256, Merkle trees, RSA.
//! * [`core`] ([`spnet_core`]) — the owner/provider/client protocol.
//!
//! The workspace-level `tests/` and `examples/` directories exercise the
//! full stack through this package.

pub use spnet_core as core;
pub use spnet_crypto as crypto;
pub use spnet_graph as graph;
