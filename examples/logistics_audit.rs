//! Logistics audit scenario: a shipper reconciles a month of routing
//! invoices from two competing route providers — one honest, one
//! quietly returning approximate (cheaper-to-compute) routes.
//!
//! Both providers serve the same owner-signed network with FULL hints
//! (tiny proofs, ideal for high-volume auditing). The audit verifies
//! every invoice and quantifies the overcharge of the dishonest one.
//!
//! ```sh
//! cargo run --release -p spnet-bench --example logistics_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_core::provider::ServiceProvider;
use spnet_core::tamper::{apply, Attack};
use spnet_graph::gen::grid_network;
use spnet_graph::workload::make_workload;

fn main() {
    let graph = grid_network(18, 18, 1.2, 555);
    println!(
        "distribution network: {} depots/junctions, {} segments",
        graph.num_nodes(),
        graph.num_edges()
    );

    let mut rng = StdRng::seed_from_u64(555);
    let published = DataOwner::publish(
        &graph,
        &MethodConfig::Full {
            use_floyd_warshall: false,
        },
        &SetupConfig::default(),
        &mut rng,
    );
    println!(
        "owner: FULL distance materialization in {:.2}s",
        published.construction_seconds
    );
    let provider = ServiceProvider::new(published.package);
    let auditor = Client::new(published.public_key);

    let deliveries = make_workload(&graph, 5000.0, 20, 556);
    let mut honest_ok = 0usize;
    let mut fraud_caught = 0usize;
    let mut overcharge = 0.0f64;
    for (i, &(from, to)) in deliveries.pairs.iter().enumerate() {
        let honest = provider.answer(from, to).expect("reachable");
        // Provider A: honest.
        auditor
            .verify(from, to, &honest)
            .expect("honest invoice verifies");
        honest_ok += 1;
        // Provider B: returns a detour on every 3rd delivery.
        if i % 3 == 0 {
            if let Some(padded) = apply(Attack::SuboptimalPath, &graph, &honest) {
                let delta = padded.path.distance - honest.path.distance;
                match auditor.verify(from, to, &padded) {
                    Err(e) => {
                        fraud_caught += 1;
                        overcharge += delta;
                        println!(
                            "delivery {:>2}: padded invoice (+{:.1} units) rejected — {e}",
                            i + 1,
                            delta
                        );
                    }
                    Ok(_) => unreachable!("padded route must not verify"),
                }
            }
        }
    }
    println!(
        "audit: {honest_ok}/{} honest invoices verified, {fraud_caught} padded invoices rejected",
        deliveries.pairs.len()
    );
    println!("billed-but-bogus distance detected: {overcharge:.1} units");
}
