//! Offline round-trip: the full deployment pipeline through files and
//! bytes — the owner persists the network, the provider transmits an
//! encoded answer, the client decodes and verifies.
//!
//! ```sh
//! cargo run --release -p spnet-bench --example offline_roundtrip
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_core::wire::{decode_answer, encode_answer};
use spnet_graph::gen::Dataset;
use spnet_graph::io::{load_graph, save_graph};
use spnet_graph::NodeId;

fn main() {
    let dir = std::env::temp_dir().join("spnet_offline_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. The owner generates and archives the network.
    let graph = Dataset::De.generate(0.02, 2026);
    let graph_file = dir.join("network.graph");
    save_graph(&graph, &graph_file).expect("save");
    println!(
        "owner: archived {} nodes / {} edges to {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph_file.display()
    );

    // 2. Later (different process, same bits): reload and publish.
    let reloaded = load_graph(&graph_file).expect("load");
    assert_eq!(reloaded.num_nodes(), graph.num_nodes());
    let mut rng = StdRng::seed_from_u64(2026);
    let published = DataOwner::publish(
        &reloaded,
        &MethodConfig::Hyp { cells: 25 },
        &SetupConfig::default(),
        &mut rng,
    );
    println!(
        "owner: HYP structures signed in {:.2}s",
        published.construction_seconds
    );

    // 3. The provider answers; the answer travels as bytes.
    let provider = ServiceProvider::new(published.package);
    let (vs, vt) = (NodeId(3), NodeId(reloaded.num_nodes() as u32 - 2));
    let answer = provider.answer(vs, vt).expect("reachable");
    let bytes = encode_answer(&answer);
    let answer_file = dir.join("answer.bin");
    std::fs::write(&answer_file, &bytes).expect("write answer");
    println!(
        "provider: {} → {} answered; {} bytes written to {}",
        vs,
        vt,
        bytes.len(),
        answer_file.display()
    );

    // 4. The client reads the bytes and verifies.
    let received = std::fs::read(&answer_file).expect("read answer");
    let decoded = decode_answer(&received).expect("well-formed answer");
    let client = Client::new(published.public_key);
    let verified = client
        .verify(vs, vt, &decoded)
        .expect("authentic & shortest");
    println!(
        "client: ✔ decoded {} bytes, verified shortest path of distance {:.1} ({} hops)",
        received.len(),
        verified.distance,
        decoded.path.num_edges()
    );

    // 5. A flipped byte anywhere must not verify.
    let mut corrupted = received.clone();
    corrupted[received.len() / 2] ^= 0x40;
    match decode_answer(&corrupted) {
        Err(e) => println!("client: corrupted transmission rejected at decode — {e}"),
        Ok(bad) => match client.verify(vs, vt, &bad) {
            Err(e) => println!("client: corrupted transmission rejected at verify — {e}"),
            Ok(_) => unreachable!("corruption must not verify"),
        },
    }
    std::fs::remove_dir_all(&dir).ok();
}
