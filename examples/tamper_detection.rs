//! Tamper-detection tour: every attack from the threat model, against
//! every verification method, with the client's rejection reason.
//!
//! ```sh
//! cargo run --release -p spnet-bench --example tamper_detection
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_core::provider::ServiceProvider;
use spnet_core::tamper::{apply, ALL_ATTACKS};
use spnet_graph::gen::grid_network;
use spnet_graph::NodeId;

fn main() {
    let graph = grid_network(12, 12, 1.25, 321);
    let (vs, vt) = (NodeId(0), NodeId(143));
    let methods = vec![
        MethodConfig::Dij,
        MethodConfig::Full {
            use_floyd_warshall: false,
        },
        MethodConfig::Ldm(LdmConfig {
            landmarks: 16,
            ..LdmConfig::default()
        }),
        MethodConfig::Hyp { cells: 16 },
    ];

    for method in methods {
        let mut rng = StdRng::seed_from_u64(321);
        let published = DataOwner::publish(&graph, &method, &SetupConfig::default(), &mut rng);
        let provider = ServiceProvider::new(published.package);
        let client = Client::new(published.public_key);
        let honest = provider.answer(vs, vt).unwrap();
        let verified = client.verify(vs, vt, &honest).expect("honest verifies");
        println!(
            "\n=== {} ===  honest answer: distance {:.1}, proof {:.1} KB — accepted",
            method.name(),
            verified.distance,
            honest.stats().total_kbytes()
        );
        for attack in ALL_ATTACKS {
            match apply(attack, &graph, &honest) {
                None => println!("  {attack:?}: not expressible for this answer"),
                Some(evil) => match client.verify(vs, vt, &evil) {
                    Err(e) => println!("  {attack:?}: rejected — {e}"),
                    Ok(_) => println!("  {attack:?}: !!! ACCEPTED (protocol failure) !!!"),
                },
            }
        }
    }
}
