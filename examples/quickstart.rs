//! Quickstart: the full three-party protocol in ~40 lines.
//!
//! ```sh
//! cargo run --release -p spnet-bench --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_graph::gen::grid_network;
use spnet_graph::NodeId;

fn main() {
    // 1. A road network: 400 junctions on a jittered grid, normalized
    //    to the paper's [0..10,000]² extent.
    let graph = grid_network(20, 20, 1.1, 7);
    println!(
        "network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. The data owner builds and signs the authenticated structures.
    //    LDM with 32 landmarks, 12-bit quantization, ξ = 50.
    let mut rng = StdRng::seed_from_u64(7);
    let method = MethodConfig::Ldm(LdmConfig {
        landmarks: 32,
        ..LdmConfig::default()
    });
    let published = DataOwner::publish(&graph, &method, &SetupConfig::default(), &mut rng);
    println!(
        "owner: published {} hints in {:.2}s",
        method.name(),
        published.construction_seconds
    );

    // 3. The (untrusted) service provider answers a query with a proof.
    let provider = ServiceProvider::new(published.package);
    let (vs, vt) = (NodeId(0), NodeId(399));
    let answer = provider.answer(vs, vt).expect("connected network");
    let stats = answer.stats();
    println!(
        "provider: path with {} edges, distance {:.1}; proof = {:.1} KB (ΓS {:.1} KB + ΓT {:.1} KB)",
        answer.path.num_edges(),
        answer.path.distance,
        stats.total_kbytes(),
        stats.s_bytes as f64 / 1024.0,
        stats.t_bytes as f64 / 1024.0,
    );

    // 4. The client verifies using only the owner's public key.
    let client = Client::new(published.public_key);
    match client.verify(vs, vt, &answer) {
        Ok(v) => println!(
            "client: ✔ verified shortest path, distance {:.1}",
            v.distance
        ),
        Err(e) => println!("client: ✘ REJECTED — {e}"),
    }
}
