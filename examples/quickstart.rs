//! Quickstart: the full three-party protocol through the `SpService`
//! session facade — single queries, a streamed batch, and an epoch
//! bump observed as explicit session invalidation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::gen::grid_network;
use spnet_graph::NodeId;

fn main() {
    // 1. A road network: 400 junctions on a jittered grid, normalized
    //    to the paper's [0..10,000]² extent.
    let graph = grid_network(20, 20, 1.1, 7);
    println!(
        "network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. The data owner builds and signs the authenticated structures.
    //    DIJ here, so the owner can also publish edge updates later;
    //    swap in FULL/LDM/HYP and nothing below changes — every method
    //    is served through its `AuthMethod` trait object.
    let mut rng = StdRng::seed_from_u64(7);
    let keypair = RsaKeyPair::generate(&mut rng, 256);
    let method = MethodConfig::Dij;
    let published = DataOwner::publish_with_key(&graph, &method, &SetupConfig::default(), &keypair);
    println!(
        "owner: published {} hints in {:.2}s",
        method.name(),
        published.construction_seconds
    );

    // 3. The (untrusted) service provider runs behind the facade; the
    //    client opens a session, authenticating the signed epoch root
    //    and method params exactly once.
    let service = SpService::new(published.package);
    let session = service
        .open_session(Client::new(published.public_key))
        .expect("owner-signed epoch authenticates");
    println!(
        "client: session open — epoch {}, method {} (from signed params)",
        session.epoch(),
        session.method_name()
    );

    // 4. A verified single query.
    let (vs, vt) = (NodeId(0), NodeId(399));
    let answer = session.query(vs, vt).expect("connected network");
    println!(
        "client: ✔ verified shortest path, {} edges, distance {:.1}",
        answer.path.num_edges(),
        answer.distance
    );

    // 5. A streamed batch: the provider proves pooled chunks, the
    //    client verifies each chunk as it arrives (through the actual
    //    versioned wire frames).
    let queries: Vec<(NodeId, NodeId)> = (0..12).map(|i| (NodeId(i), NodeId(399 - i))).collect();
    let mut verified = 0usize;
    for chunk in session.query_stream_chunked(&queries, 4) {
        let answers = chunk.expect("honest stream chunk");
        verified += answers.len();
        println!(
            "client: ✔ stream chunk of {} answers verified ({verified}/{} total)",
            answers.len(),
            queries.len()
        );
    }

    // 6. The owner publishes an edge update through the service: the
    //    epoch bumps, but the open session keeps draining on the root
    //    it pinned (MVCC ring) while new sessions bind the new root.
    let (u, v, w) = graph.edges().next().expect("network has edges");
    let epoch = service
        .update_edge_weight(&keypair, u, v, w * 2.0)
        .expect("in-place incremental repair");
    println!("owner: edge ({u}, {v}) re-weighted; epoch now {epoch}");
    let pinned = session
        .query(vs, vt)
        .expect("pinned session drains on its epoch");
    println!(
        "client: ✔ pinned session (epoch {}) still serves its root, distance {:.1}",
        session.epoch(),
        pinned.distance
    );
    let fresh = service
        .open_session(Client::new(keypair.public_key().clone()))
        .expect("new epoch authenticates");
    let again = fresh.query(vs, vt).expect("fresh session serves");
    println!(
        "client: ✔ new session at epoch {}, distance {:.1}",
        fresh.epoch(),
        again.distance
    );
}
