//! Calibration / instrumentation utility for the synthetic datasets:
//! distance distribution, ball coverage per range, and LDM cone and
//! compression statistics per landmark count.
use spnet_core::methods::ldm::{gamma_nodes, LdmHints};
use spnet_core::methods::LdmConfig;
use spnet_graph::algo::{dijkstra_ball, dijkstra_path, dijkstra_sssp};
use spnet_graph::gen::Dataset;
use spnet_graph::landmark::{CompressionStrategy, LandmarkStrategy, NodePsi};
use spnet_graph::NodeId;

fn main() {
    let g = Dataset::De.generate(
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05),
        42,
    );
    let n = g.num_nodes();
    let r = dijkstra_sssp(&g, NodeId((n / 2) as u32));
    let mut d: Vec<f64> = r.dist.iter().copied().filter(|x| x.is_finite()).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "n={n} median={:.0} p90={:.0} max={:.0}",
        d[n / 2],
        d[n * 9 / 10],
        d[n - 1]
    );
    {
        let range = 2000.0;
        let b = dijkstra_ball(&g, NodeId((n / 2) as u32), range);
        let cover = b.dist.iter().filter(|x| x.is_finite()).count();
        println!("ball@{range}: {cover}/{n}");
    }
    let (s, t) = (NodeId(10), {
        // pick a target at ~2000
        let b = dijkstra_sssp(&g, NodeId(10));
        let mut best = (f64::INFINITY, NodeId(0));
        for v in g.nodes() {
            let gap = (b.dist[v.index()] - 2000.0).abs();
            if gap < best.0 {
                best = (gap, v);
            }
        }
        best.1
    });
    let dist = dijkstra_path(&g, s, t).unwrap().distance;
    println!("query dist {dist:.0}");
    for c in [50usize, 100, 200, 400, 800] {
        let hints = LdmHints::build(
            &g,
            &LdmConfig {
                landmarks: c,
                bits: 12,
                xi: 50.0,
                strategy: LandmarkStrategy::Farthest,
                compression: CompressionStrategy::HilbertSweep,
            },
            7,
        );
        let cone = gamma_nodes(&g, &hints, s, t, dist);
        let full_in_cone = cone
            .iter()
            .filter(|&&v| matches!(hints.vectors.node_psi(v), NodePsi::Full(_)))
            .count();
        let total_comp = hints.vectors.num_compressed();
        println!(
            "c={c}: cone={} full_in_cone={} graph_compressed={}/{}",
            cone.len(),
            full_in_cone,
            total_comp,
            n
        );
    }
}
