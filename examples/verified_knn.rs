//! Verified k-nearest-POI tour: an owner signs a POI directory, a
//! session answers "3 nearest charging stations" with a completeness
//! certificate, and every omission attack is rejected typed.
//!
//! ```sh
//! cargo run --release --example verified_knn
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::prelude::*;
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::gen::grid_network;
use spnet_graph::NodeId;
use spnet_queries::wire::{decode_knn_answer, encode_knn_answer};
use spnet_queries::{PoiSet, SessionQueries};

fn main() {
    // The data owner publishes the road network and, with the same
    // keypair, a signed POI directory (payload: a station id).
    let graph = grid_network(12, 12, 1.25, 777);
    let mut rng = StdRng::seed_from_u64(777);
    let keypair = RsaKeyPair::generate(&mut rng, SetupConfig::default().rsa_bits);
    let published = DataOwner::publish_with_key(
        &graph,
        &MethodConfig::Hyp { cells: 16 },
        &SetupConfig::default(),
        &keypair,
    );
    let stations: Vec<(NodeId, f64)> = [9u32, 37, 70, 101, 126, 143]
        .iter()
        .enumerate()
        .map(|(i, &v)| (NodeId(v), i as f64))
        .collect();
    let pois = PoiSet::publish(&keypair, &stations).unwrap();
    println!(
        "owner signed {} POIs under root tag {:?}",
        pois.len(),
        pois.signed().meta.tag
    );

    // A client session asks for the 3 nearest, through the wire.
    let service = SpService::new(published.package);
    let session = service
        .open_session(Client::new(published.public_key))
        .unwrap();
    let me = NodeId(66);
    let answer = session.answer_knn(&pois, me, 3).unwrap();
    let bytes = encode_knn_answer(&answer);
    println!(
        "\nprovider answered k=3 from {me}: certificate {} bytes on the wire",
        bytes.len()
    );
    let decoded = decode_knn_answer(&bytes).unwrap();
    let nearest = session.verify_knn(me, 3, &decoded).unwrap();
    for (rank, n) in nearest.iter().enumerate() {
        println!(
            "  #{} station {} (payload {}): proven distance {:.1}",
            rank + 1,
            n.node,
            n.payload,
            n.distance
        );
    }
    println!("completeness: no unlisted POI can be closer — certified");

    // Omission attacks, each rejected with a typed reason.
    println!("\ntamper tour:");
    let mut evil = answer.clone();
    evil.poi_proof.entries.pop();
    match session.verify_knn(me, 3, &evil) {
        Err(e) => println!("  dropped directory entry: rejected — {e}"),
        Ok(_) => panic!("omission accepted"),
    }
    let mut evil = answer.clone();
    evil.batch.queries.pop();
    match session.verify_knn(me, 3, &evil) {
        Err(e) => println!("  dropped distance proof: rejected — {e}"),
        Ok(_) => panic!("omission accepted"),
    }
    let other = RsaKeyPair::generate(&mut rng, SetupConfig::default().rsa_bits);
    let fake = PoiSet::publish(&other, &stations[..2]).unwrap();
    let mut evil = answer.clone();
    evil.poi_signed = fake.signed().clone();
    match session.verify_knn(me, 3, &evil) {
        Err(e) => println!("  substituted POI set: rejected — {e}"),
        Ok(_) => panic!("substitution accepted"),
    }
}
