//! Persist & restart: the owner publishes once, snapshots the signed
//! structures to disk, and a later provider process cold-starts from
//! the snapshot — zero re-signing — while clients keep verifying
//! against the original signed root.
//!
//! ```sh
//! cargo run --release --example persist_restart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spnet_core::owner::ProviderPackage;
use spnet_core::prelude::*;
use spnet_core::wire::encode_answer;
use spnet_graph::gen::Dataset;
use spnet_graph::NodeId;

fn main() {
    let dir = std::env::temp_dir().join("spnet_persist_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. The owner builds and signs the authenticated network — the
    //    only place in the whole lifecycle where the private key acts.
    let graph = Dataset::De.generate(0.05, 2026);
    let mut rng = StdRng::seed_from_u64(2026);
    let sign_ops_before_build = spnet_crypto::rsa::signing_ops();
    let published = DataOwner::publish(
        &graph,
        &MethodConfig::Hyp { cells: 25 },
        &SetupConfig::default(),
        &mut rng,
    );
    println!(
        "owner: {} nodes published in {:.2}s using {} RSA signing ops",
        graph.num_nodes(),
        published.construction_seconds,
        spnet_crypto::rsa::signing_ops() - sign_ops_before_build
    );

    // 2. One snapshot file captures everything a provider needs.
    let path = published.save_snapshot(&dir).expect("snapshot");
    let snapshot_bytes = std::fs::metadata(&path).expect("metadata").len();
    println!(
        "owner: snapshot written — {} bytes at {}",
        snapshot_bytes,
        path.display()
    );

    // 3. "Restart": a fresh provider opens the snapshot lazily. The
    //    signed roots are RSA-verified against the loaded bytes, but
    //    nothing is re-signed — the private key is not even present.
    let sign_ops_before_load = spnet_crypto::rsa::signing_ops();
    let loaded = ProviderPackage::load_snapshot(&dir, StoreBackend::File).expect("load");
    assert_eq!(
        spnet_crypto::rsa::signing_ops(),
        sign_ops_before_load,
        "cold start must not sign"
    );
    assert_eq!(loaded.public_key, published.public_key);
    println!(
        "provider: cold start from FileStore — 0 signing ops, lazy={}, {} pages faulted at open",
        loaded.store.is_lazy(),
        loaded.store.fault_count()
    );

    // 4. The cold provider serves; proofs fault pages in on demand and
    //    are byte-identical to the freshly built provider's.
    let fresh = ServiceProvider::new(published.package);
    let cold = ServiceProvider::new(loaded.package);
    let (vs, vt) = (NodeId(3), NodeId(graph.num_nodes() as u32 - 2));
    let fresh_bytes = encode_answer(&fresh.answer(vs, vt).expect("reachable"));
    let cold_bytes = encode_answer(&cold.answer(vs, vt).expect("reachable"));
    assert_eq!(fresh_bytes, cold_bytes, "cold answers must be byte-equal");
    println!(
        "provider: {} → {} answered from disk; {} bytes, {} pages faulted so far",
        vs,
        vt,
        cold_bytes.len(),
        loaded.store.fault_count()
    );

    // 5. The client still holds only the owner's public key from the
    //    original publication — the restart is invisible to it.
    let client = Client::new(published.public_key);
    let verified = client
        .verify(vs, vt, &cold.answer(vs, vt).expect("reachable"))
        .expect("authentic & shortest");
    println!(
        "client: ✔ verified shortest path of distance {:.1} against the original signed root",
        verified.distance
    );

    std::fs::remove_dir_all(&dir).ok();
}
