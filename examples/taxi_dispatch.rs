//! Taxi dispatch scenario (the paper's motivating application).
//!
//! A transport authority (owner) publishes the city network with HYP
//! hints; a routing service (provider) answers pickup → destination
//! queries from taxi drivers (clients), each of whom verifies that the
//! quoted route really is shortest — a driver billing by a
//! pre-computed fare cannot afford a provider that favors sponsored
//! detours.
//!
//! ```sh
//! cargo run --release -p spnet-bench --example taxi_dispatch
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spnet_core::prelude::*;
use spnet_graph::gen::Dataset;
use spnet_graph::workload::make_workload;

fn main() {
    // A Germany-like network at 2% scale (≈ 580 junctions).
    let graph = Dataset::De.generate(0.02, 99);
    println!(
        "city network ({}-like): {} junctions, {} road segments",
        Dataset::De.name(),
        graph.num_nodes(),
        graph.num_edges()
    );

    let mut rng = StdRng::seed_from_u64(99);
    let published = DataOwner::publish(
        &graph,
        &MethodConfig::Hyp { cells: 49 },
        &SetupConfig::default(),
        &mut rng,
    );
    println!(
        "authority: HYP hints (p = 49 cells) built in {:.2}s",
        published.construction_seconds
    );
    let provider = ServiceProvider::new(published.package);
    let client_key = published.public_key;

    // A shift of 12 rides at ~2,500 units each.
    let rides = make_workload(&graph, 2500.0, 12, 101);
    let mut total_kb = 0.0;
    let mut total_distance = 0.0;
    for (i, &(pickup, dest)) in rides.pairs.iter().enumerate() {
        let answer = provider.answer(pickup, dest).expect("reachable");
        let client = Client::new(client_key.clone());
        let verified = client
            .verify(pickup, dest, &answer)
            .expect("authority-signed route verifies");
        let kb = answer.stats().total_kbytes();
        total_kb += kb;
        total_distance += verified.distance;
        println!(
            "ride {:>2}: {} → {} | {:>2} segments | dist {:>7.1} | proof {:>6.2} KB",
            i + 1,
            pickup,
            dest,
            answer.path.num_edges(),
            verified.distance,
            kb
        );
    }
    println!(
        "shift total: {:.0} distance units driven, {:.1} KB of proofs ({:.2} KB/ride avg)",
        total_distance,
        total_kb,
        total_kb / rides.pairs.len() as f64
    );

    // A driver going off-book: pick a random ride and fabricate a 10%
    // shorter fare — verification must catch it.
    let &(pickup, dest) = &rides.pairs[rng.random_range(0..rides.pairs.len())];
    let mut fake = provider.answer(pickup, dest).unwrap();
    fake.path.distance *= 0.9;
    let client = Client::new(client_key);
    match client.verify(pickup, dest, &fake) {
        Err(e) => println!("fare fraud attempt rejected: {e}"),
        Ok(_) => unreachable!("understated fare must not verify"),
    }
}
