//! Spatial road-network substrate for authenticated shortest-path
//! verification.
//!
//! This crate provides every graph-side building block of the ICDE 2010
//! paper *Efficient Verification of Shortest Path Search via
//! Authenticated Hints* (Yiu, Lin, Mouratidis):
//!
//! * [`graph`] / [`builder`] — an undirected, weighted, spatial graph
//!   `G = (V, E, W)` in compressed sparse row form, with node
//!   coordinates normalized to the paper's `[0..10,000]²` extent.
//! * [`algo`] — Dijkstra (full / point-to-point / bounded-ball), A\*
//!   with pluggable lower bounds, bidirectional Dijkstra, Floyd–Warshall,
//!   all-pairs-shortest-paths via repeated Dijkstra, and arc-flags
//!   (the Section II-C partial pre-computation scheme).
//! * [`landmark`] — landmark selection, distance vectors Ψ(v) (Eq. 2),
//!   the lower bound `distLB` (Eq. 3), `b`-bit quantization (Eq. 5,
//!   Lemma 3) and greedy distance-vector compression (Lemma 4).
//! * [`order`] — the five graph-node orderings of the Merkle tree
//!   experiment (Fig. 10): breadth-first, depth-first, Hilbert, kd-tree
//!   and random.
//! * [`partition`] — the HiTi-style grid partitioning with border-node
//!   classification used by the HYP method (Section V-B).
//! * [`gen`] — synthetic spatial road networks standing in for the
//!   paper's DE/ARG/IND/NA datasets (see `DESIGN.md` §4), plus a
//!   random-geometric generator used in tests.
//! * [`workload`] — query workload generation: `(vs, vt)` pairs whose
//!   shortest-path distance is as close as possible to a target query
//!   range (Section VI-A).
//! * [`io`] — plain-text persistence with bit-exact weight round-trips
//!   (digest-critical).
//!
//! # Example
//!
//! ```
//! use spnet_graph::gen::grid_network;
//! use spnet_graph::algo::dijkstra_path;
//! use spnet_graph::NodeId;
//!
//! let g = grid_network(8, 8, 1.10, 42);
//! let path = dijkstra_path(&g, NodeId(0), NodeId(63)).expect("connected");
//! assert!(path.distance > 0.0);
//! ```

pub mod algo;
pub mod builder;
pub mod error;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod io;
pub mod landmark;
pub mod ofloat;
pub mod order;
pub mod partition;
pub mod path;
pub mod search;
pub mod workload;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;
pub use ids::NodeId;
pub use ofloat::OrderedF64;
pub use path::Path;
pub use search::{FrontierKind, SearchView, SearchWorkspace};
