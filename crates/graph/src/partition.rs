//! Euclidean grid partitioning with border-node classification — the
//! first level of the HiTi graph \[28\] used by the HYP method
//! (Section V-B).
//!
//! Nodes are assigned to `p = side²` grid cells by coordinates. A node
//! is a *border node* of its cell iff it has an edge to a node in a
//! different cell; otherwise it is an *inner node* (Figure 7a).

use crate::graph::Graph;
use crate::ids::NodeId;

/// A grid partition of the node set.
#[derive(Debug, Clone)]
pub struct GridPartition {
    side: u32,
    /// Cell id of each node (row-major `cy·side + cx`).
    cell_of: Vec<u32>,
    /// Nodes per cell.
    members: Vec<Vec<NodeId>>,
    /// Border flag per node.
    border: Vec<bool>,
}

impl GridPartition {
    /// Partitions `g` into `side × side` cells over its bounding box.
    ///
    /// # Panics
    /// Panics if `side == 0` or the graph is empty.
    pub fn build(g: &Graph, side: u32) -> Self {
        assert!(side > 0, "side must be positive");
        let (minx, miny, maxx, maxy) = g.bounding_box().expect("non-empty graph");
        let w = (maxx - minx).max(f64::MIN_POSITIVE);
        let h = (maxy - miny).max(f64::MIN_POSITIVE);
        let n = g.num_nodes();
        let mut cell_of = Vec::with_capacity(n);
        let mut members = vec![Vec::new(); (side * side) as usize];
        for v in g.nodes() {
            let (x, y) = g.coords(v);
            let cx = (((x - minx) / w) * side as f64).min(side as f64 - 1.0) as u32;
            let cy = (((y - miny) / h) * side as f64).min(side as f64 - 1.0) as u32;
            let cell = cy * side + cx;
            cell_of.push(cell);
            members[cell as usize].push(v);
        }
        let border: Vec<bool> = g
            .nodes()
            .map(|v| {
                g.neighbors(v)
                    .any(|(u, _)| cell_of[u.index()] != cell_of[v.index()])
            })
            .collect();
        GridPartition {
            side,
            cell_of,
            members,
            border,
        }
    }

    /// Builds a partition with approximately `p` cells (`side = √p`
    /// rounded; the paper's `p` values are perfect squares).
    pub fn with_cells(g: &Graph, p: usize) -> Self {
        let side = (p as f64).sqrt().round().max(1.0) as u32;
        Self::build(g, side)
    }

    /// Grid side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of cells `p = side²`.
    pub fn num_cells(&self) -> usize {
        (self.side * self.side) as usize
    }

    /// Cell id of node `v` — the `v.c` attribute of Eq. 7.
    #[inline]
    pub fn cell_of(&self, v: NodeId) -> u32 {
        self.cell_of[v.index()]
    }

    /// Whether `v` is a border node — the `v.is_border` attribute.
    #[inline]
    pub fn is_border(&self, v: NodeId) -> bool {
        self.border[v.index()]
    }

    /// All nodes of a cell.
    pub fn cell_members(&self, cell: u32) -> &[NodeId] {
        &self.members[cell as usize]
    }

    /// Border nodes of a cell.
    pub fn cell_borders(&self, cell: u32) -> Vec<NodeId> {
        self.members[cell as usize]
            .iter()
            .copied()
            .filter(|&v| self.border[v.index()])
            .collect()
    }

    /// All border nodes of the graph, ascending by id.
    pub fn all_borders(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .border
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;

    #[test]
    fn every_node_in_exactly_one_cell() {
        let g = grid_network(10, 10, 1.15, 80);
        let p = GridPartition::build(&g, 4);
        let total: usize = (0..p.num_cells() as u32)
            .map(|c| p.cell_members(c).len())
            .sum();
        assert_eq!(total, g.num_nodes());
        for v in g.nodes() {
            assert!(p.cell_members(p.cell_of(v)).contains(&v));
        }
    }

    #[test]
    fn border_definition_matches_edges() {
        let g = grid_network(12, 12, 1.2, 81);
        let p = GridPartition::build(&g, 5);
        for v in g.nodes() {
            let crosses = g.neighbors(v).any(|(u, _)| p.cell_of(u) != p.cell_of(v));
            assert_eq!(p.is_border(v), crosses);
        }
    }

    #[test]
    fn inner_nodes_have_in_cell_neighbors_only() {
        let g = grid_network(12, 12, 1.2, 82);
        let p = GridPartition::build(&g, 4);
        for v in g.nodes() {
            if !p.is_border(v) {
                for (u, _) in g.neighbors(v) {
                    assert_eq!(p.cell_of(u), p.cell_of(v));
                }
            }
        }
    }

    #[test]
    fn single_cell_has_no_borders() {
        let g = grid_network(6, 6, 1.1, 83);
        let p = GridPartition::build(&g, 1);
        assert_eq!(p.num_cells(), 1);
        assert!(g.nodes().all(|v| !p.is_border(v)));
    }

    #[test]
    fn more_cells_more_borders() {
        let g = grid_network(20, 20, 1.1, 84);
        let few = GridPartition::with_cells(&g, 4).all_borders().len();
        let many = GridPartition::with_cells(&g, 64).all_borders().len();
        assert!(many > few, "{many} vs {few}");
    }

    #[test]
    fn with_cells_rounds_to_square() {
        let g = grid_network(8, 8, 1.1, 85);
        assert_eq!(GridPartition::with_cells(&g, 25).side(), 5);
        assert_eq!(GridPartition::with_cells(&g, 100).side(), 10);
        assert_eq!(GridPartition::with_cells(&g, 1).side(), 1);
    }

    #[test]
    fn all_borders_sorted_unique() {
        let g = grid_network(10, 10, 1.2, 86);
        let p = GridPartition::build(&g, 3);
        let b = p.all_borders();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
