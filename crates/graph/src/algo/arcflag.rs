//! Arc-flags \[25\] — the partial pre-computation scheme reviewed in
//! Section II-C.
//!
//! Nodes are partitioned into grid cells; every directed arc `(u → v)`
//! carries a bit-vector with one bit per cell. Bit `c` is set iff the
//! arc lies on *some* shortest path from `u` into cell `c` (computed
//! from the shortest-path DAG of every border node of `c`), or touches
//! `c` itself. A query toward target cell `c` then relaxes only arcs
//! whose bit `c` is set — typically a small corridor of the graph.
//!
//! Included as an alternative provider-side `algosp` family and as a
//! search-space baseline; the verification protocol itself never uses
//! arc-flags (clients cannot trust unauthenticated flags).

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::partition::GridPartition;
use crate::path::Path;
use crate::search::{with_thread_workspace, SearchWorkspace};

/// Arc-flag index over a grid partition.
#[derive(Debug, Clone)]
pub struct ArcFlags {
    /// Number of cells.
    p: usize,
    /// 64-bit words per arc.
    words: usize,
    /// Flags, indexed by CSR arc position × words.
    flags: Vec<u64>,
    /// Cell of each node (copied from the partition).
    cell_of: Vec<u32>,
}

impl ArcFlags {
    /// Builds arc-flags: one Dijkstra per border node (the same budget
    /// class as HYP's hint construction).
    pub fn build(g: &Graph, part: &GridPartition) -> Self {
        let p = part.num_cells();
        let words = p.div_ceil(64);
        let num_arcs = g.offsets[g.num_nodes()] as usize;
        let mut flags = vec![0u64; num_arcs * words];
        let set = |flags: &mut Vec<u64>, arc: usize, c: usize| {
            flags[arc * words + c / 64] |= 1 << (c % 64);
        };
        // Own-cell rule: arcs touching cell c are usable toward c.
        for u in g.nodes() {
            let lo = g.offsets[u.index()] as usize;
            for (k, (v, _)) in g.neighbors(u).enumerate() {
                set(&mut flags, lo + k, part.cell_of(u) as usize);
                set(&mut flags, lo + k, part.cell_of(v) as usize);
            }
        }
        // Border rule: grow the shortest-path DAG from every border
        // node b of cell c; an arc (u → v) with
        // dist(u, b) = w(u,v) + dist(v, b) lies on a shortest path into
        // c through b.
        let mut ws = SearchWorkspace::with_capacity(g.num_nodes());
        for c in 0..p as u32 {
            for b in part.cell_borders(c) {
                let d = ws.sssp(g, b);
                for u in g.nodes() {
                    let du = d.dist(u);
                    if !du.is_finite() {
                        continue;
                    }
                    let lo = g.offsets[u.index()] as usize;
                    for (k, (v, w)) in g.neighbors(u).enumerate() {
                        let dv = d.dist(v);
                        if dv.is_finite() && (du - (w + dv)).abs() <= 1e-9 * du.max(1.0) {
                            set(&mut flags, lo + k, c as usize);
                        }
                    }
                }
            }
        }
        ArcFlags {
            p,
            words,
            flags,
            cell_of: g.nodes().map(|v| part.cell_of(v)).collect(),
        }
    }

    /// Whether arc at CSR position `arc` may be relaxed toward `cell`.
    #[inline]
    fn allowed(&self, arc: usize, cell: usize) -> bool {
        self.flags[arc * self.words + cell / 64] >> (cell % 64) & 1 == 1
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.p
    }

    /// Fraction of set bits — the index's selectivity (lower = more
    /// pruning).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.flags.iter().map(|w| w.count_ones() as u64).sum();
        let total = (self.flags.len() / self.words.max(1)) as u64 * self.p as u64;
        set as f64 / total.max(1) as f64
    }
}

/// Statistics from an arc-flag query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcFlagStats {
    /// Arcs relaxed by the pruned search.
    pub relaxed: usize,
}

/// Point-to-point query using arc-flag pruning toward the target's
/// cell. Returns the exact shortest path and the relaxation count.
///
/// Runs on this thread's reused [`SearchWorkspace`]: repeated queries
/// perform zero per-query `O(|V|)` allocations (the seed
/// implementation allocated distance/parent vectors plus a heap per
/// call).
pub fn arcflag_path(
    g: &Graph,
    af: &ArcFlags,
    source: NodeId,
    target: NodeId,
) -> Option<(Path, ArcFlagStats)> {
    let tc = af.cell_of[target.index()] as usize;
    with_thread_workspace(|ws| {
        ws.begin_manual(g, source);
        let mut relaxed = 0usize;
        while let Some((v, d)) = ws.pop_settle() {
            if v == target.0 {
                let mut nodes = vec![target];
                let mut cur = target.index();
                while let Some(p) = ws.current_parent(cur) {
                    nodes.push(NodeId(p));
                    cur = p as usize;
                }
                nodes.reverse();
                return Some((Path { nodes, distance: d }, ArcFlagStats { relaxed }));
            }
            let lo = g.offsets[v as usize] as usize;
            for (k, (u, w)) in g.neighbors(NodeId(v)).enumerate() {
                if !af.allowed(lo + k, tc) {
                    continue;
                }
                relaxed += 1;
                ws.relax(u.0, v, d + w);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_path;
    use crate::gen::grid_network;

    fn setup(seed: u64, side: u32) -> (Graph, ArcFlags) {
        let g = grid_network(10, 10, 1.2, seed);
        let part = GridPartition::build(&g, side);
        let af = ArcFlags::build(&g, &part);
        (g, af)
    }

    #[test]
    fn exact_on_all_test_pairs() {
        let (g, af) = setup(2000, 3);
        for s in (0..100u32).step_by(7) {
            for t in (0..100u32).step_by(11) {
                let truth = dijkstra_path(&g, NodeId(s), NodeId(t)).unwrap();
                let (got, _) = arcflag_path(&g, &af, NodeId(s), NodeId(t))
                    .unwrap_or_else(|| panic!("({s},{t}) unreachable with flags"));
                assert!(
                    (got.distance - truth.distance).abs() <= 1e-9 * truth.distance.max(1.0),
                    "({s},{t}): {} vs {}",
                    got.distance,
                    truth.distance
                );
                assert!(got.distance_consistent(&g));
            }
        }
    }

    #[test]
    fn prunes_search_space() {
        let (g, af) = setup(2001, 4);
        // Compare relaxations against an unpruned run (own trivial
        // arc-flag index with every bit set has the same loop shape).
        let part1 = GridPartition::build(&g, 1);
        let unpruned = ArcFlags::build(&g, &part1);
        let (s, t) = (NodeId(0), NodeId(99));
        let (_, pruned_stats) = arcflag_path(&g, &af, s, t).unwrap();
        let (_, full_stats) = arcflag_path(&g, &unpruned, s, t).unwrap();
        assert!(
            pruned_stats.relaxed < full_stats.relaxed,
            "pruned {} ≥ full {}",
            pruned_stats.relaxed,
            full_stats.relaxed
        );
    }

    #[test]
    fn fill_ratio_decreases_with_more_cells() {
        let g = grid_network(12, 12, 1.2, 2002);
        let f2 = ArcFlags::build(&g, &GridPartition::build(&g, 2)).fill_ratio();
        let f5 = ArcFlags::build(&g, &GridPartition::build(&g, 5)).fill_ratio();
        assert!(f5 < f2, "{f5} ≥ {f2}");
        assert!(f2 <= 1.0 && f5 > 0.0);
    }

    #[test]
    fn single_cell_flags_are_full() {
        let (g, af) = setup(2003, 1);
        assert!((af.fill_ratio() - 1.0).abs() < 1e-12);
        let (p, _) = arcflag_path(&g, &af, NodeId(0), NodeId(99)).unwrap();
        let truth = dijkstra_path(&g, NodeId(0), NodeId(99)).unwrap();
        assert!((p.distance - truth.distance).abs() < 1e-9);
    }

    #[test]
    fn trivial_query() {
        let (g, af) = setup(2004, 3);
        let (p, stats) = arcflag_path(&g, &af, NodeId(5), NodeId(5)).unwrap();
        assert_eq!(p.distance, 0.0);
        assert_eq!(stats.relaxed, 0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = crate::builder::GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(10.0, 10.0);
        let w = b.add_node(1.0, 1.0);
        b.add_edge(u, w, 1.0).unwrap();
        let g = b.build();
        let part = GridPartition::build(&g, 2);
        let af = ArcFlags::build(&g, &part);
        assert!(arcflag_path(&g, &af, u, v).is_none());
    }
}
