//! Shortest-path algorithms.
//!
//! Everything the paper's framework requires:
//!
//! * [`dijkstra`] — single-source search in its full, point-to-point and
//!   bounded-ball variants (Section II-C "no pre-computation"; the
//!   bounded ball realizes Lemma 1's subgraph).
//! * [`astar`] — A\* with a pluggable lower-bound heuristic (used with
//!   landmark bounds by the LDM method, Lemma 2).
//! * [`bidirectional`] — bidirectional Dijkstra (Section II-C), offered
//!   as an alternative `algosp` for the service provider.
//! * [`floyd_warshall`](mod@floyd_warshall) — the O(|V|³) all-pairs algorithm the paper's
//!   FULL method prescribes (Section IV-B).
//! * [`apsp`] — all-pairs via repeated Dijkstra (same output, far
//!   cheaper on sparse road networks; both are benchmarked).

pub mod apsp;
pub mod arcflag;
pub mod astar;
pub mod bidirectional;
pub mod dijkstra;
pub mod floyd_warshall;

pub use apsp::{apsp_dijkstra, apsp_dijkstra_parallel};
pub use arcflag::{arcflag_path, ArcFlags};
pub use astar::{astar_path, astar_search_space};
pub use bidirectional::bidirectional_path;
pub use dijkstra::{dijkstra_ball, dijkstra_path, dijkstra_sssp, SsspResult};
pub use floyd_warshall::floyd_warshall;
