//! Dijkstra's algorithm \[22\] in the three variants the framework
//! needs.
//!
//! The free functions below are the stable entry points; they execute
//! on this thread's shared [`crate::search::SearchWorkspace`], so
//! repeated calls reuse one set of arrays and one heap. Callers on a
//! hot path that also want to avoid materializing [`SsspResult`]
//! should hold their own workspace and use its views directly.
//!
//! [`mod@reference`] keeps the original fresh-allocation implementation:
//! it is the oracle the workspace implementation is property-tested
//! against (bit-identical distances/parents) and the baseline the
//! `search_benches` speedup is measured from.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::path::Path;
use crate::search::with_thread_workspace;

/// Result of a single-source run: per-node distance and parent.
///
/// Unreached nodes have `f64::INFINITY` distance and `None` parent.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// The source node.
    pub source: NodeId,
    /// `dist[v]` = shortest-path distance from the source to `v`.
    pub dist: Vec<f64>,
    /// Parent pointers for path reconstruction.
    pub parent: Vec<Option<NodeId>>,
}

impl SsspResult {
    /// Reconstructs the shortest path to `target`, if reached.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        if self.dist[target.index()].is_infinite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(Path {
            nodes,
            distance: self.dist[target.index()],
        })
    }

    /// Distance to `v` (`INFINITY` if unreached).
    pub fn distance_to(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }
}

/// Full single-source Dijkstra: distances from `source` to every node.
pub fn dijkstra_sssp(g: &Graph, source: NodeId) -> SsspResult {
    with_thread_workspace(|ws| ws.sssp(g, source).to_sssp_result())
}

/// Bounded-ball Dijkstra: settles exactly the nodes `v` with
/// `dist(source, v) ≤ radius` (Lemma 1's subgraph).
///
/// Nodes beyond the radius keep infinite distance even if their
/// tentative key was pushed.
pub fn dijkstra_ball(g: &Graph, source: NodeId, radius: f64) -> SsspResult {
    with_thread_workspace(|ws| ws.ball(g, source, radius).to_sssp_result())
}

/// Point-to-point Dijkstra with early termination when `target` is
/// settled.
pub fn dijkstra_path(g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
    with_thread_workspace(|ws| ws.path(g, source, target))
}

pub mod reference {
    //! The original fresh-allocation Dijkstra, kept as the correctness
    //! oracle and benchmark baseline for the workspace implementation.

    use super::*;
    use crate::ofloat::OrderedF64;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Fresh-allocation single-source Dijkstra.
    pub fn sssp(g: &Graph, source: NodeId) -> SsspResult {
        run(g, source, None, f64::INFINITY)
    }

    /// Fresh-allocation bounded-ball Dijkstra.
    pub fn ball(g: &Graph, source: NodeId, radius: f64) -> SsspResult {
        run(g, source, None, radius)
    }

    /// Fresh-allocation point-to-point Dijkstra.
    pub fn path(g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
        g.check_node(source)?;
        g.check_node(target)?;
        if source == target {
            return Ok(Path::trivial(source));
        }
        let r = run(g, source, Some(target), f64::INFINITY);
        r.path_to(target)
            .ok_or(GraphError::Unreachable { source, target })
    }

    fn run(g: &Graph, source: NodeId, stop_at: Option<NodeId>, radius: f64) -> SsspResult {
        let n = g.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(Reverse((OrderedF64::new(0.0), source.0)));
        while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
            let vi = v as usize;
            if settled[vi] || d > dist[vi] {
                continue; // stale entry
            }
            if d > radius {
                // Every remaining key is ≥ d: nothing else is in the ball.
                dist[vi] = f64::INFINITY;
                break;
            }
            settled[vi] = true;
            if stop_at == Some(NodeId(v)) {
                break;
            }
            for (u, w) in g.neighbors(NodeId(v)) {
                let ui = u.index();
                if settled[ui] {
                    continue;
                }
                let nd = d + w;
                if nd < dist[ui] {
                    dist[ui] = nd;
                    parent[ui] = Some(NodeId(v));
                    heap.push(Reverse((OrderedF64::new(nd), u.0)));
                }
            }
        }
        // Tentative (never settled) nodes outside the ball are not part
        // of the result: reset them so `dist` reflects settled nodes
        // only.
        if radius.is_finite() {
            for i in 0..n {
                if !settled[i] {
                    dist[i] = f64::INFINITY;
                    parent[i] = None;
                }
            }
        }
        SsspResult {
            source,
            dist,
            parent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The 7-node example of Figure 1: shortest path v1→v4 is
    /// v1→v3→v5→v6→v4 with cost 8.
    pub(crate) fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // ids: v1..v7 map to 0..6
        for _ in 0..7 {
            b.add_node(0.0, 0.0);
        }
        let e = [
            (1u32, 2u32, 1.0), // v2-v3
            (0, 1, 1.0),       // v1-v2
            (0, 2, 2.0),       // v1-v3
            (2, 4, 3.0),       // v3-v5
            (4, 5, 2.0),       // v5-v6
            (5, 3, 1.0),       // v6-v4
            (4, 6, 2.0),       // v5-v7
            (3, 6, 9.0),       // v4-v7
        ];
        for (u, v, w) in e {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        b.build()
    }

    #[test]
    fn figure1_shortest_path() {
        let g = figure1_graph();
        let p = dijkstra_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.distance, 8.0);
        assert_eq!(
            p.nodes,
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(5), NodeId(3)]
        );
    }

    #[test]
    fn sssp_distances() {
        let g = figure1_graph();
        let r = dijkstra_sssp(&g, NodeId(0));
        assert_eq!(r.distance_to(NodeId(0)), 0.0);
        assert_eq!(r.distance_to(NodeId(1)), 1.0);
        assert_eq!(r.distance_to(NodeId(2)), 2.0);
        assert_eq!(r.distance_to(NodeId(4)), 5.0);
        assert_eq!(r.distance_to(NodeId(5)), 7.0);
        assert_eq!(r.distance_to(NodeId(3)), 8.0);
        assert_eq!(r.distance_to(NodeId(6)), 7.0);
    }

    #[test]
    fn trivial_query() {
        let g = figure1_graph();
        let p = dijkstra_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert_eq!(p.distance, 0.0);
        assert_eq!(p.nodes, vec![NodeId(2)]);
    }

    #[test]
    fn unreachable_reported() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g = b.build();
        assert!(matches!(
            dijkstra_path(&g, u, v),
            Err(GraphError::Unreachable { .. })
        ));
    }

    #[test]
    fn out_of_range_node_rejected() {
        let g = figure1_graph();
        assert!(dijkstra_path(&g, NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn ball_contains_exactly_radius_nodes() {
        let g = figure1_graph();
        // dist from v1: [0,1,2,8,5,7,7]; ball radius 5 → {v1,v2,v3,v5}
        let r = dijkstra_ball(&g, NodeId(0), 5.0);
        let inside: Vec<u32> = (0..7u32)
            .filter(|&i| r.dist[i as usize].is_finite())
            .collect();
        assert_eq!(inside, vec![0, 1, 2, 4]);
    }

    #[test]
    fn ball_radius_zero_is_source_only() {
        let g = figure1_graph();
        let r = dijkstra_ball(&g, NodeId(0), 0.0);
        let inside: Vec<u32> = (0..7u32)
            .filter(|&i| r.dist[i as usize].is_finite())
            .collect();
        assert_eq!(inside, vec![0]);
    }

    #[test]
    fn ball_boundary_inclusive() {
        let g = figure1_graph();
        // radius exactly 8 must include v4 (dist = 8): Lemma 1 needs ≤.
        let r = dijkstra_ball(&g, NodeId(0), 8.0);
        assert!(r.dist[3].is_finite());
    }

    #[test]
    fn path_reconstruction_consistent() {
        let g = figure1_graph();
        let r = dijkstra_sssp(&g, NodeId(0));
        for v in g.nodes() {
            let p = r.path_to(v).unwrap();
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), v);
            assert!(p.distance_consistent(&g));
        }
    }

    #[test]
    fn zero_weight_edges_handled() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        let d = b.add_node(2.0, 0.0);
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(c, d, 0.0).unwrap();
        let g = b.build();
        let p = dijkstra_path(&g, a, d).unwrap();
        assert_eq!(p.distance, 0.0);
        assert_eq!(p.num_edges(), 2);
    }
}
