//! All-pairs shortest paths via repeated Dijkstra.
//!
//! Identical output to Floyd–Warshall but O(|V|·(|E| + |V| log |V|))
//! on sparse road networks (|E| ≈ 1.05·|V| in the paper's datasets),
//! which keeps the FULL baseline buildable at experiment scale. The
//! parallel variant fans sources out over scoped OS threads; every
//! worker reuses one [`crate::search::SearchWorkspace`] across its
//! whole source range, so the per-source cost is pure search.

use crate::algo::floyd_warshall::DistanceMatrix;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Sequential all-pairs via |V| Dijkstra runs on one reused workspace.
pub fn apsp_dijkstra(g: &Graph) -> DistanceMatrix {
    let n = g.num_nodes();
    let mut m = DistanceMatrix::new(n);
    let mut ws = crate::search::SearchWorkspace::with_capacity(n);
    for s in 0..n {
        let r = ws.sssp(g, NodeId(s as u32));
        for t in 0..n {
            m.set(s, t, r.dist(NodeId(t as u32)));
        }
    }
    m
}

/// Parallel all-pairs: sources are chunked over `threads` workers.
///
/// Falls back to the sequential path for tiny graphs or one thread.
pub fn apsp_dijkstra_parallel(g: &Graph, threads: usize) -> DistanceMatrix {
    let n = g.num_nodes();
    if threads <= 1 || n < 256 {
        return apsp_dijkstra(g);
    }
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, slot) in rows.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            scope.spawn(move || {
                let mut ws = crate::search::SearchWorkspace::new();
                for (off, row) in slot.iter_mut().enumerate() {
                    let r = ws.sssp(g, NodeId((start + off) as u32));
                    *row = r.dist_vec();
                }
            });
        }
    });
    let mut m = DistanceMatrix::new(n);
    for (s, row) in rows.into_iter().enumerate() {
        for (t, d) in row.into_iter().enumerate() {
            m.set(s, t, d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::floyd_warshall::floyd_warshall;
    use crate::gen::grid_network;

    fn matrices_equal(a: &DistanceMatrix, b: &DistanceMatrix) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            for j in 0..a.len() {
                let (x, y) = (a.get(i, j), b.get(i, j));
                if x.is_infinite() {
                    assert!(y.is_infinite(), "({i},{j})");
                } else {
                    assert!((x - y).abs() < 1e-9, "({i},{j}): {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn apsp_matches_floyd_warshall() {
        let g = grid_network(7, 7, 1.2, 30);
        matrices_equal(&apsp_dijkstra(&g), &floyd_warshall(&g));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = grid_network(17, 17, 1.15, 31); // 289 ≥ parallel threshold
        matrices_equal(&apsp_dijkstra_parallel(&g, 4), &apsp_dijkstra(&g));
    }

    #[test]
    fn parallel_single_thread_fallback() {
        let g = grid_network(5, 5, 1.1, 32);
        matrices_equal(&apsp_dijkstra_parallel(&g, 1), &apsp_dijkstra(&g));
    }
}
