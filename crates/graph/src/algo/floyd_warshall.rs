//! Floyd–Warshall all-pairs shortest distances — the O(|V|³) algorithm
//! the FULL method prescribes (Section IV-B).

use crate::graph::Graph;

/// A dense |V|×|V| distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major distances; `INFINITY` marks unreachable pairs.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates a matrix filled with `INFINITY`, zero diagonal.
    pub fn new(n: usize) -> Self {
        let mut data = vec![f64::INFINITY; n * n];
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        DistanceMatrix { n, data }
    }

    /// Matrix dimension |V|.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance from node `i` to node `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Overwrites row `i` (dynamic updates recompute dirty rows).
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the matrix dimension.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        self.data[i * self.n..(i + 1) * self.n].copy_from_slice(row);
    }

    /// Row-major backing data (for persistence; pair with
    /// [`DistanceMatrix::from_raw`]).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Reconstructs a matrix from its dimension and row-major data —
    /// the exact bit patterns matter (FULL-method row digests hash
    /// them), so loaders must not recompute distances.
    pub fn from_raw(n: usize, data: Vec<f64>) -> Option<Self> {
        if data.len() != n * n {
            return None;
        }
        Some(DistanceMatrix { n, data })
    }
}

/// Runs Floyd–Warshall on the whole graph.
///
/// O(|V|³) time, O(|V|²) space — as the paper notes, "both complexities
/// explode with the number of nodes", which Figure 9b demonstrates; use
/// [`crate::algo::apsp_dijkstra`] for the identical output at
/// O(|V|·|E|·log|V|) on sparse networks.
pub fn floyd_warshall(g: &Graph) -> DistanceMatrix {
    let n = g.num_nodes();
    let mut m = DistanceMatrix::new(n);
    for (u, v, w) in g.edges() {
        // Undirected; keep the lighter of parallel edges (builder forbids
        // them, but stay safe).
        if w < m.get(u.index(), v.index()) {
            m.set(u.index(), v.index(), w);
            m.set(v.index(), u.index(), w);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = m.get(i, k);
            if dik.is_infinite() {
                continue;
            }
            // Manual row split avoids a full matrix clone per iteration.
            let row_k: Vec<f64> = m.row(k).to_vec();
            let base = i * n;
            for (j, &dkj) in row_k.iter().enumerate() {
                let alt = dik + dkj;
                if alt < m.data[base + j] {
                    m.data[base + j] = alt;
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::dijkstra_sssp;
    use crate::gen::grid_network;
    use crate::ids::NodeId;

    #[test]
    fn matches_dijkstra_on_small_grid() {
        let g = grid_network(6, 6, 1.2, 20);
        let m = floyd_warshall(&g);
        for s in 0..g.num_nodes() {
            let r = dijkstra_sssp(&g, NodeId(s as u32));
            for t in 0..g.num_nodes() {
                let fw = m.get(s, t);
                let dj = r.dist[t];
                if fw.is_infinite() {
                    assert!(dj.is_infinite());
                } else {
                    assert!((fw - dj).abs() < 1e-9, "({s},{t}): {fw} vs {dj}");
                }
            }
        }
    }

    #[test]
    fn symmetric_on_undirected() {
        let g = grid_network(5, 5, 1.3, 21);
        let m = floyd_warshall(&g);
        for i in 0..25 {
            for j in 0..25 {
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn diagonal_zero() {
        let g = grid_network(4, 4, 1.0, 22);
        let m = floyd_warshall(&g);
        for i in 0..16 {
            assert_eq!(m.get(i, i), 0.0);
        }
    }

    #[test]
    fn disconnected_pairs_infinite() {
        let mut b = crate::builder::GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(1.0, 0.0);
        b.add_node(9.0, 9.0); // isolated
        b.add_edge(a, c, 1.5).unwrap();
        let m = floyd_warshall(&b.build());
        assert_eq!(m.get(0, 1), 1.5);
        assert!(m.get(0, 2).is_infinite());
        assert!(m.get(2, 1).is_infinite());
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = grid_network(5, 5, 1.25, 23);
        let m = floyd_warshall(&g);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if m.get(i, k).is_finite() && m.get(k, j).is_finite() {
                        assert!(m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-9);
                    }
                }
            }
        }
    }
}
