//! Bidirectional Dijkstra \[24\]: simultaneous forward and backward
//! expansion, meeting in the middle.
//!
//! One of the `algosp` choices available to the service provider
//! (Algorithm 1, Line 1) — the verification framework is agnostic to
//! how the provider computes the path.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::ofloat::OrderedF64;
use crate::path::Path;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Point-to-point bidirectional Dijkstra on the undirected graph.
pub fn bidirectional_path(g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
    g.check_node(source)?;
    g.check_node(target)?;
    if source == target {
        return Ok(Path::trivial(source));
    }
    let n = g.num_nodes();
    // Index 0 = forward (from source), 1 = backward (from target).
    let mut dist = [vec![f64::INFINITY; n], vec![f64::INFINITY; n]];
    let mut parent: [Vec<Option<NodeId>>; 2] = [vec![None; n], vec![None; n]];
    let mut settled = [vec![false; n], vec![false; n]];
    let mut heaps: [BinaryHeap<Reverse<(OrderedF64, u32)>>; 2] =
        [BinaryHeap::new(), BinaryHeap::new()];
    dist[0][source.index()] = 0.0;
    dist[1][target.index()] = 0.0;
    heaps[0].push(Reverse((OrderedF64::new(0.0), source.0)));
    heaps[1].push(Reverse((OrderedF64::new(0.0), target.0)));

    let mut best = f64::INFINITY;
    let mut meet: Option<NodeId> = None;

    loop {
        // Pick the side with the smaller tentative key.
        let side = match (heaps[0].peek(), heaps[1].peek()) {
            (None, None) => break,
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (Some(Reverse((a, _))), Some(Reverse((b, _)))) => usize::from(a > b),
        };
        let Some(Reverse((OrderedF64(d), v))) = heaps[side].pop() else {
            break;
        };
        let vi = v as usize;
        if settled[side][vi] || d > dist[side][vi] {
            continue;
        }
        settled[side][vi] = true;
        // Termination: when the two frontiers' minimum keys sum past the
        // best meeting distance, no better path can appear.
        let other_min = heaps[1 - side]
            .peek()
            .map(|Reverse((k, _))| k.get())
            .unwrap_or(f64::INFINITY);
        if d + other_min >= best && meet.is_some() {
            break;
        }
        for (u, w) in g.neighbors(NodeId(v)) {
            let ui = u.index();
            let nd = d + w;
            if nd < dist[side][ui] {
                dist[side][ui] = nd;
                parent[side][ui] = Some(NodeId(v));
                heaps[side].push(Reverse((OrderedF64::new(nd), u.0)));
            }
            // Candidate meeting point.
            let total = dist[0][ui] + dist[1][ui];
            if total < best {
                best = total;
                meet = Some(u);
            }
        }
        let total_v = dist[0][vi] + dist[1][vi];
        if total_v < best {
            best = total_v;
            meet = Some(NodeId(v));
        }
    }

    let Some(m) = meet else {
        return Err(GraphError::Unreachable { source, target });
    };
    // Stitch the two half-paths at the meeting node.
    let mut fwd = vec![m];
    let mut cur = m;
    while let Some(p) = parent[0][cur.index()] {
        fwd.push(p);
        cur = p;
    }
    fwd.reverse();
    let mut cur = m;
    while let Some(p) = parent[1][cur.index()] {
        fwd.push(p);
        cur = p;
    }
    Ok(Path {
        nodes: fwd,
        distance: best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::dijkstra_path;
    use crate::gen::{grid_network, random_geometric};

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid_network(12, 12, 1.2, 10);
        for (s, t) in [(0u32, 143u32), (7, 100), (60, 61), (143, 0), (12, 131)] {
            let d = dijkstra_path(&g, NodeId(s), NodeId(t)).unwrap();
            let b = bidirectional_path(&g, NodeId(s), NodeId(t)).unwrap();
            assert!(
                (d.distance - b.distance).abs() < 1e-9,
                "({s},{t}): {} vs {}",
                d.distance,
                b.distance
            );
            assert!(b.distance_consistent(&g));
            assert_eq!(b.source(), NodeId(s));
            assert_eq!(b.target(), NodeId(t));
        }
    }

    #[test]
    fn matches_dijkstra_on_geometric() {
        let g = random_geometric(150, 4, 11);
        let mut checked = 0;
        for (s, t) in [(0u32, 149u32), (10, 90), (50, 51), (120, 3)] {
            let d = dijkstra_path(&g, NodeId(s), NodeId(t));
            let b = bidirectional_path(&g, NodeId(s), NodeId(t));
            match (d, b) {
                (Ok(d), Ok(b)) => {
                    assert!((d.distance - b.distance).abs() < 1e-9);
                    checked += 1;
                }
                (Err(_), Err(_)) => {}
                (x, y) => panic!("disagreement on reachability: {x:?} vs {y:?}"),
            }
        }
        assert!(checked > 0, "geometric graph too disconnected for test");
    }

    #[test]
    fn trivial_query() {
        let g = grid_network(4, 4, 1.0, 12);
        let p = bidirectional_path(&g, NodeId(5), NodeId(5)).unwrap();
        assert_eq!(p.distance, 0.0);
    }

    #[test]
    fn unreachable_detected() {
        let mut b = crate::builder::GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g = b.build();
        assert!(bidirectional_path(&g, u, v).is_err());
    }
}
