//! Bidirectional Dijkstra \[24\]: simultaneous forward and backward
//! expansion, meeting in the middle.
//!
//! One of the `algosp` choices available to the service provider
//! (Algorithm 1, Line 1) — the verification framework is agnostic to
//! how the provider computes the path.
//!
//! Runs on this thread's reused pair of
//! [`SearchWorkspace`](crate::search::SearchWorkspace)s (one per
//! frontier): repeated queries perform zero per-query `O(|V|)`
//! allocations once the workspaces have grown to the graph size — the
//! seed implementation allocated six `O(|V|)` vectors plus two binary
//! heaps per call.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::path::Path;
use crate::search::with_thread_bi_workspace;

/// Point-to-point bidirectional Dijkstra on the undirected graph.
pub fn bidirectional_path(g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
    g.check_node(source)?;
    g.check_node(target)?;
    if source == target {
        return Ok(Path::trivial(source));
    }
    with_thread_bi_workspace(|fwd, bwd| {
        fwd.begin_manual(g, source);
        bwd.begin_manual(g, target);

        let mut best = f64::INFINITY;
        let mut meet: Option<NodeId> = None;

        loop {
            // Pick the side with the smaller tentative key.
            let fwd_key = fwd.peek_key();
            let bwd_key = bwd.peek_key();
            let side = match (fwd_key, bwd_key) {
                (None, None) => break,
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (Some(a), Some(b)) => usize::from(a > b),
            };
            let (this, other) = if side == 0 {
                (&mut *fwd, &mut *bwd)
            } else {
                (&mut *bwd, &mut *fwd)
            };
            let Some((v, d)) = this.pop_settle() else {
                break;
            };
            // Termination: when the two frontiers' minimum keys sum past
            // the best meeting distance, no better path can appear.
            let other_min = other.peek_key().unwrap_or(f64::INFINITY);
            if d + other_min >= best && meet.is_some() {
                break;
            }
            for (u, w) in g.neighbors(NodeId(v)) {
                let ui = u.index();
                this.relax(u.0, v, d + w);
                // Candidate meeting point (tentative distances count).
                let total = this.current_dist(ui) + other.current_dist(ui);
                if total < best {
                    best = total;
                    meet = Some(u);
                }
            }
            let vi = v as usize;
            let total_v = this.current_dist(vi) + other.current_dist(vi);
            if total_v < best {
                best = total_v;
                meet = Some(NodeId(v));
            }
        }

        let Some(m) = meet else {
            return Err(GraphError::Unreachable { source, target });
        };
        // Stitch the two half-paths at the meeting node.
        let mut nodes = vec![m];
        let mut cur = m.index();
        while let Some(p) = fwd.current_parent(cur) {
            nodes.push(NodeId(p));
            cur = p as usize;
        }
        nodes.reverse();
        let mut cur = m.index();
        while let Some(p) = bwd.current_parent(cur) {
            nodes.push(NodeId(p));
            cur = p as usize;
        }
        Ok(Path {
            nodes,
            distance: best,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::dijkstra_path;
    use crate::gen::{grid_network, random_geometric};

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid_network(12, 12, 1.2, 10);
        for (s, t) in [(0u32, 143u32), (7, 100), (60, 61), (143, 0), (12, 131)] {
            let d = dijkstra_path(&g, NodeId(s), NodeId(t)).unwrap();
            let b = bidirectional_path(&g, NodeId(s), NodeId(t)).unwrap();
            assert!(
                (d.distance - b.distance).abs() < 1e-9,
                "({s},{t}): {} vs {}",
                d.distance,
                b.distance
            );
            assert!(b.distance_consistent(&g));
            assert_eq!(b.source(), NodeId(s));
            assert_eq!(b.target(), NodeId(t));
        }
    }

    #[test]
    fn matches_dijkstra_on_geometric() {
        let g = random_geometric(150, 4, 11);
        let mut checked = 0;
        for (s, t) in [(0u32, 149u32), (10, 90), (50, 51), (120, 3)] {
            let d = dijkstra_path(&g, NodeId(s), NodeId(t));
            let b = bidirectional_path(&g, NodeId(s), NodeId(t));
            match (d, b) {
                (Ok(d), Ok(b)) => {
                    assert!((d.distance - b.distance).abs() < 1e-9);
                    checked += 1;
                }
                (Err(_), Err(_)) => {}
                (x, y) => panic!("disagreement on reachability: {x:?} vs {y:?}"),
            }
        }
        assert!(checked > 0, "geometric graph too disconnected for test");
    }

    #[test]
    fn reuse_across_queries_and_graphs() {
        // The workspace pair is thread-local state: interleaved queries
        // on different graphs must not leak search state.
        let g1 = grid_network(10, 10, 1.2, 13);
        let g2 = random_geometric(60, 3, 14);
        for _ in 0..3 {
            for (s, t) in [(0u32, 99u32), (99, 0), (5, 50)] {
                let want = dijkstra_path(&g1, NodeId(s), NodeId(t)).unwrap();
                let got = bidirectional_path(&g1, NodeId(s), NodeId(t)).unwrap();
                assert!((want.distance - got.distance).abs() < 1e-9);
                assert!(got.distance_consistent(&g1));
            }
            match (
                dijkstra_path(&g2, NodeId(0), NodeId(59)),
                bidirectional_path(&g2, NodeId(0), NodeId(59)),
            ) {
                (Ok(d), Ok(b)) => assert!((d.distance - b.distance).abs() < 1e-9),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("disagreement on reachability: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn trivial_query() {
        let g = grid_network(4, 4, 1.0, 12);
        let p = bidirectional_path(&g, NodeId(5), NodeId(5)).unwrap();
        assert_eq!(p.distance, 0.0);
    }

    #[test]
    fn unreachable_detected() {
        let mut b = crate::builder::GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g = b.build();
        assert!(bidirectional_path(&g, u, v).is_err());
    }
}
