//! A\* search \[23\] with a pluggable admissible heuristic.
//!
//! The LDM method runs A\* with the landmark lower bound `distLB(v, vt)`
//! (Eq. 3 / Lemmas 3–4). A heuristic is *admissible* when
//! `h(v) ≤ dist(v, vt)`; with an admissible heuristic the first time the
//! target is popped its distance is exact, and every node popped with
//! key `g(v) + h(v) ≤ dist(vs, vt)` defines the Lemma 2 search space.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::ofloat::OrderedF64;
use crate::path::Path;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Point-to-point A\*. `h` must be admissible; `h(target)` should be 0.
pub fn astar_path<H>(g: &Graph, source: NodeId, target: NodeId, h: H) -> Result<Path, GraphError>
where
    H: Fn(NodeId) -> f64,
{
    g.check_node(source)?;
    g.check_node(target)?;
    if source == target {
        return Ok(Path::trivial(source));
    }
    let n = g.num_nodes();
    let mut gscore = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    gscore[source.index()] = 0.0;
    heap.push(Reverse((OrderedF64::new(h(source)), source.0)));
    while let Some(Reverse((_, v))) = heap.pop() {
        let vi = v as usize;
        if settled[vi] {
            continue;
        }
        settled[vi] = true;
        if v == target.0 {
            let mut nodes = vec![target];
            let mut cur = target;
            while let Some(p) = parent[cur.index()] {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            return Ok(Path {
                nodes,
                distance: gscore[target.index()],
            });
        }
        for (u, w) in g.neighbors(NodeId(v)) {
            let ui = u.index();
            if settled[ui] {
                continue;
            }
            let nd = gscore[vi] + w;
            if nd < gscore[ui] {
                gscore[ui] = nd;
                parent[ui] = Some(NodeId(v));
                heap.push(Reverse((OrderedF64::new(nd + h(u)), u.0)));
            }
        }
    }
    Err(GraphError::Unreachable { source, target })
}

/// Returns the set of nodes `v` satisfying
/// `dist(vs, v) + h(v) ≤ dist(vs, vt)` — the A\* search space of
/// Lemma 2, which the LDM proof must contain (together with all their
/// neighbors).
///
/// Computed by running a full Dijkstra from the source and filtering;
/// this is the owner/provider-side characterization, independent of tie
/// breaking inside any particular A\* implementation.
pub fn astar_search_space<H>(g: &Graph, source: NodeId, sp_dist: f64, h: H) -> Vec<NodeId>
where
    H: Fn(NodeId) -> f64,
{
    crate::search::with_thread_workspace(|ws| {
        let r = ws.ball(g, source, sp_dist);
        g.nodes()
            .filter(|&v| {
                let d = r.dist(v);
                d.is_finite() && d + h(v) <= sp_dist + 1e-9 * sp_dist.max(1.0)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::{dijkstra_path, dijkstra_sssp};
    use crate::gen::grid_network;

    #[test]
    fn astar_with_zero_heuristic_equals_dijkstra() {
        let g = grid_network(10, 10, 1.15, 1);
        for (s, t) in [(0u32, 99u32), (5, 87), (40, 41), (99, 0)] {
            let d = dijkstra_path(&g, NodeId(s), NodeId(t)).unwrap();
            let a = astar_path(&g, NodeId(s), NodeId(t), |_| 0.0).unwrap();
            assert!((d.distance - a.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn astar_with_exact_heuristic_still_exact() {
        // The tightest admissible heuristic: true distance to target.
        let g = grid_network(8, 8, 1.2, 2);
        let t = NodeId(63);
        let exact = dijkstra_sssp(&g, t); // undirected: dist(v,t) = dist(t,v)
        let a = astar_path(&g, NodeId(0), t, |v| exact.dist[v.index()]).unwrap();
        let d = dijkstra_path(&g, NodeId(0), t).unwrap();
        assert!((a.distance - d.distance).abs() < 1e-9);
    }

    #[test]
    fn astar_trivial_and_unreachable() {
        let g = grid_network(4, 4, 1.0, 3);
        assert_eq!(
            astar_path(&g, NodeId(3), NodeId(3), |_| 0.0)
                .unwrap()
                .distance,
            0.0
        );
        let mut b = crate::builder::GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g2 = b.build();
        assert!(astar_path(&g2, u, v, |_| 0.0).is_err());
    }

    #[test]
    fn search_space_shrinks_with_tighter_heuristic() {
        let g = grid_network(12, 12, 1.15, 4);
        let (s, t) = (NodeId(0), NodeId(143));
        let sp = dijkstra_path(&g, s, t).unwrap().distance;
        let exact = dijkstra_sssp(&g, t);
        let loose = astar_search_space(&g, s, sp, |_| 0.0);
        let tight = astar_search_space(&g, s, sp, |v| exact.dist[v.index()]);
        assert!(tight.len() <= loose.len());
        // Both must contain the endpoints.
        assert!(tight.contains(&s) && tight.contains(&t));
    }

    #[test]
    fn search_space_with_zero_heuristic_is_dijkstra_ball() {
        let g = grid_network(9, 9, 1.1, 5);
        let (s, t) = (NodeId(0), NodeId(80));
        let sp = dijkstra_path(&g, s, t).unwrap().distance;
        let space = astar_search_space(&g, s, sp, |_| 0.0);
        let ball = crate::algo::dijkstra::dijkstra_ball(&g, s, sp);
        let ball_nodes: Vec<NodeId> = g
            .nodes()
            .filter(|&v| ball.dist[v.index()].is_finite())
            .collect();
        assert_eq!(space, ball_nodes);
    }
}
