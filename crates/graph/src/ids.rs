//! Strongly-typed node identifiers.

use std::fmt;

/// Identifier of a graph node; also its index into the node arrays.
///
/// 32 bits is enough for every network in the paper (≤ 175,813 nodes)
/// and keeps extended-tuple encodings compact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_from() {
        let n = NodeId::from(7u32);
        assert_eq!(n.index(), 7);
        assert_eq!(n, NodeId(7));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NodeId(16).to_string(), "v16");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
    }
}
