//! Reference-node compression of quantized distance vectors
//! (Section V-A "Compression of Distance Vectors").
//!
//! Each node `v` either keeps its full quantized vector (it is a
//! *representative*, or too far from every representative) or stores
//! only a reference node `v.θ` and compression error
//! `v.ε = ϱ(v, v.θ) ≤ ξ`.
//!
//! Lemma 4: for any pair `(v, v′)`,
//! `distLB^loose(v.θ, v′.θ) − (v.ε + v′.ε) ≤ distLB^loose(v, v′)`,
//! so the compressed bound remains admissible.
//!
//! Two strategies:
//! * [`CompressionStrategy::GreedyExact`] — the paper's iterative greedy
//!   algorithm (pick the node covering the most uncompressed nodes
//!   within ξ; O(|V|²·c) per round — use on small graphs).
//! * [`CompressionStrategy::HilbertSweep`] — scalable substitute: scan
//!   nodes in Hilbert order, open a new representative whenever the
//!   current one's error would exceed ξ. Same ε ≤ ξ guarantee (all that
//!   Lemma 4 requires); compression ratio is close to greedy on road
//!   networks because vector similarity tracks spatial proximity. See
//!   `DESIGN.md` §4.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::landmark::quantize::QuantizedVectors;
use crate::order::hilbert_order;

/// How the owner compresses quantized vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionStrategy {
    /// The paper's greedy max-coverage algorithm.
    GreedyExact,
    /// Hilbert-order sweep (scalable approximation).
    HilbertSweep,
}

/// Per-node compressed representation.
#[derive(Debug, Clone, PartialEq)]
pub enum NodePsi {
    /// The node keeps its full quantized index vector.
    Full(Vec<u32>),
    /// The node is represented by `theta` with quantized error `eps`.
    Compressed {
        /// The reference node `v.θ` (always a `Full` node).
        theta: NodeId,
        /// The compression error `v.ε = ϱ(v, v.θ)`.
        eps: f64,
    },
}

/// The compressed landmark hint set.
#[derive(Debug, Clone)]
pub struct CompressedVectors {
    /// λ of the underlying quantization.
    lambda: f64,
    /// Per-node representation.
    psi: Vec<NodePsi>,
    /// Compression threshold ξ.
    xi: f64,
    /// Number of landmarks.
    c: usize,
    /// Bits per quantized entry (from the underlying quantization).
    bits: u8,
}

impl CompressedVectors {
    /// Compresses `qv` with threshold `xi` using `strategy`.
    pub fn build(g: &Graph, qv: &QuantizedVectors, xi: f64, strategy: CompressionStrategy) -> Self {
        let n = qv.num_nodes();
        let mut psi: Vec<Option<NodePsi>> = vec![None; n];
        match strategy {
            CompressionStrategy::GreedyExact => greedy_exact(qv, xi, &mut psi),
            CompressionStrategy::HilbertSweep => hilbert_sweep(g, qv, xi, &mut psi),
        }
        CompressedVectors {
            lambda: qv.lambda(),
            psi: psi
                .into_iter()
                .map(|p| p.expect("all nodes assigned"))
                .collect(),
            xi,
            c: qv.num_landmarks(),
            bits: qv.bits(),
        }
    }

    /// Reassembles compressed vectors from persisted parts — the
    /// inverse of reading `lambda()`, `node_psi()`, `xi()`,
    /// `num_landmarks()`, `bits()` back out. Validates the structural
    /// invariants: every `Full` vector has `c` entries, and every
    /// `Compressed` node references an in-range `Full` node with a
    /// finite `eps` in `[0, xi]`.
    pub fn from_parts(lambda: f64, psi: Vec<NodePsi>, xi: f64, c: usize, bits: u8) -> Option<Self> {
        if !(lambda.is_finite() && xi.is_finite()) || c == 0 {
            return None;
        }
        for p in &psi {
            match p {
                NodePsi::Full(vec) => {
                    if vec.len() != c {
                        return None;
                    }
                }
                NodePsi::Compressed { theta, eps } => {
                    if !(eps.is_finite() && *eps >= 0.0 && *eps <= xi) {
                        return None;
                    }
                    match psi.get(theta.index()) {
                        Some(NodePsi::Full(_)) => {}
                        _ => return None,
                    }
                }
            }
        }
        Some(CompressedVectors {
            lambda,
            psi,
            xi,
            c,
            bits,
        })
    }

    /// Number of nodes covered by these vectors.
    pub fn num_nodes(&self) -> usize {
        self.psi.len()
    }

    /// Bits per quantized entry `b`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// λ of the underlying quantization.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Compression threshold ξ.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.c
    }

    /// The representation of node `v`.
    pub fn node_psi(&self, v: NodeId) -> &NodePsi {
        &self.psi[v.index()]
    }

    /// Number of nodes whose vector was compressed away.
    pub fn num_compressed(&self) -> usize {
        self.psi
            .iter()
            .filter(|p| matches!(p, NodePsi::Compressed { .. }))
            .count()
    }

    /// The reference node and error for `v`: `(v, 0)` when `v` holds a
    /// full vector.
    pub fn theta_eps(&self, v: NodeId) -> (NodeId, f64) {
        match &self.psi[v.index()] {
            NodePsi::Full(_) => (v, 0.0),
            NodePsi::Compressed { theta, eps } => (*theta, *eps),
        }
    }

    /// The full index vector of a representative node.
    ///
    /// # Panics
    /// Panics if `v` is a compressed node (its vector was discarded).
    pub fn full_indices(&self, v: NodeId) -> &[u32] {
        match &self.psi[v.index()] {
            NodePsi::Full(q) => q,
            NodePsi::Compressed { .. } => panic!("{v} holds no full vector"),
        }
    }

    /// The compressed lower bound of Lemma 4:
    /// `max{0, distLB^loose(v.θ, v′.θ) − (v.ε + v′.ε)}`.
    pub fn lower_bound(&self, v: NodeId, w: NodeId) -> f64 {
        let (tv, ev) = self.theta_eps(v);
        let (tw, ew) = self.theta_eps(w);
        let loose = crate::landmark::quantize::loose_lb_from_indices(
            self.full_indices(tv),
            self.full_indices(tw),
            self.lambda,
        );
        (loose - ev - ew).max(0.0)
    }

    /// Hint storage in bytes: full vectors count `c` indices (4B each),
    /// compressed nodes count a node id + error (8B, mirroring the
    /// paper's "(θ, ε)" pairs).
    pub fn storage_bytes(&self) -> usize {
        self.psi
            .iter()
            .map(|p| match p {
                NodePsi::Full(q) => q.len() * 4,
                NodePsi::Compressed { .. } => 8,
            })
            .sum()
    }
}

/// The paper's greedy algorithm: repeatedly pick the node `v_rep`
/// maximizing `|{v′ uncompressed : ϱ(v′, v_rep) ≤ ξ}|`, represent that
/// set by `v_rep`, and recurse on the remainder. A node whose best
/// coverage is only itself stays uncompressed (paper: v8, v9 "lie too
/// far away from any representative node").
fn greedy_exact(qv: &QuantizedVectors, xi: f64, psi: &mut [Option<NodePsi>]) {
    let n = qv.num_nodes();
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    while !remaining.is_empty() {
        let mut best_rep = remaining[0];
        let mut best_cover: Vec<u32> = Vec::new();
        for &cand in &remaining {
            let cover: Vec<u32> = remaining
                .iter()
                .copied()
                .filter(|&v| v != cand && qv.quantized_diff(NodeId(v), NodeId(cand)) <= xi)
                .collect();
            if cover.len() > best_cover.len() {
                best_rep = cand;
                best_cover = cover;
            }
        }
        if best_cover.is_empty() {
            // No candidate covers anyone: everyone left keeps a full
            // vector.
            for &v in &remaining {
                psi[v as usize] = Some(NodePsi::Full(qv.indices(NodeId(v)).to_vec()));
            }
            break;
        }
        psi[best_rep as usize] = Some(NodePsi::Full(qv.indices(NodeId(best_rep)).to_vec()));
        for &v in &best_cover {
            psi[v as usize] = Some(NodePsi::Compressed {
                theta: NodeId(best_rep),
                eps: qv.quantized_diff(NodeId(v), NodeId(best_rep)),
            });
        }
        remaining.retain(|&v| v != best_rep && !best_cover.contains(&v));
    }
}

/// Hilbert-order sweep: the current representative compresses each
/// subsequent node within ξ; otherwise that node opens a new run.
fn hilbert_sweep(g: &Graph, qv: &QuantizedVectors, xi: f64, psi: &mut [Option<NodePsi>]) {
    let order = hilbert_order(g);
    let mut rep: Option<NodeId> = None;
    for &v in &order {
        match rep {
            Some(r) if qv.quantized_diff(v, r) <= xi => {
                psi[v.index()] = Some(NodePsi::Compressed {
                    theta: r,
                    eps: qv.quantized_diff(v, r),
                });
            }
            _ => {
                psi[v.index()] = Some(NodePsi::Full(qv.indices(v).to_vec()));
                rep = Some(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;
    use crate::landmark::select::{select_landmarks, LandmarkStrategy};
    use crate::landmark::vectors::figure5_graph;
    use crate::landmark::vectors::LandmarkVectors;

    fn fig5_compressed(xi: f64) -> (crate::graph::Graph, QuantizedVectors, CompressedVectors) {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let qv = QuantizedVectors::quantize(&lv, 3);
        let cv = CompressedVectors::build(&g, &qv, xi, CompressionStrategy::GreedyExact);
        (g, qv, cv)
    }

    #[test]
    fn figure6b_compression_errors_bounded() {
        // ξ = 2 on the Figure 6a table: paper compresses v1,v3 → v2,
        // v5 → v4, v7 → v6; v8, v9 stay uncompressed. Greedy tie
        // breaking may pick different (equally sized) covers, so assert
        // the invariants rather than the exact assignment.
        let (_, qv, cv) = fig5_compressed(2.0);
        assert!(cv.num_compressed() >= 3, "at least 3 nodes compress at ξ=2");
        for v in 0..9u32 {
            let (theta, eps) = cv.theta_eps(NodeId(v));
            assert!(eps <= 2.0, "ε must be ≤ ξ");
            assert!(matches!(cv.node_psi(theta), NodePsi::Full(_)));
            assert_eq!(eps, qv.quantized_diff(NodeId(v), theta));
        }
        // v9 (id 8) has vector ⟨14,8⟩ — no other node within ξ=2:
        // paper says it stays uncompressed.
        assert!(matches!(cv.node_psi(NodeId(8)), NodePsi::Full(_)));
    }

    #[test]
    fn lemma4_compressed_bound_below_loose_bound() {
        let g = grid_network(8, 8, 1.15, 60);
        let lms = select_landmarks(&g, 5, LandmarkStrategy::Farthest, 61);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 8);
        for strat in [
            CompressionStrategy::GreedyExact,
            CompressionStrategy::HilbertSweep,
        ] {
            let cv = CompressedVectors::build(&g, &qv, 300.0, strat);
            for u in 0..g.num_nodes() {
                for v in 0..g.num_nodes() {
                    let comp = cv.lower_bound(NodeId(u as u32), NodeId(v as u32));
                    let loose = qv.loose_lower_bound(NodeId(u as u32), NodeId(v as u32));
                    assert!(
                        comp <= loose + 1e-9,
                        "{strat:?} ({u},{v}): {comp} > {loose}"
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_bound_admissible() {
        let g = grid_network(7, 7, 1.2, 62);
        let lms = select_landmarks(&g, 4, LandmarkStrategy::Farthest, 63);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 10);
        let cv = CompressedVectors::build(&g, &qv, 200.0, CompressionStrategy::HilbertSweep);
        let apsp = crate::algo::apsp_dijkstra(&g);
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                assert!(
                    cv.lower_bound(NodeId(u as u32), NodeId(v as u32)) <= apsp.get(u, v) + 1e-9
                );
            }
        }
    }

    #[test]
    fn zero_xi_compresses_only_identical_vectors() {
        let (_, qv, cv) = fig5_compressed(0.0);
        for v in 0..9u32 {
            if let NodePsi::Compressed { theta, eps } = cv.node_psi(NodeId(v)) {
                assert_eq!(*eps, 0.0);
                assert_eq!(qv.quantized_diff(NodeId(v), *theta), 0.0);
            }
        }
        // v4 and v5 share ⟨4,10⟩: at least one compression happens.
        assert!(cv.num_compressed() >= 1);
    }

    #[test]
    fn larger_xi_compresses_more() {
        let g = grid_network(9, 9, 1.1, 64);
        let lms = select_landmarks(&g, 4, LandmarkStrategy::Random, 65);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 10);
        let mut last = 0usize;
        for xi in [0.0, 200.0, 1000.0, 1e9] {
            let cv = CompressedVectors::build(&g, &qv, xi, CompressionStrategy::HilbertSweep);
            assert!(cv.num_compressed() >= last, "ξ={xi}");
            last = cv.num_compressed();
        }
        // Unbounded ξ ⇒ single representative in the sweep.
        assert_eq!(last, g.num_nodes() - 1);
    }

    #[test]
    fn storage_shrinks_with_compression() {
        let g = grid_network(10, 10, 1.1, 66);
        let lms = select_landmarks(&g, 16, LandmarkStrategy::Random, 67);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 12);
        let none = CompressedVectors::build(&g, &qv, -1.0, CompressionStrategy::HilbertSweep);
        let lots = CompressedVectors::build(&g, &qv, 2000.0, CompressionStrategy::HilbertSweep);
        assert!(lots.storage_bytes() < none.storage_bytes());
    }

    #[test]
    fn theta_always_points_to_full_vector() {
        let g = grid_network(8, 8, 1.2, 68);
        let lms = select_landmarks(&g, 6, LandmarkStrategy::Farthest, 69);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 8);
        for strat in [
            CompressionStrategy::GreedyExact,
            CompressionStrategy::HilbertSweep,
        ] {
            let cv = CompressedVectors::build(&g, &qv, 500.0, strat);
            for v in 0..g.num_nodes() as u32 {
                let (theta, _) = cv.theta_eps(NodeId(v));
                assert!(
                    matches!(cv.node_psi(theta), NodePsi::Full(_)),
                    "{strat:?}: θ of v{v} is itself compressed"
                );
            }
        }
    }
}
