//! `b`-bit quantization of landmark distance vectors (Section V-A).
//!
//! Equation 5: `dist_b(sᵢ,v) = λ · round(dist(sᵢ,v)/λ)` with
//! `λ = Dmax / (2^b − 1)`.
//!
//! Equation 6 / Lemma 3: the loosened lower bound
//! `distLB^loose(v,v′) = max{0, −λ + maxᵢ |dist_b(sᵢ,v) − dist_b(sᵢ,v′)|}`
//! never exceeds `distLB(v,v′)` and is therefore still admissible.

use crate::ids::NodeId;
use crate::landmark::vectors::LandmarkVectors;

/// Quantized landmark vectors: each distance stored as a `b`-bit
/// integer index `q`, decoding as `q · λ`.
#[derive(Debug, Clone)]
pub struct QuantizedVectors {
    /// Quantization step λ.
    lambda: f64,
    /// Bits per distance `b`.
    bits: u8,
    /// Number of landmarks.
    c: usize,
    /// `q[v][i]` = quantized index of `dist(sᵢ, v)`; row-major per node.
    q: Vec<u32>,
    num_nodes: usize,
}

impl QuantizedVectors {
    /// Quantizes exact vectors to `bits`-bit indices.
    ///
    /// Unreachable (infinite) landmark distances saturate to the
    /// maximum index; the resulting bound is still a valid lower bound
    /// because both endpoints saturate together only when both are far.
    /// (The paper's connected road networks never hit this case.)
    ///
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 31`.
    pub fn quantize(exact: &LandmarkVectors, bits: u8) -> Self {
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        let dmax = exact.max_distance();
        let levels = (1u64 << bits) - 1;
        // Degenerate dmax (single-node graph): λ=1 avoids div-by-zero;
        // all quantized values are 0.
        let lambda = if dmax > 0.0 {
            dmax / levels as f64
        } else {
            1.0
        };
        let c = exact.num_landmarks();
        let num_nodes = exact.num_nodes();
        let mut q = Vec::with_capacity(num_nodes * c);
        for v in 0..num_nodes {
            for i in 0..c {
                let d = exact.landmark_dist(i, NodeId(v as u32));
                let idx = if d.is_finite() {
                    ((d / lambda).round() as u64).min(levels) as u32
                } else {
                    levels as u32
                };
                q.push(idx);
            }
        }
        QuantizedVectors {
            lambda,
            bits,
            c,
            q,
            num_nodes,
        }
    }

    /// The quantization step λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Bits per entry.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of landmarks `c`.
    pub fn num_landmarks(&self) -> usize {
        self.c
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The quantized index vector of node `v`.
    pub fn indices(&self, v: NodeId) -> &[u32] {
        let base = v.index() * self.c;
        &self.q[base..base + self.c]
    }

    /// The quantized distance `dist_b(sᵢ, v) = qᵢ·λ`.
    pub fn quantized_dist(&self, i: usize, v: NodeId) -> f64 {
        self.indices(v)[i] as f64 * self.lambda
    }

    /// The quantized difference
    /// `ϱ(v,v′) = maxᵢ |dist_b(sᵢ,v) − dist_b(sᵢ,v′)|` used both by the
    /// loose bound and by the compression algorithm.
    pub fn quantized_diff(&self, v: NodeId, w: NodeId) -> f64 {
        diff_from_indices(self.indices(v), self.indices(w), self.lambda)
    }

    /// The loosened lower bound of Equation 6 (Lemma 3).
    pub fn loose_lower_bound(&self, v: NodeId, w: NodeId) -> f64 {
        (self.quantized_diff(v, w) - self.lambda).max(0.0)
    }

    /// Storage per node in bits (`c·b`) — the hint-size accounting used
    /// by proof-size experiments.
    pub fn bits_per_node(&self) -> usize {
        self.c * self.bits as usize
    }
}

/// `maxᵢ |qᵢ − q′ᵢ| · λ` over two index vectors.
pub fn diff_from_indices(a: &[u32], b: &[u32], lambda: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let max_idx_diff = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x.abs_diff(y))
        .max()
        .unwrap_or(0);
    max_idx_diff as f64 * lambda
}

/// Loose lower bound from raw index vectors (client-side verification
/// uses this form, Eq. 6).
pub fn loose_lb_from_indices(a: &[u32], b: &[u32], lambda: f64) -> f64 {
    (diff_from_indices(a, b, lambda) - lambda).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;
    use crate::landmark::select::{select_landmarks, LandmarkStrategy};
    use crate::landmark::vectors::figure5_graph;

    #[test]
    fn figure6a_quantization() {
        // Paper: Dmax = 14, b = 3 ⇒ λ = 2; v4's vector ⟨3,9⟩ → ⟨4,10⟩.
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let qv = QuantizedVectors::quantize(&lv, 3);
        assert_eq!(qv.lambda(), 2.0);
        assert_eq!(qv.quantized_dist(0, NodeId(3)), 4.0);
        assert_eq!(qv.quantized_dist(1, NodeId(3)), 10.0);
        // Full table check (Figure 6a).
        let expect: [(f64, f64); 9] = [
            (2.0, 4.0),  // v1
            (0.0, 6.0),  // v2
            (2.0, 8.0),  // v3  (1/2 rounds to 0.5→round=1? round(0.5)=1 → 2)
            (4.0, 10.0), // v4
            (4.0, 10.0), // v5
            (6.0, 2.0),  // v6
            (6.0, 0.0),  // v7
            (10.0, 4.0), // v8
            (14.0, 8.0), // v9
        ];
        for (v, &(a, b)) in expect.iter().enumerate() {
            assert_eq!(qv.quantized_dist(0, NodeId(v as u32)), a, "v{}", v + 1);
            assert_eq!(qv.quantized_dist(1, NodeId(v as u32)), b, "v{}", v + 1);
        }
    }

    #[test]
    fn lemma3_loose_bound_below_exact_bound() {
        let g = grid_network(8, 8, 1.15, 50);
        let lms = select_landmarks(&g, 5, LandmarkStrategy::Farthest, 51);
        let lv = LandmarkVectors::compute(&g, &lms);
        for bits in [4u8, 8, 12] {
            let qv = QuantizedVectors::quantize(&lv, bits);
            for u in 0..g.num_nodes() {
                for v in 0..g.num_nodes() {
                    let loose = qv.loose_lower_bound(NodeId(u as u32), NodeId(v as u32));
                    let exact = lv.lower_bound(NodeId(u as u32), NodeId(v as u32));
                    assert!(
                        loose <= exact + 1e-9,
                        "bits={bits} ({u},{v}): loose {loose} > exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn loose_bound_is_admissible() {
        // Transitivity of Lemma 3 + Theorem 1: loose LB ≤ true distance.
        let g = grid_network(7, 7, 1.2, 52);
        let lms = select_landmarks(&g, 4, LandmarkStrategy::Random, 53);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 6);
        let apsp = crate::algo::apsp_dijkstra(&g);
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                let lb = qv.loose_lower_bound(NodeId(u as u32), NodeId(v as u32));
                assert!(lb <= apsp.get(u, v) + 1e-9);
            }
        }
    }

    #[test]
    fn more_bits_tighter_lambda() {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let mut last = f64::INFINITY;
        for bits in [3u8, 6, 9, 12] {
            let qv = QuantizedVectors::quantize(&lv, bits);
            assert!(qv.lambda() < last);
            last = qv.lambda();
        }
    }

    #[test]
    fn indices_fit_in_bits() {
        let g = grid_network(6, 6, 1.1, 54);
        let lms = select_landmarks(&g, 3, LandmarkStrategy::Random, 55);
        let lv = LandmarkVectors::compute(&g, &lms);
        for bits in [1u8, 3, 8] {
            let qv = QuantizedVectors::quantize(&lv, bits);
            let cap = (1u64 << bits) - 1;
            for v in 0..36u32 {
                for &idx in qv.indices(NodeId(v)) {
                    assert!(idx as u64 <= cap);
                }
            }
        }
    }

    #[test]
    fn bits_per_node_accounting() {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let qv = QuantizedVectors::quantize(&lv, 12);
        assert_eq!(qv.bits_per_node(), 24);
    }

    #[test]
    fn loose_bound_zero_on_self() {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let qv = QuantizedVectors::quantize(&lv, 5);
        for v in 0..9u32 {
            assert_eq!(qv.loose_lower_bound(NodeId(v), NodeId(v)), 0.0);
        }
    }
}
