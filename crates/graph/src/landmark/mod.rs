//! Landmark machinery for the LDM verification method (Section V-A).
//!
//! * [`select`] — landmark selection strategies (random and
//!   farthest-point, per Goldberg & Harrelson \[26\]).
//! * [`vectors`] — exact landmark distance vectors Ψ(v) (Eq. 2) and the
//!   lower bound `distLB` (Eq. 3, Theorem 1).
//! * [`quantize`] — `b`-bit quantization of landmark distances (Eq. 5)
//!   and the loosened lower bound (Eq. 6, Lemma 3).
//! * [`compress`] — reference-node compression of quantized vectors
//!   with threshold ξ (Lemma 4), in the paper's greedy form and a
//!   scalable Hilbert-sweep variant.

pub mod compress;
pub mod quantize;
pub mod select;
pub mod vectors;

pub use compress::{CompressedVectors, CompressionStrategy, NodePsi};
pub use quantize::QuantizedVectors;
pub use select::{select_landmarks, LandmarkStrategy};
pub use vectors::LandmarkVectors;
