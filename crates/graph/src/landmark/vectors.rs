//! Exact landmark distance vectors Ψ(v) and the triangle-inequality
//! lower bound.
//!
//! Equation 2: `Ψ(v) = ⟨dist(s₁,v), …, dist(s_c,v)⟩`.
//! Equation 3: `distLB(v,v′) = maxᵢ |dist(sᵢ,v) − dist(sᵢ,v′)|`.
//! Theorem 1 guarantees `distLB(v,v′) ≤ dist(v,v′)`.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::search::SearchWorkspace;

/// Exact landmark distance vectors for every node.
#[derive(Debug, Clone)]
pub struct LandmarkVectors {
    /// The landmark nodes s₁…s_c.
    landmarks: Vec<NodeId>,
    /// `dist[l][v]` = graph distance from landmark `l` to node `v`
    /// (undirected graphs: symmetric in direction).
    dist: Vec<Vec<f64>>,
}

impl LandmarkVectors {
    /// Computes vectors with one Dijkstra per landmark —
    /// O(c·(|E| + |V| log |V|)), the dominant LDM construction cost
    /// measured in Figure 12b.
    pub fn compute(g: &Graph, landmarks: &[NodeId]) -> Self {
        // One reused workspace across all landmark searches: the only
        // per-landmark allocation is the stored row itself.
        let mut ws = SearchWorkspace::with_capacity(g.num_nodes());
        let dist = landmarks
            .iter()
            .map(|&lm| ws.sssp(g, lm).dist_vec())
            .collect();
        LandmarkVectors {
            landmarks: landmarks.to_vec(),
            dist,
        }
    }

    /// Number of landmarks `c`.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of nodes the vectors cover.
    pub fn num_nodes(&self) -> usize {
        self.dist.first().map_or(0, Vec::len)
    }

    /// The landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Ψ(v): the distance vector of node `v` (one entry per landmark).
    pub fn psi(&self, v: NodeId) -> Vec<f64> {
        self.dist.iter().map(|row| row[v.index()]).collect()
    }

    /// `dist(sᵢ, v)` for landmark index `i`.
    #[inline]
    pub fn landmark_dist(&self, i: usize, v: NodeId) -> f64 {
        self.dist[i][v.index()]
    }

    /// Overwrites landmark `i`'s distance row (dynamic updates
    /// recompute only the rows an edge change invalidated).
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the node count.
    pub fn set_row(&mut self, i: usize, row: Vec<f64>) {
        assert_eq!(row.len(), self.dist[i].len(), "row length mismatch");
        self.dist[i] = row;
    }

    /// The exact lower bound `distLB(v, v′)` of Equation 3.
    ///
    /// Landmarks that do not reach either node are skipped (an infinite
    /// difference would not be a valid bound).
    pub fn lower_bound(&self, v: NodeId, w: NodeId) -> f64 {
        let mut best: f64 = 0.0;
        for row in &self.dist {
            let (a, b) = (row[v.index()], row[w.index()]);
            if a.is_finite() && b.is_finite() {
                best = best.max((a - b).abs());
            }
        }
        best
    }

    /// Largest finite landmark distance — `Dmax` of the quantization
    /// step (Eq. 5).
    pub fn max_distance(&self) -> f64 {
        let mut dmax: f64 = 0.0;
        for row in &self.dist {
            for &d in row {
                if d.is_finite() {
                    dmax = dmax.max(d);
                }
            }
        }
        dmax
    }
}

/// The 9-node network of Figure 5a with landmarks v2 and v7
/// (node ids v1..v9 ↦ 0..8). Exposed for the quantization and
/// compression test suites, which re-check the Figure 6 tables.
#[cfg(test)]
pub(crate) fn figure5_graph() -> Graph {
    use crate::builder::GraphBuilder;
    let mut b = GraphBuilder::new();
    for _ in 0..9 {
        b.add_node(0.0, 0.0);
    }
    let edges = [
        (0u32, 1u32, 2.0), // v1-v2
        (1, 2, 1.0),       // v2-v3
        (2, 3, 2.0),       // v3-v4
        (3, 4, 1.0),       // v4-v5
        (0, 5, 3.0),       // v1-v6
        (5, 6, 1.0),       // v6-v7
        (6, 7, 3.0),       // v7-v8
        (7, 8, 5.0),       // v8-v9
    ];
    for (u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), w).unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_path;

    use crate::gen::grid_network;

    #[test]
    fn figure5_landmark_distances() {
        // Figure 5b table: dist(v2,·) and dist(v7,·).
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let expect_v2 = [2.0, 0.0, 1.0, 3.0, 4.0, 5.0, 6.0, 9.0, 14.0];
        let expect_v7 = [4.0, 6.0, 7.0, 9.0, 10.0, 1.0, 0.0, 3.0, 8.0];
        for v in 0..9u32 {
            assert_eq!(
                lv.landmark_dist(0, NodeId(v)),
                expect_v2[v as usize],
                "v{}",
                v + 1
            );
            assert_eq!(
                lv.landmark_dist(1, NodeId(v)),
                expect_v7[v as usize],
                "v{}",
                v + 1
            );
        }
    }

    #[test]
    fn figure5_lower_bound_example() {
        // distLB(v3, v8) = max{|1−9|, |7−3|} = 8 ≤ dist(v3,v8) = 10.
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        assert_eq!(lv.lower_bound(NodeId(2), NodeId(7)), 8.0);
        let actual = dijkstra_path(&g, NodeId(2), NodeId(7)).unwrap().distance;
        assert_eq!(actual, 10.0);
    }

    #[test]
    fn theorem1_lower_bound_property() {
        // distLB ≤ dist for all pairs on a random grid.
        let g = grid_network(8, 8, 1.15, 40);
        let lms = crate::landmark::select_landmarks(
            &g,
            6,
            crate::landmark::LandmarkStrategy::Farthest,
            41,
        );
        let lv = LandmarkVectors::compute(&g, &lms);
        let apsp = crate::algo::apsp_dijkstra(&g);
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                let lb = lv.lower_bound(NodeId(u as u32), NodeId(v as u32));
                assert!(
                    lb <= apsp.get(u, v) + 1e-9,
                    "LB {lb} > dist {} for ({u},{v})",
                    apsp.get(u, v)
                );
            }
        }
    }

    #[test]
    fn lower_bound_symmetric_and_zero_on_self() {
        let g = grid_network(6, 6, 1.1, 42);
        let lms =
            crate::landmark::select_landmarks(&g, 4, crate::landmark::LandmarkStrategy::Random, 43);
        let lv = LandmarkVectors::compute(&g, &lms);
        for u in 0..36u32 {
            assert_eq!(lv.lower_bound(NodeId(u), NodeId(u)), 0.0);
            for v in 0..36u32 {
                assert_eq!(
                    lv.lower_bound(NodeId(u), NodeId(v)),
                    lv.lower_bound(NodeId(v), NodeId(u))
                );
            }
        }
    }

    #[test]
    fn exact_at_landmarks() {
        // distLB(s, v) = dist(s, v) when s is itself a landmark.
        let g = grid_network(7, 7, 1.1, 44);
        let lms = vec![NodeId(0), NodeId(48)];
        let lv = LandmarkVectors::compute(&g, &lms);
        for v in 0..49u32 {
            let d = crate::algo::dijkstra_sssp(&g, NodeId(0)).dist[v as usize];
            assert!((lv.lower_bound(NodeId(0), NodeId(v)) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn dmax_is_max() {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        assert_eq!(lv.max_distance(), 14.0);
    }

    #[test]
    fn psi_vector_shape() {
        let g = figure5_graph();
        let lv = LandmarkVectors::compute(&g, &[NodeId(1), NodeId(6)]);
        let psi = lv.psi(NodeId(3)); // v4
        assert_eq!(psi, vec![3.0, 9.0]);
    }
}
