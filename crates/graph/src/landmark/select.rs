//! Landmark selection strategies.
//!
//! The paper defers to \[26, 27\] for concrete selection methods; we
//! implement the two standard ones. Farthest-point (a.k.a. k-center
//! greedy) is the classic choice from Goldberg & Harrelson and yields
//! tighter bounds than uniform random selection on road networks.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::search::SearchWorkspace;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// How landmarks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Uniform random sample of nodes.
    Random,
    /// Greedy farthest-point traversal: each landmark maximizes graph
    /// distance to the closest already-chosen landmark.
    Farthest,
}

/// Selects `c` landmark nodes.
///
/// # Panics
/// Panics if `c == 0` or `c > |V|`.
pub fn select_landmarks(g: &Graph, c: usize, strategy: LandmarkStrategy, seed: u64) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(c > 0 && c <= n, "need 0 < c ≤ |V|");
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        LandmarkStrategy::Random => {
            let mut picked: Vec<NodeId> = sample(&mut rng, n, c)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            picked.sort();
            picked
        }
        LandmarkStrategy::Farthest => {
            // Start from a random node, then repeatedly take the node
            // maximizing min-distance to the chosen set. min_dist is
            // maintained incrementally with one SSSP per landmark.
            let first = NodeId(sample(&mut rng, n, 1).index(0) as u32);
            let mut picked = vec![first];
            let mut ws = SearchWorkspace::with_capacity(n);
            let mut min_dist = ws.sssp(g, first).dist_vec();
            while picked.len() < c {
                let (best, _) = min_dist
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.is_finite())
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .expect("graph has reachable nodes");
                let lm = NodeId(best as u32);
                picked.push(lm);
                let r = ws.sssp(g, lm);
                for (i, m) in min_dist.iter_mut().enumerate() {
                    let d = r.dist(NodeId(i as u32));
                    if d < *m {
                        *m = d;
                    }
                }
            }
            picked.sort();
            picked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;

    #[test]
    fn random_selection_properties() {
        let g = grid_network(10, 10, 1.1, 1);
        let lms = select_landmarks(&g, 10, LandmarkStrategy::Random, 7);
        assert_eq!(lms.len(), 10);
        let mut dedup = lms.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "landmarks must be distinct");
        assert!(lms.windows(2).all(|w| w[0] < w[1]), "sorted output");
    }

    #[test]
    fn farthest_selection_spreads_out() {
        let g = grid_network(12, 12, 1.1, 2);
        let far = select_landmarks(&g, 4, LandmarkStrategy::Farthest, 3);
        assert_eq!(far.len(), 4);
        // Pairwise graph distances among farthest landmarks should be
        // large: each ≥ half the graph "radius" heuristically. Just
        // check they are pairwise distinct and nonadjacent-ish.
        for i in 0..far.len() {
            for j in i + 1..far.len() {
                assert_ne!(far[i], far[j]);
                let d = crate::algo::dijkstra_path(&g, far[i], far[j])
                    .unwrap()
                    .distance;
                assert!(d > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_network(9, 9, 1.1, 3);
        for strat in [LandmarkStrategy::Random, LandmarkStrategy::Farthest] {
            let a = select_landmarks(&g, 6, strat, 11);
            let b = select_landmarks(&g, 6, strat, 11);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn c_equals_n_selects_everything() {
        let g = grid_network(4, 4, 1.0, 4);
        let lms = select_landmarks(&g, 16, LandmarkStrategy::Random, 5);
        assert_eq!(lms.len(), 16);
    }

    #[test]
    #[should_panic]
    fn zero_landmarks_rejected() {
        let g = grid_network(4, 4, 1.0, 5);
        let _ = select_landmarks(&g, 0, LandmarkStrategy::Random, 6);
    }
}
