//! Query workload generation (Section VI-A).
//!
//! "We generate a workload with 100 source-target (vs, vt) pairs, such
//! that the shortest path distance between the source node vs and the
//! target node vt is as close to the query range as possible."

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::search::SearchWorkspace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A query workload: `(vs, vt)` pairs with near-`range` distances.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The query pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// The target query range the pairs approximate.
    pub range: f64,
}

/// Generates `count` pairs whose shortest-path distance is as close to
/// `range` as possible.
///
/// For each pair: pick a random source, expand a Dijkstra ball to
/// `1.5 × range`, and choose the settled node whose distance is closest
/// to `range`. Sources whose ball never reaches `0.5 × range` (deep in
/// a sparse corner) are resampled.
///
/// # Panics
/// Panics on an empty graph or non-positive range.
pub fn make_workload(g: &Graph, range: f64, count: usize, seed: u64) -> Workload {
    assert!(g.num_nodes() > 1, "need at least two nodes");
    assert!(range > 0.0, "range must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let mut ws = SearchWorkspace::with_capacity(g.num_nodes());
    while pairs.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 200,
            "workload generation cannot hit range {range} on this graph"
        );
        let vs = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let ball = ws.ball(g, vs, range * 1.5);
        let mut best: Option<(f64, NodeId)> = None;
        for v in g.nodes() {
            if v == vs {
                continue;
            }
            let d = ball.dist(v);
            if !d.is_finite() {
                continue;
            }
            let gap = (d - range).abs();
            if best.is_none_or(|(bg, _)| gap < bg) {
                best = Some((gap, v));
            }
        }
        match best {
            Some((gap, vt)) if gap <= range * 0.5 => pairs.push((vs, vt)),
            _ => continue,
        }
    }
    Workload { pairs, range }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_path;
    use crate::gen::grid_network;

    #[test]
    fn distances_near_range() {
        let g = grid_network(20, 20, 1.15, 90);
        let range = 3000.0;
        let w = make_workload(&g, range, 20, 91);
        assert_eq!(w.pairs.len(), 20);
        for &(s, t) in &w.pairs {
            let d = dijkstra_path(&g, s, t).unwrap().distance;
            assert!(
                (d - range).abs() <= range * 0.5,
                "pair ({s},{t}) distance {d} too far from {range}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_network(10, 10, 1.1, 92);
        let a = make_workload(&g, 2000.0, 10, 93);
        let b = make_workload(&g, 2000.0, 10, 93);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn source_differs_from_target() {
        let g = grid_network(10, 10, 1.1, 94);
        let w = make_workload(&g, 1000.0, 30, 95);
        assert!(w.pairs.iter().all(|(s, t)| s != t));
    }

    #[test]
    fn small_ranges_supported() {
        let g = grid_network(15, 15, 1.1, 96);
        let w = make_workload(&g, 250.0, 10, 97);
        for &(s, t) in &w.pairs {
            let d = dijkstra_path(&g, s, t).unwrap().distance;
            assert!(d <= 250.0 * 1.5);
        }
    }

    #[test]
    #[should_panic]
    fn unreachable_range_panics() {
        // A 2-node graph cannot produce 100 pairs at a range far beyond
        // its diameter.
        let mut b = crate::builder::GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 0.0);
        b.add_edge(u, v, 1.0).unwrap();
        let g = b.build();
        let _ = make_workload(&g, 1e9, 5, 98);
    }
}
