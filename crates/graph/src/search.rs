//! Reusable, allocation-free Dijkstra machinery.
//!
//! Every search in the seed implementation allocated three `O(|V|)`
//! vectors plus a binary heap *per query*. At provider scale ("heavy
//! traffic from millions of users") that allocation traffic dominates
//! short queries. [`SearchWorkspace`] fixes it:
//!
//! * **Generation stamping** — `dist`/`parent`/`settled`/heap-position
//!   entries are valid only when their stamp equals the current
//!   generation, so starting a new query is O(1): bump the generation,
//!   nothing is cleared.
//! * **4-ary indexed heap** — children of slot `i` are `4i+1..4i+4`;
//!   the shallower tree does fewer cache-missing compares than a binary
//!   heap on road-network workloads, and the node→slot index enables
//!   decrease-key, so the heap holds at most one entry per node
//!   (the seed's lazy-deletion heap grows with relaxations, not nodes).
//!
//! Tie-breaking is byte-compatible with the seed implementation (pop
//! order is lexicographic on `(distance, node id)`), so distances,
//! parents and settle order are bit-identical — property-tested in
//! `tests/perf_equivalence.rs` against [`reference`]
//! (`crate::algo::dijkstra::reference`).
//!
//! Repeated searches on the same workspace perform **zero heap
//! allocations** once the arrays have grown to the graph size.

use crate::algo::dijkstra::SsspResult;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::path::Path;
use std::cell::RefCell;

const NO_NODE: u32 = u32::MAX;
const NOT_IN_HEAP: u32 = u32::MAX;

/// One 4-ary heap slot: the key is stored inline so sift comparisons
/// stay cache-local (indirect `dist[]` reads per comparison cost more
/// than the duplicated 8 bytes).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: f64,
    node: u32,
}

impl HeapEntry {
    /// Seed-compatible ordering: lexicographic on `(key, node id)`.
    #[inline]
    fn less(self, other: HeapEntry) -> bool {
        self.key < other.key || (self.key == other.key && self.node < other.node)
    }
}

/// Per-node search state, kept in one array-of-structs so that
/// touching a node during relaxation costs a single cache-line access
/// (stamp, distance, parent and settled flag travel together).
#[derive(Debug, Clone, Copy)]
struct NodeState {
    dist: f64,
    /// Parent node id, `NO_NODE` for none.
    parent: u32,
    /// Entry is valid iff this equals the workspace generation.
    stamp: u32,
    settled: bool,
}

impl NodeState {
    const FRESH: NodeState = NodeState {
        dist: f64::INFINITY,
        parent: NO_NODE,
        stamp: 0,
        settled: false,
    };
}

/// Reusable state for Dijkstra-family searches.
///
/// Create once (per thread) and reuse across queries; see the module
/// docs for the invariants that make reuse O(1).
#[derive(Debug, Clone)]
pub struct SearchWorkspace {
    generation: u32,
    /// Per-node stamped state (see [`NodeState`]).
    nodes: Vec<NodeState>,
    /// 4-ary min-heap with inline keys (ties: smaller node id).
    heap: Vec<HeapEntry>,
    /// Node id → heap slot (`NOT_IN_HEAP` when absent; valid only for
    /// nodes stamped with the current generation).
    heap_pos: Vec<u32>,
}

impl Default for SearchWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchWorkspace {
    /// An empty workspace; arrays grow lazily to the graph size.
    pub fn new() -> Self {
        SearchWorkspace {
            generation: 0,
            nodes: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
        }
    }

    /// A workspace pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::new();
        ws.grow(n);
        ws
    }

    fn grow(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(n, NodeState::FRESH);
            self.heap_pos.resize(n, NOT_IN_HEAP);
        }
    }

    /// Starts a new query: O(1) unless the generation counter wraps.
    fn begin(&mut self, n: usize) {
        self.grow(n);
        self.heap.clear();
        if self.generation == u32::MAX {
            // Once every 2³² queries: hard reset so stamp 0 is unused.
            self.nodes.iter_mut().for_each(|s| s.stamp = 0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Makes node `v`'s entries valid for the current query.
    #[inline]
    fn touch(&mut self, v: usize) {
        if self.nodes[v].stamp != self.generation {
            self.nodes[v] = NodeState {
                stamp: self.generation,
                ..NodeState::FRESH
            };
            self.heap_pos[v] = NOT_IN_HEAP;
        }
    }

    // --- 4-ary indexed heap ------------------------------------------------

    /// Moves `entry` up from slot `i` (hole-based: positions written
    /// once per displaced element, the entry settled at the end).
    fn sift_up(&mut self, mut i: usize, entry: HeapEntry) {
        while i > 0 {
            let p = (i - 1) / 4;
            let parent = self.heap[p];
            if entry.less(parent) {
                self.heap[i] = parent;
                self.heap_pos[parent.node as usize] = i as u32;
                i = p;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.node as usize] = i as u32;
    }

    /// Moves `entry` down from slot `i`.
    fn sift_down(&mut self, mut i: usize, entry: HeapEntry) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut best = first;
            let mut best_entry = self.heap[first];
            for c in first + 1..last {
                let e = self.heap[c];
                if e.less(best_entry) {
                    best = c;
                    best_entry = e;
                }
            }
            if best_entry.less(entry) {
                self.heap[i] = best_entry;
                self.heap_pos[best_entry.node as usize] = i as u32;
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.node as usize] = i as u32;
    }

    /// Inserts `v` with `key`, or decreases its existing key.
    #[inline]
    fn heap_push_or_decrease(&mut self, v: u32, key: f64) {
        let entry = HeapEntry { key, node: v };
        let pos = self.heap_pos[v as usize];
        if pos == NOT_IN_HEAP {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1, entry);
        } else {
            // Key only ever decreases during relaxation.
            self.sift_up(pos as usize, entry);
        }
    }

    fn heap_pop(&mut self) -> Option<HeapEntry> {
        let top = *self.heap.first()?;
        self.heap_pos[top.node as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0, last);
        }
        Some(top)
    }

    // --- searches ----------------------------------------------------------

    fn run(&mut self, g: &Graph, source: NodeId, stop_at: Option<u32>, radius: f64) {
        self.begin(g.num_nodes());
        let s = source.index();
        self.touch(s);
        self.nodes[s].dist = 0.0;
        self.heap_push_or_decrease(source.0, 0.0);
        while let Some(HeapEntry { key: d, node: v }) = self.heap_pop() {
            let vi = v as usize;
            if d > radius {
                // Every remaining key is ≥ d: nothing else is in the ball.
                break;
            }
            self.nodes[vi].settled = true;
            if stop_at == Some(v) {
                break;
            }
            let lo = g.offsets[vi] as usize;
            let hi = g.offsets[vi + 1] as usize;
            for k in lo..hi {
                let u = g.adj_targets[k] as usize;
                self.touch(u);
                let state = self.nodes[u];
                if state.settled {
                    continue;
                }
                let nd = d + g.adj_weights[k];
                if nd < state.dist {
                    self.nodes[u].dist = nd;
                    self.nodes[u].parent = v;
                    self.heap_push_or_decrease(u as u32, nd);
                }
            }
        }
    }

    // --- manually-driven searches ------------------------------------------
    //
    // Bidirectional Dijkstra and the arc-flag query need to drive the
    // pop/relax loop themselves (side alternation, arc pruning). These
    // crate-internal hooks expose the workspace's stamped state and
    // indexed heap without giving up its invariants: state mutation
    // only ever happens through `touch`/`relax`/`pop_settle`.

    /// Starts a manually-driven search seeded at `source` with
    /// distance 0.
    pub(crate) fn begin_manual(&mut self, n: usize, source: NodeId) {
        self.begin(n);
        let s = source.index();
        self.touch(s);
        self.nodes[s].dist = 0.0;
        self.heap_push_or_decrease(source.0, 0.0);
    }

    /// Smallest tentative key currently queued, if any.
    pub(crate) fn peek_key(&self) -> Option<f64> {
        self.heap.first().map(|e| e.key)
    }

    /// Pops and settles the nearest queued node, returning
    /// `(node, dist)`. With decrease-key there are no stale entries:
    /// every pop is final.
    pub(crate) fn pop_settle(&mut self) -> Option<(u32, f64)> {
        let e = self.heap_pop()?;
        self.nodes[e.node as usize].settled = true;
        Some((e.node, e.key))
    }

    /// Relaxes the edge `via → u` with candidate distance `nd`;
    /// returns whether it improved `u`.
    pub(crate) fn relax(&mut self, u: u32, via: u32, nd: f64) -> bool {
        let ui = u as usize;
        self.touch(ui);
        let state = self.nodes[ui];
        if state.settled || nd >= state.dist {
            return false;
        }
        self.nodes[ui].dist = nd;
        self.nodes[ui].parent = via;
        self.heap_push_or_decrease(u, nd);
        true
    }

    /// Tentative (or settled) distance of `v` in the current search;
    /// ∞ when untouched.
    pub(crate) fn current_dist(&self, v: usize) -> f64 {
        if self.nodes[v].stamp == self.generation {
            self.nodes[v].dist
        } else {
            f64::INFINITY
        }
    }

    /// Parent of `v` in the current search tree, if assigned.
    pub(crate) fn current_parent(&self, v: usize) -> Option<u32> {
        if self.nodes[v].stamp == self.generation && self.nodes[v].parent != NO_NODE {
            Some(self.nodes[v].parent)
        } else {
            None
        }
    }

    /// Full single-source Dijkstra; the view borrows this workspace.
    pub fn sssp<'a>(&'a mut self, g: &Graph, source: NodeId) -> SearchView<'a> {
        self.run(g, source, None, f64::INFINITY);
        SearchView {
            ws: self,
            source,
            bounded: false,
            n: g.num_nodes(),
        }
    }

    /// Bounded-ball Dijkstra: the view reports finite distances exactly
    /// for nodes with `dist(source, v) ≤ radius` (Lemma 1's subgraph).
    pub fn ball<'a>(&'a mut self, g: &Graph, source: NodeId, radius: f64) -> SearchView<'a> {
        self.run(g, source, None, radius);
        SearchView {
            ws: self,
            source,
            bounded: true,
            n: g.num_nodes(),
        }
    }

    /// Point-to-point Dijkstra with early termination at `target`.
    pub fn path(&mut self, g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
        g.check_node(source)?;
        g.check_node(target)?;
        if source == target {
            return Ok(Path::trivial(source));
        }
        self.run(g, source, Some(target.0), f64::INFINITY);
        let view = SearchView {
            ws: self,
            source,
            bounded: false,
            n: g.num_nodes(),
        };
        view.path_to(target)
            .ok_or(GraphError::Unreachable { source, target })
    }

    /// Point-to-point distance only (no path materialization, no
    /// allocation at all).
    pub fn distance(
        &mut self,
        g: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<f64, GraphError> {
        g.check_node(source)?;
        g.check_node(target)?;
        if source == target {
            return Ok(0.0);
        }
        self.run(g, source, Some(target.0), f64::INFINITY);
        let t = target.index();
        if self.nodes[t].stamp == self.generation && self.nodes[t].settled {
            Ok(self.nodes[t].dist)
        } else {
            Err(GraphError::Unreachable { source, target })
        }
    }
}

/// Read-only results of the latest search, borrowing the workspace.
pub struct SearchView<'a> {
    ws: &'a SearchWorkspace,
    source: NodeId,
    bounded: bool,
    n: usize,
}

impl SearchView<'_> {
    /// The query's source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Number of nodes in the searched graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn stamped(&self, v: usize) -> bool {
        self.ws.nodes[v].stamp == self.ws.generation
    }

    /// Whether `v` was settled (popped with a final distance).
    #[inline]
    pub fn settled(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.n && self.stamped(i) && self.ws.nodes[i].settled
    }

    /// Distance to `v`; `INFINITY` when unreached (or outside the ball
    /// for bounded searches — matching the seed's ball semantics).
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        let i = v.index();
        if i >= self.n || !self.stamped(i) || (self.bounded && !self.ws.nodes[i].settled) {
            f64::INFINITY
        } else {
            self.ws.nodes[i].dist
        }
    }

    /// Parent of `v` in the shortest-path tree.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i >= self.n || !self.stamped(i) || (self.bounded && !self.ws.nodes[i].settled) {
            return None;
        }
        match self.ws.nodes[i].parent {
            NO_NODE => None,
            p => Some(NodeId(p)),
        }
    }

    /// Reconstructs the shortest path to `target`, if reached.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        if self.dist(target).is_infinite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent(cur) {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(Path {
            nodes,
            distance: self.dist(target),
        })
    }

    /// Materializes the per-node distance vector (allocates).
    pub fn dist_vec(&self) -> Vec<f64> {
        (0..self.n as u32).map(|v| self.dist(NodeId(v))).collect()
    }

    /// Materializes a [`SsspResult`] for API compatibility (allocates).
    pub fn to_sssp_result(&self) -> SsspResult {
        SsspResult {
            source: self.source,
            dist: self.dist_vec(),
            parent: (0..self.n as u32).map(|v| self.parent(NodeId(v))).collect(),
        }
    }

    /// Iterates the settled nodes in ascending id order.
    pub fn settled_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32)
            .map(NodeId)
            .filter(move |&v| self.settled(v))
    }
}

thread_local! {
    static THREAD_WS: RefCell<SearchWorkspace> = RefCell::new(SearchWorkspace::new());
    static THREAD_BI_WS: RefCell<(SearchWorkspace, SearchWorkspace)> =
        RefCell::new((SearchWorkspace::new(), SearchWorkspace::new()));
}

/// Runs `f` with this thread's shared [`SearchWorkspace`].
///
/// The classic `dijkstra_*` free functions route through here, so
/// repeated calls on one thread reuse a single workspace. Re-entrant
/// use (an `f` that itself searches) falls back to a fresh scratch
/// workspace instead of panicking.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut SearchWorkspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut SearchWorkspace::new()),
    })
}

/// Runs `f` with this thread's shared **pair** of workspaces — the
/// state a two-frontier search needs (bidirectional Dijkstra expands
/// from both endpoints at once). Distinct from
/// [`with_thread_workspace`]'s singleton, so a bidirectional search
/// may itself be nested inside code holding the single workspace.
/// Re-entrant use falls back to fresh scratch workspaces.
pub fn with_thread_bi_workspace<R>(
    f: impl FnOnce(&mut SearchWorkspace, &mut SearchWorkspace) -> R,
) -> R {
    THREAD_BI_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pair) => {
            let (a, b) = &mut *pair;
            f(a, b)
        }
        Err(_) => f(&mut SearchWorkspace::new(), &mut SearchWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::reference;
    use crate::builder::GraphBuilder;
    use crate::gen::{grid_network, random_geometric};

    fn assert_matches_reference(g: &Graph, ws: &mut SearchWorkspace, source: NodeId) {
        let want = reference::sssp(g, source);
        let got = ws.sssp(g, source);
        for v in g.nodes() {
            assert_eq!(
                got.dist(v).to_bits(),
                want.dist[v.index()].to_bits(),
                "dist({source}, {v})"
            );
            assert_eq!(got.parent(v), want.parent[v.index()], "parent({v})");
        }
    }

    #[test]
    fn sssp_bit_identical_to_reference_across_reuses() {
        let g = grid_network(12, 12, 1.2, 77);
        let mut ws = SearchWorkspace::new();
        for s in [0u32, 1, 64, 143, 7, 0] {
            assert_matches_reference(&g, &mut ws, NodeId(s));
        }
    }

    #[test]
    fn reuse_across_different_graphs() {
        let g1 = grid_network(10, 10, 1.2, 5);
        let g2 = random_geometric(60, 3, 6);
        let g3 = grid_network(4, 4, 1.1, 7);
        let mut ws = SearchWorkspace::new();
        for _ in 0..3 {
            assert_matches_reference(&g1, &mut ws, NodeId(0));
            assert_matches_reference(&g2, &mut ws, NodeId(59));
            assert_matches_reference(&g3, &mut ws, NodeId(15));
        }
    }

    #[test]
    fn ball_matches_reference_semantics() {
        let g = grid_network(9, 9, 1.2, 8);
        let mut ws = SearchWorkspace::new();
        for radius in [0.0, 500.0, 2000.0, 1e9] {
            let want = reference::ball(&g, NodeId(0), radius);
            let got = ws.ball(&g, NodeId(0), radius);
            for v in g.nodes() {
                assert_eq!(
                    got.dist(v).to_bits(),
                    want.dist[v.index()].to_bits(),
                    "radius {radius}, node {v}"
                );
            }
        }
    }

    #[test]
    fn path_matches_reference() {
        let g = grid_network(10, 10, 1.2, 9);
        let mut ws = SearchWorkspace::new();
        for (s, t) in [(0u32, 99u32), (5, 50), (99, 0), (42, 42)] {
            let want = reference::path(&g, NodeId(s), NodeId(t)).unwrap();
            let got = ws.path(&g, NodeId(s), NodeId(t)).unwrap();
            assert_eq!(got.nodes, want.nodes, "({s},{t})");
            assert_eq!(got.distance.to_bits(), want.distance.to_bits());
            let d = ws.distance(&g, NodeId(s), NodeId(t)).unwrap();
            assert_eq!(d.to_bits(), want.distance.to_bits());
        }
    }

    #[test]
    fn unreachable_and_bad_nodes() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g = b.build();
        let mut ws = SearchWorkspace::new();
        assert!(matches!(
            ws.path(&g, u, v),
            Err(GraphError::Unreachable { .. })
        ));
        assert!(ws.path(&g, u, NodeId(99)).is_err());
        assert!(ws.distance(&g, u, v).is_err());
    }

    #[test]
    fn view_helpers_consistent() {
        let g = grid_network(6, 6, 1.2, 10);
        let mut ws = SearchWorkspace::new();
        let view = ws.sssp(&g, NodeId(0));
        assert_eq!(view.source(), NodeId(0));
        assert_eq!(view.num_nodes(), 36);
        assert_eq!(view.settled_nodes().count(), 36, "grid is connected");
        let r = view.to_sssp_result();
        for v in g.nodes() {
            assert_eq!(r.dist[v.index()].to_bits(), view.dist(v).to_bits());
        }
        let p = view.path_to(NodeId(35)).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(35));
    }

    #[test]
    fn thread_workspace_reentrant_safe() {
        let g = grid_network(5, 5, 1.1, 11);
        let d = with_thread_workspace(|ws| {
            let outer = ws.distance(&g, NodeId(0), NodeId(24)).unwrap();
            // A nested call must not panic (falls back to scratch).
            let inner =
                with_thread_workspace(|ws2| ws2.distance(&g, NodeId(0), NodeId(24)).unwrap());
            assert_eq!(outer.to_bits(), inner.to_bits());
            outer
        });
        assert!(d.is_finite());
    }
}
