//! Reusable, allocation-free Dijkstra machinery.
//!
//! Every search in the seed implementation allocated three `O(|V|)`
//! vectors plus a binary heap *per query*. At provider scale ("heavy
//! traffic from millions of users") that allocation traffic dominates
//! short queries. [`SearchWorkspace`] fixes it:
//!
//! * **Generation stamping** — `dist`/`parent`/`settled`/heap-position
//!   entries are valid only when their stamp equals the current
//!   generation, so starting a new query is O(1): bump the generation,
//!   nothing is cleared.
//! * **4-ary indexed heap** — children of slot `i` are `4i+1..4i+4`;
//!   the shallower tree does fewer cache-missing compares than a binary
//!   heap on road-network workloads, and the node→slot index enables
//!   decrease-key, so the heap holds at most one entry per node
//!   (the seed's lazy-deletion heap grows with relaxations, not nodes).
//!
//! Tie-breaking is byte-compatible with the seed implementation (pop
//! order is lexicographic on `(distance, node id)`), so distances,
//! parents and settle order are bit-identical — property-tested in
//! `tests/perf_equivalence.rs` against [`reference`]
//! (`crate::algo::dijkstra::reference`).
//!
//! Repeated searches on the same workspace perform **zero heap
//! allocations** once the arrays have grown to the graph size.
//!
//! # Frontier selection
//!
//! Two interchangeable frontier implementations back every search:
//!
//! * **Calibrated bucket (radix) queue** — Dijkstra keys are monotone,
//!   so the frontier can be an array of buckets of width Δ calibrated
//!   from the graph's pre-scanned edge-weight range (Δ = the minimum
//!   weight when the range fits, else a wider Δ capped at 65,536
//!   buckets, with an overflow bucket that re-bases the window when
//!   reached). No per-pop sifting, no node→slot index maintenance —
//!   at million-node scale this removes the random `heap_pos` writes
//!   that dominate the 4-ary heap's cost.
//! * **4-ary indexed heap** — kept as the fallback for degenerate
//!   weight ranges (no edges, zero or non-finite minimum weight) where
//!   a width cannot be calibrated.
//!
//! The kind is selected per graph ([`Graph::frontier_kind`]) and both
//! produce **bit-identical** distances, parents and settle order: the
//! bucket being drained is sorted lexicographically on `(key, node)`,
//! stale entries are skipped lazily (an entry is live iff its key
//! bit-equals the node's current tentative distance and the node is
//! unsettled), and the monotone bucket index guarantees the drained
//! bucket always holds the global minimum. Property-tested in
//! `tests/perf_equivalence.rs`.

use crate::algo::dijkstra::SsspResult;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::path::Path;
use std::cell::RefCell;

const NO_NODE: u32 = u32::MAX;
const NOT_IN_HEAP: u32 = u32::MAX;

/// Fewest fine buckets a bucket-queue search uses.
const MIN_BUCKETS: usize = 64;
/// Most fine buckets a bucket-queue search uses (~1.5 MiB of bucket
/// headers per workspace; wider weight ranges widen Δ instead).
const MAX_BUCKETS: usize = 65_536;

/// Frontier implementation backing a search (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierKind {
    /// Comparison-based 4-ary indexed heap with decrease-key.
    Heap,
    /// Calibrated monotone bucket (radix) queue with lazy deletion.
    Bucket,
}

/// Per-graph frontier calibration, derived from the edge-weight range
/// pre-scanned at graph build time.
///
/// Correctness does not depend on Δ — any positive width preserves
/// bit-identity (the drained bucket is sorted) — so the calibration
/// only tunes how many keys share a bucket.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Calibration {
    pub(crate) kind: FrontierKind,
    /// Bucket width Δ (positive and finite in bucket mode).
    pub(crate) delta: f64,
    /// Number of fine buckets before the overflow bucket.
    pub(crate) buckets: usize,
}

impl Calibration {
    pub(crate) const HEAP: Calibration = Calibration {
        kind: FrontierKind::Heap,
        delta: 1.0,
        buckets: 0,
    };

    /// How many maximum-weight edge hops one window of fine buckets
    /// spans. Larger → fewer overflow re-bases (each re-base re-sows
    /// the whole frontier); smaller → finer buckets. Relaxations from
    /// the current minimum reach at most one `max_w` ahead, so ≥ 1
    /// keeps the overflow bucket off the hot path; 16 amortizes
    /// re-bases to a rounding error while still leaving buckets ~10³×
    /// finer than the frontier span.
    const WINDOW_FACTOR: f64 = 16.0;

    /// Calibration for a graph with the given pre-scanned weight
    /// range: the bucket queue when every weight is strictly positive
    /// and finite, the heap fallback otherwise (with zero-weight edges
    /// a bucket can hold unboundedly many mutually-improving entries,
    /// and with no edges there is nothing to calibrate from).
    // `!(min_w > 0.0)` must also catch NaN weights, which `min_w <= 0.0`
    // would let through to the bucket path.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn from_weights(
        min_w: f64,
        max_w: f64,
        num_edges: usize,
        num_nodes: usize,
    ) -> Calibration {
        if num_edges == 0 || !(min_w > 0.0) || !max_w.is_finite() {
            return Calibration::HEAP;
        }
        Calibration::bucket_for(max_w, num_nodes)
    }

    /// A bucket calibration whose fine window spans
    /// [`WINDOW_FACTOR`](Self::WINDOW_FACTOR) maximum edge weights.
    ///
    /// The bucket count scales with the graph (≈ 4 buckets per node,
    /// clamped to `[64, 65536]`) so the frontier — which on spatial
    /// graphs is far smaller than |V| — lands ~1 entry per occupied
    /// bucket and the per-bucket tie-break sort degenerates to a
    /// length check. Exactness never depends on Δ; only the
    /// sort/re-base balance does.
    pub(crate) fn bucket_for(max_w: f64, num_nodes: usize) -> Calibration {
        debug_assert!(max_w > 0.0 && max_w.is_finite());
        let buckets = num_nodes
            .saturating_mul(4)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let delta = Self::WINDOW_FACTOR * max_w / (buckets - 2) as f64;
        Calibration {
            kind: FrontierKind::Bucket,
            delta,
            buckets,
        }
    }

    /// Calibration forcing `kind` on `g` — the bench/test hook behind
    /// [`SearchWorkspace::sssp_with_frontier`]. Forcing the bucket
    /// queue onto a degenerate weight range substitutes a safe width
    /// (results stay bit-identical; only speed suffers).
    pub(crate) fn forced(g: &Graph, kind: FrontierKind) -> Calibration {
        match kind {
            FrontierKind::Heap => Calibration::HEAP,
            FrontierKind::Bucket => {
                let max_w = match g.weight_range() {
                    Some((_, max_w)) if max_w > 0.0 => max_w,
                    _ => 1.0,
                };
                Calibration::bucket_for(max_w, g.num_nodes())
            }
        }
    }
}

/// One 4-ary heap slot: the key is stored inline so sift comparisons
/// stay cache-local (indirect `dist[]` reads per comparison cost more
/// than the duplicated 8 bytes).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: f64,
    node: u32,
}

impl HeapEntry {
    /// Seed-compatible ordering: lexicographic on `(key, node id)`.
    #[inline]
    fn less(self, other: HeapEntry) -> bool {
        self.key < other.key || (self.key == other.key && self.node < other.node)
    }
}

/// Stamp mask of [`NodeState::meta`]; also the maximum generation.
const STAMP_MASK: u32 = 0x7FFF_FFFF;
/// Settled flag of [`NodeState::meta`].
const SETTLED_BIT: u32 = 0x8000_0000;

/// Per-node search state, kept in one 16-byte array-of-structs slot so
/// touching a node during relaxation costs a single cache-line access
/// (stamp, settled bit, distance and parent travel together; at
/// million-node scale the node array is the search's main random
/// memory traffic, so the packing is worth the bit twiddling).
#[derive(Debug, Clone, Copy)]
struct NodeState {
    dist: f64,
    /// Parent node id, `NO_NODE` for none.
    parent: u32,
    /// Settled flag (high bit) | generation stamp (low 31 bits); the
    /// entry is valid iff the stamp equals the workspace generation.
    meta: u32,
}

impl NodeState {
    const FRESH: NodeState = NodeState {
        dist: f64::INFINITY,
        parent: NO_NODE,
        meta: 0,
    };

    #[inline]
    fn stamp(self) -> u32 {
        self.meta & STAMP_MASK
    }

    #[inline]
    fn settled(self) -> bool {
        self.meta & SETTLED_BIT != 0
    }
}

const _: () = assert!(std::mem::size_of::<NodeState>() == 16);

/// Arena slot of the bucket queue's per-bucket chains: an entry plus
/// the arena index of the next entry in the same bucket (`NIL_LINK`
/// terminates). Entries live in one append-only arena, so pushes are
/// sequential writes; only the bucket-head update is a random access.
#[derive(Debug, Clone, Copy)]
struct ChainedEntry {
    key: f64,
    node: u32,
    next: u32,
}

const NIL_LINK: u32 = u32::MAX;

const _: () = assert!(std::mem::size_of::<ChainedEntry>() == 16);

/// Best-effort cache-line prefetch; no-op on non-x86_64 targets.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Inline entry slots per fine bucket; the calibration targets ~1
/// entry per occupied bucket, so four absorb nearly all skew before
/// spilling to a chain.
const BUCKET_INLINE: usize = 4;
/// High bit of a bucket count: the bucket also has a spill chain.
const SPILL_FLAG: u8 = 0x80;
const SPILL_FLAG_INV: u8 = 0x7F;

/// Reusable state for Dijkstra-family searches.
///
/// Create once (per thread) and reuse across queries; see the module
/// docs for the invariants that make reuse O(1).
#[derive(Debug, Clone)]
pub struct SearchWorkspace {
    generation: u32,
    /// Per-node stamped state (see [`NodeState`]).
    nodes: Vec<NodeState>,
    /// 4-ary min-heap with inline keys (ties: smaller node id).
    heap: Vec<HeapEntry>,
    /// Node id → heap slot (`NOT_IN_HEAP` when absent; valid only for
    /// nodes stamped with the current generation).
    heap_pos: Vec<u32>,
    /// Frontier implementation of the search in progress.
    kind: FrontierKind,
    /// Bucket width Δ of the search in progress.
    delta: f64,
    /// Key at the lower edge of fine bucket 0 (NaN until first push).
    base: f64,
    /// Number of fine buckets the current search uses.
    num_buckets: usize,
    /// Lowest fine bucket that may still hold entries.
    cur: usize,
    /// Per-bucket entry count (low bits) | spill flag (high bit).
    counts: Vec<u8>,
    /// Flat inline storage: `BUCKET_INLINE` entry slots per bucket.
    /// The window of active buckets is a small sliding region of this
    /// array, so pushes and refills stay cache-resident — the reason
    /// this layout beats per-bucket vectors or pure chains.
    slots: Vec<HeapEntry>,
    /// Per-bucket spill chain heads (arena indices), valid only when
    /// the bucket's spill flag is set.
    spill_heads: Vec<u32>,
    /// Occupancy bitmap over buckets, so `begin` clears only occupied
    /// buckets and refills skip empty words.
    occupied: Vec<u64>,
    /// Append-only arena backing the spill and overflow chains;
    /// truncated (capacity kept) at `begin`.
    arena: Vec<ChainedEntry>,
    /// Chain head of entries beyond the fine-bucket window;
    /// redistributed (with a re-based window) once the fine buckets
    /// drain.
    overflow_head: u32,
    /// Remaining entries of the bucket being drained, kept sorted
    /// descending on `(key, node)` so popping the back yields the
    /// lexicographic minimum.
    drain: Vec<HeapEntry>,
    /// Whether `drain` is currently sorted (an insert into the bucket
    /// being drained appends and defers the re-sort to the next pop).
    drain_sorted: bool,
}

impl Default for SearchWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchWorkspace {
    /// An empty workspace; arrays grow lazily to the graph size.
    pub fn new() -> Self {
        SearchWorkspace {
            generation: 0,
            nodes: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            kind: FrontierKind::Heap,
            delta: 1.0,
            base: f64::NAN,
            num_buckets: 0,
            cur: 0,
            counts: Vec::new(),
            slots: Vec::new(),
            spill_heads: Vec::new(),
            occupied: Vec::new(),
            arena: Vec::new(),
            overflow_head: NIL_LINK,
            drain: Vec::new(),
            drain_sorted: true,
        }
    }

    /// A workspace pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::new();
        ws.grow(n);
        ws
    }

    fn grow(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(n, NodeState::FRESH);
            self.heap_pos.resize(n, NOT_IN_HEAP);
        }
    }

    /// Starts a new query: O(1) in heap mode, O(occupied buckets) in
    /// bucket mode (plus the generation-wrap reset).
    fn begin(&mut self, n: usize, cal: Calibration) {
        self.grow(n);
        self.heap.clear();
        self.kind = cal.kind;
        if cal.kind == FrontierKind::Bucket {
            self.delta = cal.delta;
            self.base = f64::NAN;
            self.num_buckets = cal.buckets;
            self.cur = 0;
            if self.counts.len() < cal.buckets {
                self.counts.resize(cal.buckets, 0);
                self.slots
                    .resize(cal.buckets * BUCKET_INLINE, HeapEntry { key: 0.0, node: 0 });
                self.spill_heads.resize(cal.buckets, NIL_LINK);
                self.occupied.resize(self.counts.len().div_ceil(64), 0);
            }
            // Clear residue from an early-terminated previous search;
            // only occupied buckets' counts are touched (bitmap
            // word-skip), entries die with the arena truncation.
            for w in 0..self.occupied.len() {
                let mut word = self.occupied[w];
                while word != 0 {
                    let b = w * 64 + word.trailing_zeros() as usize;
                    self.counts[b] = 0;
                    word &= word - 1;
                }
                self.occupied[w] = 0;
            }
            self.arena.clear();
            self.overflow_head = NIL_LINK;
            self.drain.clear();
            self.drain_sorted = true;
        }
        if self.generation == STAMP_MASK {
            // Once every 2³¹ queries: hard reset so stamp 0 is unused.
            self.nodes.iter_mut().for_each(|s| s.meta = 0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Makes node `v`'s entries valid for the current query.
    #[inline]
    fn touch(&mut self, v: usize) {
        if self.nodes[v].stamp() != self.generation {
            self.nodes[v] = NodeState {
                meta: self.generation,
                ..NodeState::FRESH
            };
            // Only the heap reads `heap_pos`; in bucket mode skipping
            // this write avoids a second random-access array in the
            // per-arc hot path (a heap search touching the node later
            // re-stamps and resets it then).
            if self.kind == FrontierKind::Heap {
                self.heap_pos[v] = NOT_IN_HEAP;
            }
        }
    }

    // --- 4-ary indexed heap ------------------------------------------------

    /// Moves `entry` up from slot `i` (hole-based: positions written
    /// once per displaced element, the entry settled at the end).
    fn sift_up(&mut self, mut i: usize, entry: HeapEntry) {
        while i > 0 {
            let p = (i - 1) / 4;
            let parent = self.heap[p];
            if entry.less(parent) {
                self.heap[i] = parent;
                self.heap_pos[parent.node as usize] = i as u32;
                i = p;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.node as usize] = i as u32;
    }

    /// Moves `entry` down from slot `i`.
    fn sift_down(&mut self, mut i: usize, entry: HeapEntry) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut best = first;
            let mut best_entry = self.heap[first];
            for c in first + 1..last {
                let e = self.heap[c];
                if e.less(best_entry) {
                    best = c;
                    best_entry = e;
                }
            }
            if best_entry.less(entry) {
                self.heap[i] = best_entry;
                self.heap_pos[best_entry.node as usize] = i as u32;
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
        self.heap_pos[entry.node as usize] = i as u32;
    }

    /// Inserts `v` with `key`, or decreases its existing key.
    #[inline]
    fn heap_push_or_decrease(&mut self, v: u32, key: f64) {
        let entry = HeapEntry { key, node: v };
        let pos = self.heap_pos[v as usize];
        if pos == NOT_IN_HEAP {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1, entry);
        } else {
            // Key only ever decreases during relaxation.
            self.sift_up(pos as usize, entry);
        }
    }

    fn heap_pop(&mut self) -> Option<HeapEntry> {
        let top = *self.heap.first()?;
        self.heap_pos[top.node as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0, last);
        }
        Some(top)
    }

    // --- calibrated bucket queue -------------------------------------------
    //
    // Lazy deletion instead of decrease-key: every improvement pushes
    // a fresh entry, and an entry is live iff its key bit-equals the
    // node's current tentative distance and the node is unsettled
    // (tentative distances strictly decrease, so exactly the newest
    // entry matches). Keys are monotone (≥ the last popped key), so
    // the bucket index never falls below the drain cursor and the
    // lowest occupied bucket always contains the global minimum.

    /// Queues `(v, key)` into its fine bucket's chain, the bucket
    /// currently being drained, or the overflow chain.
    #[inline]
    fn bucket_push(&mut self, v: u32, key: f64) {
        if self.base.is_nan() {
            // First push of the search anchors the window.
            self.base = key;
        }
        debug_assert!(key >= self.base, "monotone keys never precede the window");
        let idx = ((key - self.base) / self.delta) as usize; // floor: key ≥ base
        if idx >= self.num_buckets {
            let slot = self.arena.len() as u32;
            self.arena.push(ChainedEntry {
                key,
                node: v,
                next: self.overflow_head,
            });
            self.overflow_head = slot;
        } else if idx <= self.cur && !self.drain.is_empty() {
            // Lands in the bucket being drained: append and re-sort
            // lazily on the next pop.
            self.drain.push(HeapEntry { key, node: v });
            self.drain_sorted = false;
        } else {
            // SAFETY: the branch above establishes idx < num_buckets;
            // `begin` sizes counts/slots/occupied from num_buckets.
            debug_assert!(idx < self.counts.len());
            let c = unsafe { *self.counts.get_unchecked(idx) };
            let inline = (c & SPILL_FLAG_INV) as usize;
            if inline < BUCKET_INLINE {
                unsafe {
                    *self.slots.get_unchecked_mut(idx * BUCKET_INLINE + inline) =
                        HeapEntry { key, node: v };
                    *self.counts.get_unchecked_mut(idx) = c + 1;
                }
            } else {
                // Inline slots full: chain the entry in the arena.
                let prev = if c & SPILL_FLAG != 0 {
                    self.spill_heads[idx]
                } else {
                    NIL_LINK
                };
                let slot = self.arena.len() as u32;
                self.arena.push(ChainedEntry {
                    key,
                    node: v,
                    next: prev,
                });
                self.spill_heads[idx] = slot;
                self.counts[idx] = c | SPILL_FLAG;
            }
            unsafe { *self.occupied.get_unchecked_mut(idx / 64) |= 1 << (idx % 64) };
        }
    }

    /// Whether a queued entry still reflects `node`'s current state.
    #[inline]
    fn entry_live(&self, e: HeapEntry) -> bool {
        let s = self.nodes[e.node as usize];
        !s.settled() && s.dist.to_bits() == e.key.to_bits()
    }

    /// Ensures `drain` holds the contents of the lowest non-empty fine
    /// bucket, re-basing the window from the overflow chain when the
    /// fine window is exhausted. Returns false when the queue is empty.
    fn bucket_refill(&mut self) -> bool {
        loop {
            if !self.drain.is_empty() {
                return true;
            }
            let mut found = None;
            for w in self.cur / 64..self.occupied.len() {
                let word = self.occupied[w];
                if word != 0 {
                    found = Some(w * 64 + word.trailing_zeros() as usize);
                    break;
                }
            }
            if let Some(b) = found {
                self.cur = b;
                self.occupied[b / 64] &= !(1u64 << (b % 64));
                let c = std::mem::take(&mut self.counts[b]);
                if c == 1 {
                    // Singleton bucket — the dominant case at ~1 entry
                    // per occupied bucket: the drain (empty here) stays
                    // trivially sorted, skipping the sort entirely.
                    self.drain.push(self.slots[b * BUCKET_INLINE]);
                    self.drain_sorted = true;
                    return true;
                }
                let inline = (c & SPILL_FLAG_INV) as usize;
                self.drain
                    .extend_from_slice(&self.slots[b * BUCKET_INLINE..][..inline]);
                if c & SPILL_FLAG != 0 {
                    let mut link = std::mem::replace(&mut self.spill_heads[b], NIL_LINK);
                    while link != NIL_LINK {
                        let e = self.arena[link as usize];
                        self.drain.push(HeapEntry {
                            key: e.key,
                            node: e.node,
                        });
                        link = e.next;
                    }
                }
                self.drain_sorted = false;
            } else if self.overflow_head == NIL_LINK {
                return false;
            } else {
                // Re-base the window at the overflow minimum and
                // redistribute; the minimum maps to bucket 0, so every
                // redistribution makes progress even if most entries
                // land back in overflow.
                let mut min_key = f64::INFINITY;
                let mut link = self.overflow_head;
                while link != NIL_LINK {
                    let e = self.arena[link as usize];
                    min_key = min_key.min(e.key);
                    link = e.next;
                }
                self.base = min_key;
                self.cur = 0;
                let mut link = std::mem::replace(&mut self.overflow_head, NIL_LINK);
                while link != NIL_LINK {
                    let e = self.arena[link as usize];
                    self.bucket_push(e.node, e.key);
                    link = e.next;
                }
            }
        }
    }

    /// Sorts the drain stack descending on `(key, node)` so popping
    /// the back yields the seed-compatible lexicographic minimum.
    /// Keys are never NaN, so `total_cmp` agrees with numeric order.
    fn sort_drain(&mut self) {
        if let [a, b] = self.drain[..] {
            // Two entries: one compare-swap instead of a sort call.
            if (a.key, a.node) < (b.key, b.node) {
                self.drain.swap(0, 1);
            }
            self.drain_sorted = true;
            return;
        }
        self.drain
            .sort_unstable_by(|a, b| b.key.total_cmp(&a.key).then(b.node.cmp(&a.node)));
        // The next pops are now known: warm their node-state lines so
        // the liveness checks and settle writes don't stall. This
        // lookahead is structural to the bucket queue; a comparison
        // heap only learns its next minimum after the previous pop.
        for e in self.drain.iter().rev().take(8) {
            prefetch(&self.nodes[e.node as usize]);
        }
        self.drain_sorted = true;
    }

    fn bucket_pop(&mut self) -> Option<HeapEntry> {
        loop {
            if !self.bucket_refill() {
                return None;
            }
            if !self.drain_sorted {
                self.sort_drain();
            }
            let e = self.drain.pop().expect("refilled");
            if self.entry_live(e) {
                return Some(e);
            }
        }
    }

    /// Minimum live key, discarding stale entries along the way.
    fn bucket_peek(&mut self) -> Option<f64> {
        loop {
            if !self.bucket_refill() {
                return None;
            }
            if !self.drain_sorted {
                self.sort_drain();
            }
            let e = *self.drain.last().expect("refilled");
            if self.entry_live(e) {
                return Some(e.key);
            }
            self.drain.pop();
        }
    }

    // --- frontier dispatch -------------------------------------------------

    /// Queues `v` at `key` (or improves it) in the active frontier.
    #[inline]
    fn frontier_push(&mut self, v: u32, key: f64) {
        match self.kind {
            FrontierKind::Heap => self.heap_push_or_decrease(v, key),
            FrontierKind::Bucket => self.bucket_push(v, key),
        }
    }

    /// Pops the lexicographically smallest live `(key, node)` entry.
    #[inline]
    fn frontier_pop(&mut self) -> Option<HeapEntry> {
        match self.kind {
            FrontierKind::Heap => self.heap_pop(),
            FrontierKind::Bucket => self.bucket_pop(),
        }
    }

    // --- searches ----------------------------------------------------------

    fn run(&mut self, g: &Graph, source: NodeId, stop_at: Option<u32>, radius: f64) {
        self.run_with(g, source, stop_at, radius, g.calibration());
    }

    fn run_with(
        &mut self,
        g: &Graph,
        source: NodeId,
        stop_at: Option<u32>,
        radius: f64,
        cal: Calibration,
    ) {
        self.begin(g.num_nodes(), cal);
        let s = source.index();
        self.touch(s);
        self.nodes[s].dist = 0.0;
        self.frontier_push(source.0, 0.0);
        while let Some(HeapEntry { key: d, node: v }) = self.frontier_pop() {
            let vi = v as usize;
            if d > radius {
                // Every remaining key is ≥ d: nothing else is in the ball.
                break;
            }
            self.nodes[vi].meta |= SETTLED_BIT;
            if stop_at == Some(v) {
                break;
            }
            // The sorted drain already names the next few settles:
            // warm their node states and CSR rows while this node
            // relaxes, overlapping the pop chain's memory stalls. The
            // immediate successor's offsets were prefetched one
            // iteration ago, so reading them now is cheap and lets its
            // adjacency rows start loading too (a one-deep software
            // pipeline only the bucket frontier's lookahead allows).
            let lookahead = self.drain.len().saturating_sub(3);
            for e in &self.drain[lookahead..] {
                prefetch(&self.nodes[e.node as usize]);
                prefetch(&g.offsets[e.node as usize]);
            }
            if let Some(e) = self.drain.last() {
                let nlo = g.offsets[e.node as usize] as usize;
                prefetch(&g.adj_targets[nlo]);
                prefetch(&g.adj_weights[nlo]);
            }
            let lo = g.offsets[vi] as usize;
            let hi = g.offsets[vi + 1] as usize;
            let targets = &g.adj_targets[lo..hi];
            let weights = &g.adj_weights[lo..hi];
            // Issue the neighbors' node-state loads up front; the relax
            // pass below then hits warm lines instead of serializing one
            // random access per arc.
            for &t in targets {
                prefetch(&self.nodes[t as usize]);
            }
            for (&t, &w) in targets.iter().zip(weights) {
                let u = t as usize;
                self.touch(u);
                let state = self.nodes[u];
                if state.settled() {
                    continue;
                }
                let nd = d + w;
                if nd < state.dist {
                    self.nodes[u].dist = nd;
                    self.nodes[u].parent = v;
                    self.frontier_push(u as u32, nd);
                }
            }
        }
    }

    /// Runs `sources.len()` independent SSSPs over `g` in **one**
    /// frontier sweep and returns one full distance row per source,
    /// each bit-identical to `self.sssp(g, sources[i]).dist_vec()`.
    ///
    /// The sweep searches the product space `source-index * n + node`
    /// (sources never interact — the global `(key, product-id)` pop
    /// order projects to each source's own `(key, node)` order), so a
    /// batch of in-cell verifications costs one calibrated pass over
    /// the cell instead of one Dijkstra per endpoint.
    ///
    /// Panics if `sources.len() * n` overflows the `u32` id space —
    /// callers with unbounded fan-in should chunk their sources.
    pub fn multi_sssp_rows(&mut self, g: &Graph, sources: &[NodeId]) -> Vec<Vec<f64>> {
        let n = g.num_nodes();
        if sources.is_empty() {
            return Vec::new();
        }
        let states = sources
            .len()
            .checked_mul(n)
            .expect("multi-source product space overflow");
        assert!(
            states < u32::MAX as usize,
            "multi-source product space exceeds u32 ids ({} sources x {} nodes)",
            sources.len(),
            n
        );
        self.begin(states, g.calibration());
        for (si, &s) in sources.iter().enumerate() {
            let pid = si * n + s.index();
            self.touch(pid);
            self.nodes[pid].dist = 0.0;
            self.frontier_push(pid as u32, 0.0);
        }
        while let Some(HeapEntry { key: d, node: pv }) = self.frontier_pop() {
            let pvi = pv as usize;
            self.nodes[pvi].meta |= SETTLED_BIT;
            let v = pvi % n;
            let block = pvi - v;
            let lo = g.offsets[v] as usize;
            let hi = g.offsets[v + 1] as usize;
            let targets = &g.adj_targets[lo..hi];
            let weights = &g.adj_weights[lo..hi];
            for &t in targets {
                prefetch(&self.nodes[block + t as usize]);
            }
            for (&t, &w) in targets.iter().zip(weights) {
                let pu = block + t as usize;
                self.touch(pu);
                let state = self.nodes[pu];
                if state.settled() {
                    continue;
                }
                let nd = d + w;
                if nd < state.dist {
                    self.nodes[pu].dist = nd;
                    self.nodes[pu].parent = pv;
                    self.frontier_push(pu as u32, nd);
                }
            }
        }
        (0..sources.len())
            .map(|si| {
                (0..n)
                    .map(|v| {
                        let s = self.nodes[si * n + v];
                        if s.stamp() == self.generation {
                            s.dist
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            })
            .collect()
    }

    // --- manually-driven searches ------------------------------------------
    //
    // Bidirectional Dijkstra and the arc-flag query need to drive the
    // pop/relax loop themselves (side alternation, arc pruning). These
    // crate-internal hooks expose the workspace's stamped state and
    // indexed heap without giving up its invariants: state mutation
    // only ever happens through `touch`/`relax`/`pop_settle`.

    /// Starts a manually-driven search on `g` seeded at `source` with
    /// distance 0, using the graph's calibrated frontier.
    pub(crate) fn begin_manual(&mut self, g: &Graph, source: NodeId) {
        self.begin(g.num_nodes(), g.calibration());
        let s = source.index();
        self.touch(s);
        self.nodes[s].dist = 0.0;
        self.frontier_push(source.0, 0.0);
    }

    /// Smallest live tentative key currently queued, if any (in bucket
    /// mode this discards stale lazy-deletion entries, hence `&mut`).
    pub(crate) fn peek_key(&mut self) -> Option<f64> {
        match self.kind {
            FrontierKind::Heap => self.heap.first().map(|e| e.key),
            FrontierKind::Bucket => self.bucket_peek(),
        }
    }

    /// Pops and settles the nearest queued node, returning
    /// `(node, dist)`. Stale bucket entries are skipped internally:
    /// every returned pop is final.
    pub(crate) fn pop_settle(&mut self) -> Option<(u32, f64)> {
        let e = self.frontier_pop()?;
        self.nodes[e.node as usize].meta |= SETTLED_BIT;
        Some((e.node, e.key))
    }

    /// Relaxes the edge `via → u` with candidate distance `nd`;
    /// returns whether it improved `u`.
    pub(crate) fn relax(&mut self, u: u32, via: u32, nd: f64) -> bool {
        let ui = u as usize;
        self.touch(ui);
        let state = self.nodes[ui];
        if state.settled() || nd >= state.dist {
            return false;
        }
        self.nodes[ui].dist = nd;
        self.nodes[ui].parent = via;
        self.frontier_push(u, nd);
        true
    }

    /// Tentative (or settled) distance of `v` in the current search;
    /// ∞ when untouched.
    pub(crate) fn current_dist(&self, v: usize) -> f64 {
        if self.nodes[v].stamp() == self.generation {
            self.nodes[v].dist
        } else {
            f64::INFINITY
        }
    }

    /// Parent of `v` in the current search tree, if assigned.
    pub(crate) fn current_parent(&self, v: usize) -> Option<u32> {
        if self.nodes[v].stamp() == self.generation && self.nodes[v].parent != NO_NODE {
            Some(self.nodes[v].parent)
        } else {
            None
        }
    }

    /// Full single-source Dijkstra; the view borrows this workspace.
    pub fn sssp<'a>(&'a mut self, g: &Graph, source: NodeId) -> SearchView<'a> {
        self.run(g, source, None, f64::INFINITY);
        SearchView {
            ws: self,
            source,
            bounded: false,
            n: g.num_nodes(),
        }
    }

    /// Full SSSP forcing a specific frontier implementation instead of
    /// the graph's calibrated choice — the bench/test hook behind the
    /// bucket-vs-heap equivalence and speedup measurements. Results
    /// are bit-identical across kinds.
    pub fn sssp_with_frontier<'a>(
        &'a mut self,
        g: &Graph,
        source: NodeId,
        kind: FrontierKind,
    ) -> SearchView<'a> {
        self.run_with(g, source, None, f64::INFINITY, Calibration::forced(g, kind));
        SearchView {
            ws: self,
            source,
            bounded: false,
            n: g.num_nodes(),
        }
    }

    /// Bounded ball forcing a specific frontier implementation; see
    /// [`Self::sssp_with_frontier`].
    pub fn ball_with_frontier<'a>(
        &'a mut self,
        g: &Graph,
        source: NodeId,
        radius: f64,
        kind: FrontierKind,
    ) -> SearchView<'a> {
        self.run_with(g, source, None, radius, Calibration::forced(g, kind));
        SearchView {
            ws: self,
            source,
            bounded: true,
            n: g.num_nodes(),
        }
    }

    /// Bounded-ball Dijkstra: the view reports finite distances exactly
    /// for nodes with `dist(source, v) ≤ radius` (Lemma 1's subgraph).
    pub fn ball<'a>(&'a mut self, g: &Graph, source: NodeId, radius: f64) -> SearchView<'a> {
        self.run(g, source, None, radius);
        SearchView {
            ws: self,
            source,
            bounded: true,
            n: g.num_nodes(),
        }
    }

    /// Point-to-point Dijkstra with early termination at `target`.
    pub fn path(&mut self, g: &Graph, source: NodeId, target: NodeId) -> Result<Path, GraphError> {
        g.check_node(source)?;
        g.check_node(target)?;
        if source == target {
            return Ok(Path::trivial(source));
        }
        self.run(g, source, Some(target.0), f64::INFINITY);
        let view = SearchView {
            ws: self,
            source,
            bounded: false,
            n: g.num_nodes(),
        };
        view.path_to(target)
            .ok_or(GraphError::Unreachable { source, target })
    }

    /// Point-to-point distance only (no path materialization, no
    /// allocation at all).
    pub fn distance(
        &mut self,
        g: &Graph,
        source: NodeId,
        target: NodeId,
    ) -> Result<f64, GraphError> {
        g.check_node(source)?;
        g.check_node(target)?;
        if source == target {
            return Ok(0.0);
        }
        self.run(g, source, Some(target.0), f64::INFINITY);
        let t = target.index();
        if self.nodes[t].stamp() == self.generation && self.nodes[t].settled() {
            Ok(self.nodes[t].dist)
        } else {
            Err(GraphError::Unreachable { source, target })
        }
    }
}

/// Read-only results of the latest search, borrowing the workspace.
pub struct SearchView<'a> {
    ws: &'a SearchWorkspace,
    source: NodeId,
    bounded: bool,
    n: usize,
}

impl SearchView<'_> {
    /// The query's source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Number of nodes in the searched graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn stamped(&self, v: usize) -> bool {
        self.ws.nodes[v].stamp() == self.ws.generation
    }

    /// Whether `v` was settled (popped with a final distance).
    #[inline]
    pub fn settled(&self, v: NodeId) -> bool {
        let i = v.index();
        i < self.n && self.stamped(i) && self.ws.nodes[i].settled()
    }

    /// Distance to `v`; `INFINITY` when unreached (or outside the ball
    /// for bounded searches — matching the seed's ball semantics).
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        let i = v.index();
        if i >= self.n || !self.stamped(i) || (self.bounded && !self.ws.nodes[i].settled()) {
            f64::INFINITY
        } else {
            self.ws.nodes[i].dist
        }
    }

    /// Parent of `v` in the shortest-path tree.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i >= self.n || !self.stamped(i) || (self.bounded && !self.ws.nodes[i].settled()) {
            return None;
        }
        match self.ws.nodes[i].parent {
            NO_NODE => None,
            p => Some(NodeId(p)),
        }
    }

    /// Reconstructs the shortest path to `target`, if reached.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        if self.dist(target).is_infinite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent(cur) {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(Path {
            nodes,
            distance: self.dist(target),
        })
    }

    /// Materializes the per-node distance vector (allocates).
    pub fn dist_vec(&self) -> Vec<f64> {
        (0..self.n as u32).map(|v| self.dist(NodeId(v))).collect()
    }

    /// Materializes a [`SsspResult`] for API compatibility (allocates).
    pub fn to_sssp_result(&self) -> SsspResult {
        SsspResult {
            source: self.source,
            dist: self.dist_vec(),
            parent: (0..self.n as u32).map(|v| self.parent(NodeId(v))).collect(),
        }
    }

    /// Iterates the settled nodes in ascending id order.
    pub fn settled_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32)
            .map(NodeId)
            .filter(move |&v| self.settled(v))
    }
}

thread_local! {
    static THREAD_WS: RefCell<SearchWorkspace> = RefCell::new(SearchWorkspace::new());
    static THREAD_BI_WS: RefCell<(SearchWorkspace, SearchWorkspace)> =
        RefCell::new((SearchWorkspace::new(), SearchWorkspace::new()));
}

/// Runs `f` with this thread's shared [`SearchWorkspace`].
///
/// The classic `dijkstra_*` free functions route through here, so
/// repeated calls on one thread reuse a single workspace. Re-entrant
/// use (an `f` that itself searches) falls back to a fresh scratch
/// workspace instead of panicking.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut SearchWorkspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut SearchWorkspace::new()),
    })
}

/// Runs `f` with this thread's shared **pair** of workspaces — the
/// state a two-frontier search needs (bidirectional Dijkstra expands
/// from both endpoints at once). Distinct from
/// [`with_thread_workspace`]'s singleton, so a bidirectional search
/// may itself be nested inside code holding the single workspace.
/// Re-entrant use falls back to fresh scratch workspaces.
pub fn with_thread_bi_workspace<R>(
    f: impl FnOnce(&mut SearchWorkspace, &mut SearchWorkspace) -> R,
) -> R {
    THREAD_BI_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pair) => {
            let (a, b) = &mut *pair;
            f(a, b)
        }
        Err(_) => f(&mut SearchWorkspace::new(), &mut SearchWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::reference;
    use crate::builder::GraphBuilder;
    use crate::gen::{grid_network, random_geometric};

    fn assert_matches_reference(g: &Graph, ws: &mut SearchWorkspace, source: NodeId) {
        let want = reference::sssp(g, source);
        let got = ws.sssp(g, source);
        for v in g.nodes() {
            assert_eq!(
                got.dist(v).to_bits(),
                want.dist[v.index()].to_bits(),
                "dist({source}, {v})"
            );
            assert_eq!(got.parent(v), want.parent[v.index()], "parent({v})");
        }
    }

    #[test]
    fn sssp_bit_identical_to_reference_across_reuses() {
        let g = grid_network(12, 12, 1.2, 77);
        let mut ws = SearchWorkspace::new();
        for s in [0u32, 1, 64, 143, 7, 0] {
            assert_matches_reference(&g, &mut ws, NodeId(s));
        }
    }

    #[test]
    fn reuse_across_different_graphs() {
        let g1 = grid_network(10, 10, 1.2, 5);
        let g2 = random_geometric(60, 3, 6);
        let g3 = grid_network(4, 4, 1.1, 7);
        let mut ws = SearchWorkspace::new();
        for _ in 0..3 {
            assert_matches_reference(&g1, &mut ws, NodeId(0));
            assert_matches_reference(&g2, &mut ws, NodeId(59));
            assert_matches_reference(&g3, &mut ws, NodeId(15));
        }
    }

    #[test]
    fn ball_matches_reference_semantics() {
        let g = grid_network(9, 9, 1.2, 8);
        let mut ws = SearchWorkspace::new();
        for radius in [0.0, 500.0, 2000.0, 1e9] {
            let want = reference::ball(&g, NodeId(0), radius);
            let got = ws.ball(&g, NodeId(0), radius);
            for v in g.nodes() {
                assert_eq!(
                    got.dist(v).to_bits(),
                    want.dist[v.index()].to_bits(),
                    "radius {radius}, node {v}"
                );
            }
        }
    }

    #[test]
    fn path_matches_reference() {
        let g = grid_network(10, 10, 1.2, 9);
        let mut ws = SearchWorkspace::new();
        for (s, t) in [(0u32, 99u32), (5, 50), (99, 0), (42, 42)] {
            let want = reference::path(&g, NodeId(s), NodeId(t)).unwrap();
            let got = ws.path(&g, NodeId(s), NodeId(t)).unwrap();
            assert_eq!(got.nodes, want.nodes, "({s},{t})");
            assert_eq!(got.distance.to_bits(), want.distance.to_bits());
            let d = ws.distance(&g, NodeId(s), NodeId(t)).unwrap();
            assert_eq!(d.to_bits(), want.distance.to_bits());
        }
    }

    #[test]
    fn unreachable_and_bad_nodes() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 1.0);
        let g = b.build();
        let mut ws = SearchWorkspace::new();
        assert!(matches!(
            ws.path(&g, u, v),
            Err(GraphError::Unreachable { .. })
        ));
        assert!(ws.path(&g, u, NodeId(99)).is_err());
        assert!(ws.distance(&g, u, v).is_err());
    }

    #[test]
    fn view_helpers_consistent() {
        let g = grid_network(6, 6, 1.2, 10);
        let mut ws = SearchWorkspace::new();
        let view = ws.sssp(&g, NodeId(0));
        assert_eq!(view.source(), NodeId(0));
        assert_eq!(view.num_nodes(), 36);
        assert_eq!(view.settled_nodes().count(), 36, "grid is connected");
        let r = view.to_sssp_result();
        for v in g.nodes() {
            assert_eq!(r.dist[v.index()].to_bits(), view.dist(v).to_bits());
        }
        let p = view.path_to(NodeId(35)).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(35));
    }

    #[test]
    fn frontier_kind_selection() {
        // Positive weight range → bucket queue.
        let g = grid_network(6, 6, 1.2, 3);
        assert_eq!(g.frontier_kind(), FrontierKind::Bucket);
        // Zero-weight edge → heap fallback.
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 0.0);
        let w = b.add_node(2.0, 0.0);
        b.add_edge(u, v, 0.0).unwrap();
        b.add_edge(v, w, 1.0).unwrap();
        let g0 = b.build();
        assert_eq!(g0.frontier_kind(), FrontierKind::Heap);
        // No edges at all → heap fallback.
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        assert_eq!(b.build().frontier_kind(), FrontierKind::Heap);
    }

    #[test]
    fn forced_frontiers_bit_identical() {
        let g = grid_network(11, 13, 1.2, 21);
        let mut a = SearchWorkspace::new();
        let mut b = SearchWorkspace::new();
        for s in [0u32, 70, 142] {
            let want = reference::sssp(&g, NodeId(s));
            for (ws, kind) in [(&mut a, FrontierKind::Heap), (&mut b, FrontierKind::Bucket)] {
                let got = ws.sssp_with_frontier(&g, NodeId(s), kind);
                for v in g.nodes() {
                    assert_eq!(got.dist(v).to_bits(), want.dist[v.index()].to_bits());
                    assert_eq!(got.parent(v), want.parent[v.index()]);
                }
            }
        }
        // Bounded balls agree across kinds too.
        for radius in [0.0, 900.0, 4000.0] {
            let want = reference::ball(&g, NodeId(5), radius);
            let got = b.ball_with_frontier(&g, NodeId(5), radius, FrontierKind::Bucket);
            for v in g.nodes() {
                assert_eq!(got.dist(v).to_bits(), want.dist[v.index()].to_bits());
            }
        }
    }

    #[test]
    fn forced_bucket_on_degenerate_weights_stays_exact() {
        // Zero-weight edges auto-select the heap, but forcing the
        // bucket queue must still be exact (drain-path correctness).
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        for (u, v, w) in [
            (0u32, 1u32, 0.0),
            (1, 2, 2.0),
            (0, 2, 2.0),
            (2, 3, 0.0),
            (3, 4, 1.0),
            (0, 5, 5.0),
            (4, 5, 0.0),
        ] {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        let g = b.build();
        assert_eq!(g.frontier_kind(), FrontierKind::Heap);
        let want = reference::sssp(&g, NodeId(0));
        let mut ws = SearchWorkspace::new();
        let got = ws.sssp_with_frontier(&g, NodeId(0), FrontierKind::Bucket);
        for v in g.nodes() {
            assert_eq!(got.dist(v).to_bits(), want.dist[v.index()].to_bits());
            assert_eq!(got.parent(v), want.parent[v.index()]);
        }
    }

    #[test]
    fn bucket_overflow_rebase_exact() {
        // A huge weight ratio forces MAX_BUCKETS wide-Δ calibration;
        // a tiny forced window would exercise overflow, so instead
        // build a graph whose keys span many windows of 64 buckets by
        // forcing the bucket queue with a small weight floor.
        let mut b = GraphBuilder::new();
        for i in 0..40 {
            b.add_node(i as f64, 0.0);
        }
        // Chain with weights growing geometrically: span 1e-3..1e5.
        let mut w = 1e-3;
        for i in 0..39u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), w).unwrap();
            w = (w * 1.7).min(1e5);
        }
        let g = b.build();
        assert_eq!(g.frontier_kind(), FrontierKind::Bucket);
        let want = reference::sssp(&g, NodeId(0));
        let mut ws = SearchWorkspace::new();
        let got = ws.sssp_with_frontier(&g, NodeId(0), FrontierKind::Bucket);
        for v in g.nodes() {
            assert_eq!(got.dist(v).to_bits(), want.dist[v.index()].to_bits());
        }
    }

    #[test]
    fn multi_source_rows_match_solo_runs() {
        let g = grid_network(9, 9, 1.2, 33);
        let sources = [NodeId(0), NodeId(40), NodeId(80), NodeId(40)];
        let mut ws = SearchWorkspace::new();
        let rows = ws.multi_sssp_rows(&g, &sources);
        assert_eq!(rows.len(), sources.len());
        let mut solo = SearchWorkspace::new();
        for (si, &s) in sources.iter().enumerate() {
            let want = solo.sssp(&g, s).dist_vec();
            assert_eq!(rows[si].len(), want.len());
            for v in 0..want.len() {
                assert_eq!(
                    rows[si][v].to_bits(),
                    want[v].to_bits(),
                    "source {s}, node {v}"
                );
            }
        }
        assert!(ws.multi_sssp_rows(&g, &[]).is_empty());
    }

    #[test]
    fn thread_workspace_reentrant_safe() {
        let g = grid_network(5, 5, 1.1, 11);
        let d = with_thread_workspace(|ws| {
            let outer = ws.distance(&g, NodeId(0), NodeId(24)).unwrap();
            // A nested call must not panic (falls back to scratch).
            let inner =
                with_thread_workspace(|ws2| ws2.distance(&g, NodeId(0), NodeId(24)).unwrap());
            assert_eq!(outer.to_bits(), inner.to_bits());
            outer
        });
        assert!(d.is_finite());
    }
}
