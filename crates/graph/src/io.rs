//! Plain-text graph serialization.
//!
//! A minimal, dependency-free format for persisting networks (e.g. to
//! reuse one generated dataset across harness runs, or to import real
//! edge lists):
//!
//! ```text
//! spnet-graph 1
//! <num_nodes> <num_edges>
//! <x> <y>            # one line per node, id = line order
//! ...
//! <u> <v> <w>        # one line per undirected edge
//! ...
//! ```
//!
//! Floats are written with enough precision (`{:e}` round-trip format)
//! that re-loading reproduces bit-identical weights — important because
//! tuple digests hash the exact bit patterns.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::NodeId;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors raised by graph (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the input text.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes `g` into any writer in the text format.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> Result<(), IoError> {
    writeln!(w, "spnet-graph 1")?;
    writeln!(w, "{} {}", g.num_nodes(), g.num_edges())?;
    for v in g.nodes() {
        let (x, y) = g.coords(v);
        writeln!(w, "{x:e} {y:e}")?;
    }
    for (u, v, weight) in g.edges() {
        writeln!(w, "{} {} {weight:e}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to `path` in the text format.
pub fn save_graph(g: &Graph, path: &Path) -> Result<(), IoError> {
    write_graph(g, BufWriter::new(std::fs::File::create(path)?))
}

/// Serializes `g` to the text format as bytes (bit-exact round trip
/// with [`graph_from_bytes`] — snapshot persistence relies on this).
pub fn graph_to_bytes(g: &Graph) -> Vec<u8> {
    let mut out = Vec::new();
    write_graph(g, &mut out).expect("in-memory write cannot fail");
    out
}

/// Loads a graph written by [`save_graph`].
pub fn load_graph(path: &Path) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_graph(std::io::BufReader::new(file))
}

/// Parses the text format from bytes — inverse of [`graph_to_bytes`].
pub fn graph_from_bytes(bytes: &[u8]) -> Result<Graph, IoError> {
    read_graph(bytes)
}

/// Parses the text format from any buffered reader.
pub fn read_graph<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut lines = reader.lines().enumerate();

    let mut next_line = |what: &str| -> Result<(usize, String), IoError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(IoError::Parse {
                line: i + 1,
                message: e.to_string(),
            }),
            None => Err(IoError::Parse {
                line: 0,
                message: format!("missing {what}"),
            }),
        }
    };

    let (ln, header) = next_line("header")?;
    if header.trim() != "spnet-graph 1" {
        return Err(IoError::Parse {
            line: ln,
            message: format!("bad header {header:?}"),
        });
    }
    let (ln, counts) = next_line("counts")?;
    let mut it = counts.split_whitespace();
    let parse_usize = |s: Option<&str>, ln: usize| -> Result<usize, IoError> {
        s.and_then(|v| v.parse().ok()).ok_or(IoError::Parse {
            line: ln,
            message: "expected integer".into(),
        })
    };
    let n = parse_usize(it.next(), ln)?;
    let m = parse_usize(it.next(), ln)?;

    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let (ln, l) = next_line("node line")?;
        let mut it = l.split_whitespace();
        let parse_f = |s: Option<&str>| -> Result<f64, IoError> {
            s.and_then(|v| v.parse().ok()).ok_or(IoError::Parse {
                line: ln,
                message: "expected float".into(),
            })
        };
        let x = parse_f(it.next())?;
        let y = parse_f(it.next())?;
        b.add_node(x, y);
    }
    for _ in 0..m {
        let (ln, l) = next_line("edge line")?;
        let mut it = l.split_whitespace();
        let u = it
            .next()
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or(IoError::Parse {
                line: ln,
                message: "expected node id".into(),
            })?;
        let v = it
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or(IoError::Parse {
                line: ln,
                message: "expected node id".into(),
            })?;
        let w = it
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or(IoError::Parse {
                line: ln,
                message: "expected weight".into(),
            })?;
        b.add_edge(NodeId(u), NodeId(v), w)
            .map_err(|e| IoError::Parse {
                line: ln,
                message: e.to_string(),
            })?;
    }
    b.try_build().map_err(|e| IoError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("spnet_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_bit_exact() {
        let g = grid_network(9, 9, 1.15, 1400);
        let path = tmp("round_trip");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        for v in g.nodes() {
            let (x1, y1) = g.coords(v);
            let (x2, y2) = back.coords(v);
            assert_eq!(x1.to_bits(), x2.to_bits());
            assert_eq!(y1.to_bits(), y2.to_bits());
        }
        for ((u1, v1, w1), (u2, v2, w2)) in g.edges().zip(back.edges()) {
            assert_eq!((u1, v1), (u2, v2));
            assert_eq!(
                w1.to_bits(),
                w2.to_bits(),
                "weights must round-trip bit-exactly"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_round_trip_matches_file_round_trip() {
        let g = grid_network(7, 6, 1.2, 99);
        let bytes = graph_to_bytes(&g);
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        // Re-serializing the loaded graph must be byte-identical.
        assert_eq!(graph_to_bytes(&back), bytes);
        assert!(graph_from_bytes(b"garbage").is_err());
    }

    #[test]
    fn rejects_bad_header() {
        let path = tmp("bad_header");
        std::fs::write(&path, "not-a-graph\n1 0\n0 0\n").unwrap();
        assert!(matches!(
            load_graph(&path),
            Err(IoError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("truncated");
        std::fs::write(&path, "spnet-graph 1\n3 2\n0 0\n1 1\n").unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_edge() {
        let path = tmp("bad_edge");
        std::fs::write(&path, "spnet-graph 1\n2 1\n0 0\n1 1\n0 7 1.0\n").unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_graph(Path::new("/nonexistent/spnet.graph")),
            Err(IoError::Io(_))
        ));
    }
}
