//! Error type for graph construction and queries.

use crate::ids::NodeId;

/// Errors raised by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a node id outside `[0, |V|)`.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// Edge weights must be finite and non-negative (Lemma 1 relies on
    /// non-negativity).
    InvalidWeight { u: NodeId, v: NodeId, weight: f64 },
    /// Self loops carry no shortest-path information and are rejected.
    SelfLoop(NodeId),
    /// The same undirected edge was added twice.
    DuplicateEdge { u: NodeId, v: NodeId },
    /// No path exists between the queried nodes.
    Unreachable { source: NodeId, target: NodeId },
    /// The graph has no nodes.
    EmptyGraph,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (|V| = {num_nodes})")
            }
            GraphError::InvalidWeight { u, v, weight } => {
                write!(f, "edge ({u},{v}) has invalid weight {weight}")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at {v}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u},{v})"),
            GraphError::Unreachable { source, target } => {
                write!(f, "{target} unreachable from {source}")
            }
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}
