//! A totally-ordered wrapper over finite `f64` for use as heap keys.

use std::cmp::Ordering;

/// A finite `f64` with total ordering.
///
/// All distances in this workspace are finite and non-negative, so
/// a NaN here is a logic error; construction asserts against it in
/// debug builds.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// Wraps a value, debug-asserting it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrderedF64 cannot hold NaN");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("NaN in OrderedF64")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_works() {
        assert!(OrderedF64::new(1.0) < OrderedF64::new(2.0));
        assert!(OrderedF64::new(-1.0) < OrderedF64::new(0.0));
        assert_eq!(OrderedF64::new(3.5), OrderedF64::new(3.5));
    }

    #[test]
    fn usable_in_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrderedF64::new(v)));
        }
        assert_eq!(h.pop().unwrap().0.get(), 1.0);
        assert_eq!(h.pop().unwrap().0.get(), 2.0);
        assert_eq!(h.pop().unwrap().0.get(), 3.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = OrderedF64::new(f64::NAN);
    }
}
