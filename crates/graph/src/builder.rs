//! Incremental graph construction.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

/// Builder for [`Graph`].
///
/// Nodes are added first (ids are assigned sequentially), then
/// undirected edges. `build` produces the CSR representation with
/// adjacency lists sorted by neighbor id.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    xs: Vec<f64>,
    ys: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            xs: Vec::with_capacity(nodes),
            ys: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Coordinates of an already-added node (used by generators to
    /// derive Euclidean edge lengths before `build`).
    pub fn coords(&self, v: NodeId) -> (f64, f64) {
        (self.xs[v.index()], self.ys[v.index()])
    }

    /// Adds a node at `(x, y)` and returns its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> NodeId {
        let id = NodeId(self.xs.len() as u32);
        self.xs.push(x);
        self.ys.push(y);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.xs.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge with non-negative finite weight.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), GraphError> {
        let n = self.xs.len();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidWeight { u, v, weight: w });
        }
        self.edges.push((u.0, v.0, w));
        Ok(())
    }

    /// True if the undirected edge `(u, v)` was already added.
    ///
    /// Linear scan — intended for generators that add few edges per
    /// node; duplicate detection during `build` is the authoritative
    /// check.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a == u.0 && b == v.0) || (a == v.0 && b == u.0))
    }

    /// Finalizes the CSR graph.
    ///
    /// Fails on duplicate undirected edges.
    pub fn build(self) -> Graph {
        self.try_build().expect("invalid graph")
    }

    /// Finalizes the CSR graph, returning errors instead of panicking.
    pub fn try_build(self) -> Result<Graph, GraphError> {
        let n = self.xs.len();
        let mut degree = vec![0u32; n];
        // Weight-range pre-scan: searches calibrate their bucket-queue
        // frontier from it without re-touching the edge set.
        let mut min_weight = f64::INFINITY;
        let mut max_weight = 0.0f64;
        for &(u, v, w) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
            min_weight = min_weight.min(w);
            max_weight = max_weight.max(w);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let total = acc as usize;
        let mut targets = vec![0u32; total];
        let mut weights = vec![0f64; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v, w) in &self.edges {
            for (a, b) in [(u, v), (v, u)] {
                let slot = cursor[a as usize] as usize;
                targets[slot] = b;
                weights[slot] = w;
                cursor[a as usize] += 1;
            }
        }
        // Sort each adjacency list by neighbor id (canonical encoding).
        for i in 0..n {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let mut pairs: Vec<(u32, f64)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_by_key(|&(t, _)| t);
            for (k, (t, w)) in pairs.into_iter().enumerate() {
                if k > 0 && targets[lo + k - 1] == t {
                    return Err(GraphError::DuplicateEdge {
                        u: NodeId(i as u32),
                        v: NodeId(t),
                    });
                }
                targets[lo + k] = t;
                weights[lo + k] = w;
            }
        }
        Ok(Graph {
            xs: self.xs,
            ys: self.ys,
            offsets,
            adj_targets: targets,
            adj_weights: weights,
            num_edges: self.edges.len(),
            min_weight,
            max_weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_validation() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 0.0);
        assert!(b.add_edge(u, v, 1.0).is_ok());
        assert!(matches!(
            b.add_edge(u, u, 1.0),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_edge(u, NodeId(9), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(u, v, -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(u, v, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(u, v, f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(0.0, 0.0);
        assert!(b.add_edge(u, v, 0.0).is_ok());
        let g = b.build();
        assert_eq!(g.edge_weight(u, v), Some(0.0));
    }

    #[test]
    fn duplicate_edge_rejected_at_build() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 0.0);
        b.add_edge(u, v, 1.0).unwrap();
        b.add_edge(v, u, 2.0).unwrap(); // same undirected edge
        assert!(matches!(
            b.try_build(),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_nodes_have_no_neighbors() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        b.add_node(5.0, 5.0);
        let v = b.add_node(1.0, 1.0);
        b.add_edge(u, v, 1.4).unwrap();
        let g = b.build();
        assert_eq!(g.degree(NodeId(1)), 0);
        assert_eq!(g.degree(u), 1);
    }

    #[test]
    fn has_edge_scan() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0.0, 0.0);
        let v = b.add_node(1.0, 0.0);
        let w = b.add_node(2.0, 0.0);
        b.add_edge(u, v, 1.0).unwrap();
        assert!(b.has_edge(u, v));
        assert!(b.has_edge(v, u));
        assert!(!b.has_edge(u, w));
    }
}
