//! The weighted spatial graph `G = (V, E, W)` in CSR form.

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::search::{Calibration, FrontierKind};

/// An undirected, weighted, spatial graph in compressed sparse row
/// (CSR) form.
///
/// * Nodes carry `(x, y)` coordinates (the paper normalizes every
///   network to `[0..10,000]²`; non-spatial graphs may use zeros).
/// * Each undirected edge `(u, v, w)` is stored in both adjacency
///   lists; adjacency lists are sorted by neighbor id, which makes the
///   extended-tuple encoding canonical.
///
/// Construct via [`crate::builder::GraphBuilder`].
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) xs: Vec<f64>,
    pub(crate) ys: Vec<f64>,
    /// CSR offsets, length |V| + 1.
    pub(crate) offsets: Vec<u32>,
    /// Flattened adjacency targets, length 2|E|.
    pub(crate) adj_targets: Vec<u32>,
    /// Flattened adjacency weights, parallel to `adj_targets`.
    pub(crate) adj_weights: Vec<f64>,
    /// Number of undirected edges.
    pub(crate) num_edges: usize,
    /// Smallest edge weight (∞ for an edgeless graph); pre-scanned at
    /// build time so searches can calibrate their frontier in O(1).
    pub(crate) min_weight: f64,
    /// Largest edge weight (0 for an edgeless graph).
    pub(crate) max_weight: f64,
}

impl Graph {
    /// Number of nodes |V|.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.xs.len()
    }

    /// Number of undirected edges |E|.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Coordinates of node `v`.
    #[inline]
    pub fn coords(&self, v: NodeId) -> (f64, f64) {
        (self.xs[v.index()], self.ys[v.index()])
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Neighbors of `v` with edge weights, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.adj_targets[lo..hi]
            .iter()
            .zip(&self.adj_weights[lo..hi])
            .map(|(&t, &w)| (NodeId(t), w))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        let slice = &self.adj_targets[lo..hi];
        slice
            .binary_search(&v.0)
            .ok()
            .map(|i| self.adj_weights[lo + i])
    }

    /// True iff edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Patches the weight of edge `(u, v)` in place — both CSR mirror
    /// arcs — and returns the previous weight. `None` (and no change)
    /// if the edge does not exist. O(log deg) per endpoint; the
    /// adjacency structure itself is untouched, so node orderings and
    /// partitions derived from topology remain valid.
    ///
    /// The cached weight bounds are only widened, never re-tightened:
    /// they feed search calibration heuristics where a conservative
    /// range is valid (both frontier kinds produce identical results).
    pub fn set_edge_weight(&mut self, u: NodeId, v: NodeId, w: f64) -> Option<f64> {
        let arc = |g: &Graph, a: NodeId, b: NodeId| -> Option<usize> {
            let lo = g.offsets[a.index()] as usize;
            let hi = g.offsets[a.index() + 1] as usize;
            g.adj_targets[lo..hi]
                .binary_search(&b.0)
                .ok()
                .map(|i| lo + i)
        };
        let uv = arc(self, u, v)?;
        let vu = arc(self, v, u)?;
        let old = self.adj_weights[uv];
        self.adj_weights[uv] = w;
        self.adj_weights[vu] = w;
        self.min_weight = self.min_weight.min(w);
        self.max_weight = self.max_weight.max(w);
        Some(old)
    }

    /// Iterator over undirected edges `(u, v, w)` with `u < v`.
    ///
    /// A single sweep over the CSR arc arrays: the owning node is
    /// tracked by advancing an offset cursor instead of re-scanning
    /// every node's adjacency list, and each arc is visited exactly
    /// once (its `u > v` mirror is skipped in place).
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            g: self,
            arc: 0,
            node: 0,
        }
    }

    /// Checks that a node id is within range.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes(),
            })
        }
    }

    /// Bounding box `(min_x, min_y, max_x, max_y)` of node coordinates.
    ///
    /// Returns `None` for an empty graph.
    pub fn bounding_box(&self) -> Option<(f64, f64, f64, f64)> {
        if self.num_nodes() == 0 {
            return None;
        }
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for i in 0..self.num_nodes() {
            bb.0 = bb.0.min(self.xs[i]);
            bb.1 = bb.1.min(self.ys[i]);
            bb.2 = bb.2.max(self.xs[i]);
            bb.3 = bb.3.max(self.ys[i]);
        }
        Some(bb)
    }

    /// Euclidean distance between two nodes' coordinates.
    pub fn euclidean(&self, u: NodeId, v: NodeId) -> f64 {
        let (ux, uy) = self.coords(u);
        let (vx, vy) = self.coords(v);
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }

    /// Smallest and largest edge weight, pre-scanned at build time;
    /// `None` for an edgeless graph.
    pub fn weight_range(&self) -> Option<(f64, f64)> {
        (self.num_edges > 0).then_some((self.min_weight, self.max_weight))
    }

    /// Which frontier implementation searches on this graph select:
    /// the calibrated bucket queue for strictly positive weight
    /// ranges, the 4-ary heap when the range is degenerate (no edges,
    /// or a zero minimum weight). Both produce bit-identical results;
    /// the choice is purely about speed.
    pub fn frontier_kind(&self) -> FrontierKind {
        self.calibration().kind
    }

    /// Bucket-queue calibration for searches on this graph.
    pub(crate) fn calibration(&self) -> Calibration {
        Calibration::from_weights(
            self.min_weight,
            self.max_weight,
            self.num_edges,
            self.num_nodes(),
        )
    }
}

/// Single-sweep iterator over undirected edges (see [`Graph::edges`]).
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    g: &'a Graph,
    /// Cursor into the flattened arc arrays.
    arc: usize,
    /// Owning node of `arc` (`offsets[node] ≤ arc < offsets[node+1]`).
    node: u32,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let num_arcs = self.g.adj_targets.len();
        while self.arc < num_arcs {
            // Advance the owner cursor past empty adjacency lists.
            while self.g.offsets[self.node as usize + 1] as usize <= self.arc {
                self.node += 1;
            }
            let arc = self.arc;
            self.arc += 1;
            let v = self.g.adj_targets[arc];
            if self.node < v {
                return Some((NodeId(self.node), NodeId(v), self.g.adj_weights[arc]));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Each remaining undirected edge occupies one un-yielded arc
        // pair; at most the remaining arcs, at least half of them.
        let remaining = self.g.adj_targets.len() - self.arc;
        (0, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::NodeId;

    fn triangle() -> crate::graph::Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(3.0, 0.0);
        let d = b.add_node(0.0, 4.0);
        b.add_edge(a, c, 3.0).unwrap();
        b.add_edge(c, d, 5.0).unwrap();
        b.add_edge(a, d, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_sorted_by_id() {
        let g = triangle();
        let ns: Vec<u32> = g.neighbors(NodeId(2)).map(|(n, _)| n.0).collect();
        assert_eq!(ns, vec![0, 1]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(3.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), None);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn degree() {
        let g = triangle();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        for (u, v, _) in es {
            assert!(u < v);
        }
    }

    #[test]
    fn euclidean_distance() {
        let g = triangle();
        assert!((g.euclidean(NodeId(1), NodeId(2)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box() {
        let g = triangle();
        assert_eq!(g.bounding_box(), Some((0.0, 0.0, 3.0, 4.0)));
    }

    #[test]
    fn check_node_bounds() {
        let g = triangle();
        assert!(g.check_node(NodeId(2)).is_ok());
        assert!(g.check_node(NodeId(3)).is_err());
    }

    #[test]
    fn set_edge_weight_patches_both_arcs() {
        let mut g = triangle();
        assert_eq!(g.set_edge_weight(NodeId(0), NodeId(1), 7.5), Some(3.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(7.5));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(7.5));
        // Missing edges are untouched and report None.
        assert_eq!(g.set_edge_weight(NodeId(0), NodeId(0), 1.0), None);
        // Weight bounds only widen.
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo <= 3.0 && hi >= 7.5);
    }

    #[test]
    fn set_edge_weight_matches_rebuilt_graph() {
        // In-place patching must be indistinguishable from rebuilding
        // the graph with the new weight.
        let mut g = triangle();
        g.set_edge_weight(NodeId(1), NodeId(2), 9.0);
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.0, 0.0);
        let c = b.add_node(3.0, 0.0);
        let d = b.add_node(0.0, 4.0);
        b.add_edge(a, c, 3.0).unwrap();
        b.add_edge(c, d, 9.0).unwrap();
        b.add_edge(a, d, 4.0).unwrap();
        let fresh = b.build();
        for u in g.nodes() {
            let got: Vec<_> = g.neighbors(u).collect();
            let want: Vec<_> = fresh.neighbors(u).collect();
            assert_eq!(got, want, "adjacency of {u}");
        }
    }
}
