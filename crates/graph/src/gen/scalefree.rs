//! Scale-free (Barabási–Albert) graph generator.
//!
//! Preferential attachment: each new node connects to `m` distinct
//! existing nodes chosen with probability proportional to their
//! degree, yielding the power-law degree distribution of web, social
//! and P2P overlay graphs — the topological opposite of the paper's
//! near-planar road networks, and the stress case for the calibrated
//! bucket queue (hub nodes dump thousands of relaxations into a
//! handful of buckets).
//!
//! Degree-proportional sampling is done the classic way: every edge
//! endpoint is appended to a flat pool and targets are drawn
//! uniformly from it, so generation is `O(n·m)` time and memory and
//! streams straight into the [`GraphBuilder`] (1M nodes in well under
//! a second).

use crate::builder::GraphBuilder;
use crate::gen::grid::EXTENT;
use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a connected scale-free graph with `n` nodes where every
/// node beyond the seed clique attaches to `m` distinct predecessors.
///
/// Node coordinates are uniform in the paper's `[0..10,000]²` extent
/// (the topology is non-spatial; coordinates only feed spatial
/// partitioning). Weights are uniform in `[1, 10)` — strictly
/// positive, so searches select the bucket-queue frontier.
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn scale_free(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment degree must be >= 1");
    assert!(n > m, "need more nodes than the seed clique");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m * n);
    for _ in 0..n {
        let x = rng.random_range(0.0..EXTENT);
        let y = rng.random_range(0.0..EXTENT);
        b.add_node(x, y);
    }

    // Flat endpoint pool: each node id appears once per incident edge,
    // so a uniform draw is a degree-proportional draw.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);
    let weight = |rng: &mut StdRng| rng.random_range(1.0..10.0);

    // Seed clique on the first m+1 nodes.
    for u in 0..m as u32 {
        for v in u + 1..(m + 1) as u32 {
            let w = weight(&mut rng);
            b.add_edge(NodeId(u), NodeId(v), w).expect("clique edge");
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    // Preferential attachment for the rest.
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for v in (m + 1) as u32..n as u32 {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            let w = weight(&mut rng);
            b.add_edge(NodeId(v), NodeId(t), w)
                .expect("distinct target");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_sssp;
    use crate::search::FrontierKind;

    #[test]
    fn counts_and_connectivity() {
        let g = scale_free(300, 2, 1);
        assert_eq!(g.num_nodes(), 300);
        // Clique (3 edges for m = 2) + m per attached node.
        assert_eq!(g.num_edges(), 3 + 2 * (300 - 3));
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(
            r.dist.iter().all(|d| d.is_finite()),
            "connected by construction"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scale_free(200, 3, 9);
        let b = scale_free(200, 3, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for (e1, e2) in a.edges().zip(b.edges()) {
            assert_eq!((e1.0, e1.1), (e2.0, e2.1));
            assert_eq!(e1.2.to_bits(), e2.2.to_bits());
        }
        let c = scale_free(200, 3, 10);
        assert!(a.edges().zip(c.edges()).any(|(e1, e2)| e1.2 != e2.2));
    }

    #[test]
    fn power_law_ish_hubs() {
        // Preferential attachment concentrates degree: the max degree
        // must far exceed the mean (a uniform graph would stay near 2m).
        let g = scale_free(2000, 2, 4);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 40, "hub degree {max_deg} too uniform");
    }

    #[test]
    fn positive_weights_select_bucket_frontier() {
        let g = scale_free(150, 2, 5);
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo >= 1.0 && hi < 10.0);
        assert_eq!(g.frontier_kind(), FrontierKind::Bucket);
    }
}
