//! Random geometric graph generator (k-nearest-neighbor flavour).
//!
//! Used mainly in tests as a second, structurally different network
//! family: nodes uniform in the extent, each connected to its `k`
//! nearest neighbors with Euclidean weights. Unlike
//! [`crate::gen::grid_network`] the result may be disconnected.

use crate::builder::GraphBuilder;
use crate::gen::grid::EXTENT;
use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a k-nearest-neighbor geometric graph with `n` nodes.
///
/// # Panics
/// Panics if `n == 0` or `k == 0`.
pub fn random_geometric(n: usize, k: usize, seed: u64) -> Graph {
    assert!(n > 0 && k > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..EXTENT), rng.random_range(0.0..EXTENT)))
        .collect();
    for &(x, y) in &pts {
        b.add_node(x, y);
    }
    // O(n²) neighbor scan — fine at test scale.
    for i in 0..n {
        let mut dists: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                ((dx * dx + dy * dy).sqrt(), j)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(d, j) in dists.iter().take(k) {
            let (u, v) = (NodeId(i as u32), NodeId(j as u32));
            if !b.has_edge(u, v) {
                b.add_edge(u, v, d).expect("valid geometric edge");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_bounds() {
        let g = random_geometric(100, 3, 1);
        assert_eq!(g.num_nodes(), 100);
        // Each node contributes ≤ k edges; mutual nearest neighbors dedup.
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() >= 150);
        let (minx, miny, maxx, maxy) = g.bounding_box().unwrap();
        assert!(minx >= 0.0 && miny >= 0.0 && maxx <= EXTENT && maxy <= EXTENT);
    }

    #[test]
    fn min_degree_k() {
        let g = random_geometric(50, 2, 2);
        for v in g.nodes() {
            assert!(g.degree(v) >= 2);
        }
    }

    #[test]
    fn weights_are_euclidean() {
        let g = random_geometric(40, 3, 3);
        for (u, v, w) in g.edges() {
            assert!((w - g.euclidean(u, v)).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let a = random_geometric(30, 3, 9);
        let b = random_geometric(30, 3, 9);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
