//! The paper's four evaluation datasets, reproduced synthetically.
//!
//! | name | paper nodes | paper edges | ratio |
//! |------|------------:|------------:|-------|
//! | DE   | 28,867      | 30,429      | 1.054 |
//! | ARG  | 85,287      | 88,357      | 1.036 |
//! | IND  | 149,566     | 155,483     | 1.040 |
//! | NA   | 175,813     | 179,179     | 1.019 |
//!
//! `Dataset::generate(scale, seed)` produces a perturbed-grid network
//! with `scale × paper_nodes` nodes (rounded to the nearest feasible
//! grid) and the dataset's |E|/|V| ratio. `scale = 1.0` reproduces the
//! paper's sizes; the benchmark harness defaults to reduced scales (see
//! `EXPERIMENTS.md`).
//!
//! Generation streams through `GraphBuilder` (no intermediate
//! candidate/edge vectors — see [`road_network`]), so peak memory is
//! the builder itself plus two transient bitvecs even at full scale.

use crate::gen::grid::road_network;
use crate::graph::Graph;

/// Edge-weight calibration for the synthetic datasets.
///
/// The paper's weights are road lengths in units where the default
/// query range (2,000) covers most of the network: Figure 8b shows the
/// DIJ ball holding 25,387 of DE's 28,867 nodes, while ranges up to
/// 8,000 still admit workload pairs. Real Germany is far more skewed
/// (dense core, long arms) than a uniform grid, so both properties
/// cannot hold exactly at once; 0.075 is calibrated so that a
/// range-2,000 ball covers ≈ half the nodes and range-8,000 workloads
/// saturate near the diameter (recorded in `EXPERIMENTS.md`).
pub const DATASET_WEIGHT_SCALE: f64 = 0.075;

/// One of the paper's four road-network datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Germany — 28,867 nodes, 30,429 edges.
    De,
    /// Argentina — 85,287 nodes, 88,357 edges.
    Arg,
    /// India — 149,566 nodes, 155,483 edges.
    Ind,
    /// North America — 175,813 nodes, 179,179 edges.
    Na,
}

/// All datasets in the paper's presentation order.
pub const ALL_DATASETS: [Dataset; 4] = [Dataset::De, Dataset::Arg, Dataset::Ind, Dataset::Na];

impl Dataset {
    /// The dataset's display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::De => "DE",
            Dataset::Arg => "ARG",
            Dataset::Ind => "IND",
            Dataset::Na => "NA",
        }
    }

    /// Node count of the real dataset.
    pub fn paper_nodes(self) -> usize {
        match self {
            Dataset::De => 28_867,
            Dataset::Arg => 85_287,
            Dataset::Ind => 149_566,
            Dataset::Na => 175_813,
        }
    }

    /// Edge count of the real dataset.
    pub fn paper_edges(self) -> usize {
        match self {
            Dataset::De => 30_429,
            Dataset::Arg => 88_357,
            Dataset::Ind => 155_483,
            Dataset::Na => 179_179,
        }
    }

    /// |E|/|V| of the real dataset.
    pub fn edge_ratio(self) -> f64 {
        self.paper_edges() as f64 / self.paper_nodes() as f64
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "de" => Some(Dataset::De),
            "arg" => Some(Dataset::Arg),
            "ind" => Some(Dataset::Ind),
            "na" => Some(Dataset::Na),
            _ => None,
        }
    }

    /// Generates the synthetic stand-in at `scale` of the paper's size.
    ///
    /// The node count is `round(scale × paper_nodes)` arranged on the
    /// most-square grid; the exact count may differ by the grid
    /// rounding (reported by `Graph::num_nodes`).
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let target = ((self.paper_nodes() as f64 * scale).round() as usize).max(4);
        let rows = (target as f64).sqrt().round() as usize;
        let cols = target.div_ceil(rows.max(1));
        road_network(
            rows.max(2),
            cols.max(2),
            self.edge_ratio(),
            DATASET_WEIGHT_SCALE,
            seed ^ self.seed_salt(),
        )
    }

    /// Per-dataset salt so different datasets never share a generator
    /// stream even with equal seeds.
    fn seed_salt(self) -> u64 {
        match self {
            Dataset::De => 0xD0_0D,
            Dataset::Arg => 0xA6_06,
            Dataset::Ind => 0x1B_D1,
            Dataset::Na => 0x4A_4A,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_sssp;
    use crate::ids::NodeId;

    #[test]
    fn paper_counts() {
        assert_eq!(Dataset::De.paper_nodes(), 28_867);
        assert_eq!(Dataset::Na.paper_edges(), 179_179);
        assert!((Dataset::De.edge_ratio() - 1.054).abs() < 0.001);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Dataset::parse("de"), Some(Dataset::De));
        assert_eq!(Dataset::parse("NA"), Some(Dataset::Na));
        assert_eq!(Dataset::parse("xx"), None);
    }

    #[test]
    fn scaled_generation_close_to_target() {
        let g = Dataset::De.generate(0.05, 1);
        let target = (28_867.0 * 0.05) as usize;
        let got = g.num_nodes();
        assert!(
            (got as f64 - target as f64).abs() / target as f64 <= 0.05,
            "target {target}, got {got}"
        );
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (ratio - Dataset::De.edge_ratio()).abs() < 0.02,
            "ratio {ratio}"
        );
    }

    #[test]
    fn generated_connected() {
        for ds in ALL_DATASETS {
            let g = ds.generate(0.01, 2);
            let r = dijkstra_sssp(&g, NodeId(0));
            assert!(
                r.dist.iter().all(|d| d.is_finite()),
                "{} must be connected",
                ds.name()
            );
        }
    }

    #[test]
    fn datasets_differ_under_same_seed() {
        let a = Dataset::De.generate(0.01, 5);
        let b = Dataset::Arg.generate(0.01, 5);
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = Dataset::De.generate(0.0, 1);
    }
}
