//! Perturbed-grid road network generator.
//!
//! Road networks are locally grid-like: junctions have small degree
//! (the paper's datasets average ≈ 2.1) and edges connect spatial
//! neighbors. The generator:
//!
//! 1. places `rows × cols` nodes on a jittered lattice scaled to
//!    `[0..10,000]²`,
//! 2. spans them with a random spanning tree over lattice-adjacent
//!    pairs (guaranteeing connectivity),
//! 3. adds further lattice edges uniformly at random until the target
//!    |E|/|V| ratio is reached,
//! 4. sets each weight to the Euclidean length times a small random
//!    detour factor (roads are rarely straight).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Spatial extent used by the paper's normalization.
pub const EXTENT: f64 = 10_000.0;

/// Generates a connected perturbed-grid network with unit weight scale
/// (weights = Euclidean length × detour factor).
pub fn grid_network(rows: usize, cols: usize, edge_ratio: f64, seed: u64) -> Graph {
    road_network(rows, cols, edge_ratio, 1.0, seed)
}

/// Generates a connected perturbed-grid road network.
///
/// * `rows`, `cols` — lattice dimensions; |V| = rows·cols.
/// * `edge_ratio` — target |E|/|V| (the paper's datasets have
///   1.02–1.05; values < 1 are clamped to the spanning-tree minimum).
/// * `weight_scale` — multiplies every edge weight. The paper's edge
///   weights are road lengths in units where the default query range
///   (2,000) reaches most of the network (Fig. 8b: the DIJ ball holds
///   25,387 of DE's 28,867 nodes); `Dataset::generate` calibrates this
///   so the reproduced figures keep the paper's range semantics.
/// * `seed` — deterministic generation.
///
/// # Panics
/// Panics if `rows * cols == 0`, or `weight_scale ≤ 0`.
pub fn road_network(
    rows: usize,
    cols: usize,
    edge_ratio: f64,
    weight_scale: f64,
    seed: u64,
) -> Graph {
    assert!(rows * cols > 0, "empty grid");
    assert!(weight_scale > 0.0, "weight scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * edge_ratio) as usize + 1);

    // Cell size; jitter keeps nodes inside their cell to preserve
    // lattice adjacency semantics.
    let dx = EXTENT / cols as f64;
    let dy = EXTENT / rows as f64;
    for r in 0..rows {
        for c in 0..cols {
            let jx = rng.random_range(-0.35..0.35) * dx;
            let jy = rng.random_range(-0.35..0.35) * dy;
            let x = (c as f64 + 0.5) * dx + jx;
            let y = (r as f64 + 0.5) * dy + jy;
            b.add_node(x.clamp(0.0, EXTENT), y.clamp(0.0, EXTENT));
        }
    }

    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);

    // Candidate lattice edges: horizontal + vertical neighbors.
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                candidates.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                candidates.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    candidates.shuffle(&mut rng);

    // Kruskal-style random spanning tree via union-find.
    let mut uf = UnionFind::new(n);
    let mut in_tree = vec![false; candidates.len()];
    let mut edges_added = 0usize;
    for (i, &(u, v)) in candidates.iter().enumerate() {
        if uf.union(u.index(), v.index()) {
            in_tree[i] = true;
            edges_added += 1;
            if edges_added == n - 1 {
                break;
            }
        }
    }

    let target_edges = ((n as f64 * edge_ratio).round() as usize).max(edges_added);
    let weight = |g: &GraphBuilder, u: NodeId, v: NodeId, rng: &mut StdRng| {
        let (ux, uy) = (g_x(g, u), g_y(g, u));
        let (vx, vy) = (g_x(g, v), g_y(g, v));
        let euclid = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
        euclid * rng.random_range(1.0..1.3) * weight_scale // detour factor
    };

    // Tree edges first, then extras until the ratio target.
    for (i, &(u, v)) in candidates.iter().enumerate() {
        if in_tree[i] {
            let w = weight(&b, u, v, &mut rng);
            b.add_edge(u, v, w).expect("valid lattice edge");
        }
    }
    for (i, &(u, v)) in candidates.iter().enumerate() {
        if edges_added >= target_edges {
            break;
        }
        if !in_tree[i] {
            let w = weight(&b, u, v, &mut rng);
            b.add_edge(u, v, w).expect("valid lattice edge");
            edges_added += 1;
        }
    }

    b.build()
}

fn g_x(b: &GraphBuilder, v: NodeId) -> f64 {
    b.coords(v).0
}

fn g_y(b: &GraphBuilder, v: NodeId) -> f64 {
    b.coords(v).1
}

/// Union-find with path compression + union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Returns true if the two components were merged (were distinct).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_sssp;

    #[test]
    fn node_and_edge_counts() {
        let g = grid_network(10, 10, 1.05, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 105);
    }

    #[test]
    fn connected() {
        let g = grid_network(15, 15, 1.02, 2);
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(
            r.dist.iter().all(|d| d.is_finite()),
            "graph must be connected"
        );
    }

    #[test]
    fn coordinates_in_extent() {
        let g = grid_network(20, 20, 1.1, 3);
        let (minx, miny, maxx, maxy) = g.bounding_box().unwrap();
        assert!(minx >= 0.0 && miny >= 0.0);
        assert!(maxx <= EXTENT && maxy <= EXTENT);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = grid_network(8, 8, 1.1, 7);
        let b = grid_network(8, 8, 1.1, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for (e1, e2) in a.edges().zip(b.edges()) {
            assert_eq!(e1.0, e2.0);
            assert_eq!(e1.1, e2.1);
            assert_eq!(e1.2.to_bits(), e2.2.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = grid_network(8, 8, 1.1, 7);
        let b = grid_network(8, 8, 1.1, 8);
        let same = a
            .edges()
            .zip(b.edges())
            .all(|(e1, e2)| e1.2.to_bits() == e2.2.to_bits());
        assert!(!same);
    }

    #[test]
    fn weights_positive_and_at_least_euclidean() {
        let g = grid_network(10, 10, 1.2, 4);
        for (u, v, w) in g.edges() {
            assert!(w > 0.0);
            assert!(w >= g.euclidean(u, v) - 1e-9, "detour factor ≥ 1");
        }
    }

    #[test]
    fn ratio_below_tree_clamped() {
        // edge_ratio 0.5 < spanning tree requirement: still connected.
        let g = grid_network(6, 6, 0.5, 5);
        assert_eq!(g.num_edges(), 35); // n-1 spanning tree edges
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn single_row_is_a_path_graph() {
        let g = grid_network(1, 12, 1.0, 6);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn sparsity_matches_paper_band() {
        // Paper datasets: |E|/|V| between 1.018 (NA) and 1.054 (DE).
        let g = grid_network(30, 30, 1.05, 9);
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((1.0..=1.06).contains(&ratio), "ratio {ratio}");
    }
}
