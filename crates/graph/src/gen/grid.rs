//! Perturbed-grid road network generator.
//!
//! Road networks are locally grid-like: junctions have small degree
//! (the paper's datasets average ≈ 2.1) and edges connect spatial
//! neighbors. The generator:
//!
//! 1. places `rows × cols` nodes on a jittered lattice scaled to
//!    `[0..10,000]²`,
//! 2. spans them with a random spanning tree over lattice-adjacent
//!    pairs (guaranteeing connectivity),
//! 3. adds further lattice edges uniformly at random until the target
//!    |E|/|V| ratio is reached,
//! 4. sets each weight to the Euclidean length times a small random
//!    detour factor (roads are rarely straight).
//!
//! Construction **streams** straight into the [`GraphBuilder`]: the
//! spanning tree is drawn by giving every node (except the origin) a
//! random left/up parent — a uniform-ish lattice tree that needs no
//! candidate-edge materialization, no shuffle and no union-find — and
//! the extra edges are rejection-sampled from the implicitly indexed
//! lattice. Peak transient memory is two bitvecs (≈ `|E|/4` bytes)
//! instead of the former `O(|E|)` candidate/flag vectors, which
//! mattered from 1M nodes up.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Spatial extent used by the paper's normalization.
pub const EXTENT: f64 = 10_000.0;

/// One bit per item, backed by `u64` words.
pub(crate) struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    pub(crate) fn new(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

/// Generates a connected perturbed-grid network with unit weight scale
/// (weights = Euclidean length × detour factor).
pub fn grid_network(rows: usize, cols: usize, edge_ratio: f64, seed: u64) -> Graph {
    road_network(rows, cols, edge_ratio, 1.0, seed)
}

/// Generates a connected perturbed-grid road network.
///
/// * `rows`, `cols` — lattice dimensions; |V| = rows·cols.
/// * `edge_ratio` — target |E|/|V| (the paper's datasets have
///   1.02–1.05; values < 1 are clamped to the spanning-tree minimum).
/// * `weight_scale` — multiplies every edge weight. The paper's edge
///   weights are road lengths in units where the default query range
///   (2,000) reaches most of the network (Fig. 8b: the DIJ ball holds
///   25,387 of DE's 28,867 nodes); `Dataset::generate` calibrates this
///   so the reproduced figures keep the paper's range semantics.
/// * `seed` — deterministic generation.
///
/// # Panics
/// Panics if `rows * cols == 0`, or `weight_scale ≤ 0`.
pub fn road_network(
    rows: usize,
    cols: usize,
    edge_ratio: f64,
    weight_scale: f64,
    seed: u64,
) -> Graph {
    assert!(rows * cols > 0, "empty grid");
    assert!(weight_scale > 0.0, "weight scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * edge_ratio) as usize + 1);
    fill_road_grid(
        &mut b,
        rows,
        cols,
        edge_ratio,
        weight_scale,
        1.0..1.3,
        &mut rng,
    );
    b.build()
}

/// Streams the jittered-lattice nodes and edges of a road grid into
/// `b` (shared by [`road_network`] and the highway-hierarchy
/// generator, which layers express edges on top).
pub(crate) fn fill_road_grid(
    b: &mut GraphBuilder,
    rows: usize,
    cols: usize,
    edge_ratio: f64,
    weight_scale: f64,
    detour: Range<f64>,
    rng: &mut StdRng,
) {
    let n = rows * cols;

    // Cell size; jitter keeps nodes inside their cell to preserve
    // lattice adjacency semantics.
    let dx = EXTENT / cols as f64;
    let dy = EXTENT / rows as f64;
    for r in 0..rows {
        for c in 0..cols {
            let jx = rng.random_range(-0.35..0.35) * dx;
            let jy = rng.random_range(-0.35..0.35) * dy;
            let x = (c as f64 + 0.5) * dx + jx;
            let y = (r as f64 + 0.5) * dy + jy;
            b.add_node(x.clamp(0.0, EXTENT), y.clamp(0.0, EXTENT));
        }
    }

    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let weight = |b: &GraphBuilder, u: NodeId, v: NodeId, rng: &mut StdRng| {
        let (ux, uy) = b.coords(u);
        let (vx, vy) = b.coords(v);
        let euclid = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
        euclid * rng.random_range(detour.clone()) * weight_scale
    };

    // Random lattice spanning tree: every node except the origin picks
    // its left or up lattice neighbor as parent (forced on the first
    // row/column). Each choice is one bit, and the tree streams into
    // the builder without materializing candidate edges.
    let mut chose_left = BitVec::new(n);
    for r in 0..rows {
        for c in 0..cols {
            if r == 0 && c == 0 {
                continue;
            }
            let left = if r == 0 {
                true
            } else if c == 0 {
                false
            } else {
                rng.random_bool(0.5)
            };
            let (u, v) = if left {
                (id(r, c - 1), id(r, c))
            } else {
                (id(r - 1, c), id(r, c))
            };
            if left {
                chose_left.set(v.index());
            }
            let w = weight(b, u, v, rng);
            b.add_edge(u, v, w).expect("valid lattice edge");
        }
    }
    let tree_edges = n - 1;

    // Implicit lattice-edge indexing: `num_h` horizontal edges
    // (r, c)–(r, c+1) first, then vertical (r, c)–(r+1, c). A lattice
    // edge is in the tree iff its child node chose the matching
    // parent, so tree membership is derivable from `chose_left`.
    let num_h = rows * (cols - 1);
    let num_v = (rows - 1) * cols;
    let num_lattice = num_h + num_v;
    let edge_of = |i: usize| {
        if i < num_h {
            let (r, c) = (i / (cols - 1), i % (cols - 1));
            (id(r, c), id(r, c + 1))
        } else {
            let j = i - num_h;
            let (r, c) = (j / cols, j % cols);
            (id(r, c), id(r + 1, c))
        }
    };
    let in_tree = |chose_left: &BitVec, i: usize| {
        let (_, child) = edge_of(i);
        if i < num_h {
            chose_left.get(child.index())
        } else {
            !chose_left.get(child.index())
        }
    };

    // Extra lattice edges, uniform without replacement: rejection-
    // sample the implicit index space, falling back to a deterministic
    // sweep if the lattice is nearly saturated.
    let target_edges = ((n as f64 * edge_ratio).round() as usize)
        .max(tree_edges)
        .min(num_lattice);
    let mut added = BitVec::new(num_lattice);
    let mut edges_added = tree_edges;
    let mut attempts = 20 * (target_edges - tree_edges) + 100;
    while edges_added < target_edges && attempts > 0 {
        attempts -= 1;
        let i = rng.random_range(0..num_lattice);
        if added.get(i) || in_tree(&chose_left, i) {
            continue;
        }
        added.set(i);
        let (u, v) = edge_of(i);
        let w = weight(b, u, v, rng);
        b.add_edge(u, v, w).expect("valid lattice edge");
        edges_added += 1;
    }
    for i in 0..num_lattice {
        if edges_added >= target_edges {
            break;
        }
        if !added.get(i) && !in_tree(&chose_left, i) {
            added.set(i);
            let (u, v) = edge_of(i);
            let w = weight(b, u, v, rng);
            b.add_edge(u, v, w).expect("valid lattice edge");
            edges_added += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_sssp;

    #[test]
    fn node_and_edge_counts() {
        let g = grid_network(10, 10, 1.05, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 105);
    }

    #[test]
    fn connected() {
        let g = grid_network(15, 15, 1.02, 2);
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(
            r.dist.iter().all(|d| d.is_finite()),
            "graph must be connected"
        );
    }

    #[test]
    fn coordinates_in_extent() {
        let g = grid_network(20, 20, 1.1, 3);
        let (minx, miny, maxx, maxy) = g.bounding_box().unwrap();
        assert!(minx >= 0.0 && miny >= 0.0);
        assert!(maxx <= EXTENT && maxy <= EXTENT);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = grid_network(8, 8, 1.1, 7);
        let b = grid_network(8, 8, 1.1, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for (e1, e2) in a.edges().zip(b.edges()) {
            assert_eq!(e1.0, e2.0);
            assert_eq!(e1.1, e2.1);
            assert_eq!(e1.2.to_bits(), e2.2.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = grid_network(8, 8, 1.1, 7);
        let b = grid_network(8, 8, 1.1, 8);
        let same = a
            .edges()
            .zip(b.edges())
            .all(|(e1, e2)| e1.2.to_bits() == e2.2.to_bits());
        assert!(!same);
    }

    #[test]
    fn weights_positive_and_at_least_euclidean() {
        let g = grid_network(10, 10, 1.2, 4);
        for (u, v, w) in g.edges() {
            assert!(w > 0.0);
            assert!(w >= g.euclidean(u, v) - 1e-9, "detour factor ≥ 1");
        }
    }

    #[test]
    fn ratio_below_tree_clamped() {
        // edge_ratio 0.5 < spanning tree requirement: still connected.
        let g = grid_network(6, 6, 0.5, 5);
        assert_eq!(g.num_edges(), 35); // n-1 spanning tree edges
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn single_row_is_a_path_graph() {
        let g = grid_network(1, 12, 1.0, 6);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn sparsity_matches_paper_band() {
        // Paper datasets: |E|/|V| between 1.018 (NA) and 1.054 (DE).
        let g = grid_network(30, 30, 1.05, 9);
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((1.0..=1.06).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn saturated_ratio_caps_at_lattice() {
        // edge_ratio far above the lattice density: every lattice edge
        // gets added (fallback sweep) and generation terminates.
        let g = grid_network(5, 5, 4.0, 17);
        assert_eq!(g.num_edges(), 2 * 5 * 4); // full lattice
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }
}
