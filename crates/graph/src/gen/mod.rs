//! Synthetic spatial road-network generators.
//!
//! The paper evaluates on four real road networks (DE, ARG, IND, NA)
//! downloaded from `maproom.psu.edu/dcw`, a source that no longer
//! exists. Per `DESIGN.md` §4 we substitute synthetic networks that
//! preserve the properties proof sizes depend on: node/edge counts,
//! sparsity (|E|/|V| ≈ 1.05), spatial locality, and the `[0..10,000]²`
//! coordinate extent.
//!
//! Beyond the paper's scale, [`highway_network`] (grid + express
//! hierarchy) and [`scale_free`] (preferential attachment) feed the
//! million-node `BENCH_scale.json` trajectory. Every generator takes
//! an explicit `u64` seed and is fully deterministic for it — byte
//! and bit identical across runs and machines — and streams
//! construction through [`GraphBuilder`](crate::builder::GraphBuilder)
//! without materializing intermediate edge vectors.

pub mod datasets;
pub mod geometric;
pub mod grid;
pub mod highway;
pub mod scalefree;

pub use datasets::{Dataset, ALL_DATASETS};
pub use geometric::random_geometric;
pub use grid::{grid_network, road_network};
pub use highway::highway_network;
pub use scalefree::scale_free;
