//! Synthetic spatial road-network generators.
//!
//! The paper evaluates on four real road networks (DE, ARG, IND, NA)
//! downloaded from `maproom.psu.edu/dcw`, a source that no longer
//! exists. Per `DESIGN.md` §4 we substitute synthetic networks that
//! preserve the properties proof sizes depend on: node/edge counts,
//! sparsity (|E|/|V| ≈ 1.05), spatial locality, and the `[0..10,000]²`
//! coordinate extent.

pub mod datasets;
pub mod geometric;
pub mod grid;

pub use datasets::{Dataset, ALL_DATASETS};
pub use geometric::random_geometric;
pub use grid::{grid_network, road_network};
