//! Grid + highway-hierarchy road network generator.
//!
//! Real road networks are not flat grids: a sparse express layer
//! (highways) overlays the local street lattice, so long journeys
//! traverse few, long, fast edges. This generator layers that
//! hierarchy onto the perturbed grid of
//! [`road_network`](super::road_network):
//!
//! * the **local layer** is the same jittered lattice, but with a
//!   larger detour factor (1.1–1.4: surface streets wind more),
//! * the **highway layer** connects every `stride`-th lattice junction
//!   to its next highway neighbor along the row and column, with a
//!   near-straight detour factor (1.01–1.05).
//!
//! Weights stay ≥ the Euclidean distance, so A\* with the Euclidean
//! lower bound remains admissible. The long express edges also widen
//! the weight range `w_max / w_min` by roughly `stride ×` — which is
//! exactly the regime where the calibrated bucket queue's overflow
//! and wide-Δ paths earn their keep, making this the interesting
//! topology for `BENCH_scale.json`.

use crate::builder::GraphBuilder;
use crate::gen::grid::fill_road_grid;
use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a connected grid road network with a highway hierarchy.
///
/// * `rows`, `cols` — lattice dimensions; |V| = rows·cols.
/// * `edge_ratio` — target |E|/|V| for the **local** layer (highway
///   edges are added on top).
/// * `stride` — lattice spacing of highway junctions; must be ≥ 2.
///   Junction `(r, c)` is on the highway iff `r % stride == 0 &&
///   c % stride == 0`.
/// * `seed` — deterministic generation.
///
/// # Panics
/// Panics if `rows * cols == 0` or `stride < 2`.
pub fn highway_network(
    rows: usize,
    cols: usize,
    edge_ratio: f64,
    stride: usize,
    seed: u64,
) -> Graph {
    assert!(rows * cols > 0, "empty grid");
    assert!(stride >= 2, "highway stride must be >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * (edge_ratio + 0.1)) as usize + 1);
    fill_road_grid(&mut b, rows, cols, edge_ratio, 1.0, 1.1..1.4, &mut rng);

    // Express layer: row and column links between adjacent highway
    // junctions. These bypass, not replace, the local lattice — the
    // endpoints keep their street connections.
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let highway_edge = |b: &mut GraphBuilder, u: NodeId, v: NodeId, rng: &mut StdRng| {
        let (ux, uy) = b.coords(u);
        let (vx, vy) = b.coords(v);
        let euclid = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
        let w = euclid * rng.random_range(1.01..1.05);
        b.add_edge(u, v, w).expect("valid highway edge");
    };
    for r in (0..rows).step_by(stride) {
        for c in (0..cols).step_by(stride) {
            if c + stride < cols {
                highway_edge(&mut b, id(r, c), id(r, c + stride), &mut rng);
            }
            if r + stride < rows {
                highway_edge(&mut b, id(r, c), id(r + stride, c), &mut rng);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra_sssp;
    use crate::search::FrontierKind;

    #[test]
    fn counts_and_connectivity() {
        let g = highway_network(12, 12, 1.05, 4, 1);
        assert_eq!(g.num_nodes(), 144);
        // Local layer ≈ 151 edges + 3x3 highway grid x 2 directions.
        assert!(g.num_edges() > 151, "highway edges on top of the grid");
        let r = dijkstra_sssp(&g, NodeId(0));
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = highway_network(10, 10, 1.1, 3, 7);
        let b = highway_network(10, 10, 1.1, 3, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for (e1, e2) in a.edges().zip(b.edges()) {
            assert_eq!((e1.0, e1.1), (e2.0, e2.1));
            assert_eq!(e1.2.to_bits(), e2.2.to_bits());
        }
        let c = highway_network(10, 10, 1.1, 3, 8);
        assert!(a.edges().zip(c.edges()).any(|(e1, e2)| e1.2 != e2.2));
    }

    #[test]
    fn weights_admissible_for_euclidean_astar() {
        let g = highway_network(9, 9, 1.1, 3, 4);
        for (u, v, w) in g.edges() {
            assert!(w >= g.euclidean(u, v) - 1e-9, "detour factor ≥ 1");
        }
    }

    #[test]
    fn widens_weight_range_and_keeps_bucket_frontier() {
        let grid = crate::gen::road_network(12, 12, 1.05, 1.0, 5);
        let hwy = highway_network(12, 12, 1.05, 6, 5);
        let (gmin, gmax) = grid.weight_range().unwrap();
        let (hmin, hmax) = hwy.weight_range().unwrap();
        assert!(
            hmax / hmin > gmax / gmin,
            "express edges must widen the weight range"
        );
        assert_eq!(hwy.frontier_kind(), FrontierKind::Bucket);
    }
}
