//! Paths through the network.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;

/// A path `v₀ → v₁ → … → vₖ` with its total distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The node sequence, source first.
    pub nodes: Vec<NodeId>,
    /// Sum of edge weights along the path.
    pub distance: f64,
}

impl Path {
    /// A single-node path of distance zero.
    pub fn trivial(v: NodeId) -> Self {
        Path {
            nodes: vec![v],
            distance: 0.0,
        }
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path is never empty")
    }

    /// Target node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path is never empty")
    }

    /// Number of edges (hops).
    pub fn num_edges(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Recomputes the distance from the graph's edge weights,
    /// validating that each consecutive pair is an actual edge.
    ///
    /// This is the `dist(P) = Σ W(v_{zi−1}, v_{zi})` check a client
    /// performs on a reported path.
    pub fn recompute_distance(&self, g: &Graph) -> Result<f64, GraphError> {
        let mut total = 0.0;
        for w in self.nodes.windows(2) {
            total += g.edge_weight(w[0], w[1]).ok_or(GraphError::Unreachable {
                source: w[0],
                target: w[1],
            })?;
        }
        Ok(total)
    }

    /// True iff the stored distance matches the recomputed one within a
    /// relative epsilon (floating-point sums differ across evaluation
    /// orders).
    pub fn distance_consistent(&self, g: &Graph) -> bool {
        match self.recompute_distance(g) {
            Ok(d) => close(d, self.distance),
            Err(_) => false,
        }
    }
}

/// Relative-epsilon comparison used throughout verification.
pub fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(i as f64, 0.0)).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[2], 2.0).unwrap();
        b.add_edge(n[2], n[3], 3.0).unwrap();
        b.build()
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(5));
        assert_eq!(p.source(), NodeId(5));
        assert_eq!(p.target(), NodeId(5));
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.distance, 0.0);
    }

    #[test]
    fn recompute_distance_valid() {
        let g = line_graph();
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            distance: 6.0,
        };
        assert_eq!(p.recompute_distance(&g).unwrap(), 6.0);
        assert!(p.distance_consistent(&g));
    }

    #[test]
    fn recompute_detects_fake_edge() {
        let g = line_graph();
        let p = Path {
            nodes: vec![NodeId(0), NodeId(3)], // no such edge
            distance: 1.0,
        };
        assert!(p.recompute_distance(&g).is_err());
        assert!(!p.distance_consistent(&g));
    }

    #[test]
    fn inconsistent_distance_detected() {
        let g = line_graph();
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1)],
            distance: 99.0, // lies about the length
        };
        assert!(!p.distance_consistent(&g));
    }

    #[test]
    fn close_comparison() {
        assert!(close(1.0, 1.0 + 1e-9));
        assert!(!close(1.0, 1.1));
        assert!(close(1e12, 1e12 * (1.0 + 1e-8)));
        assert!(close(0.0, 0.0));
    }
}
