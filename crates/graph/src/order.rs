//! Graph-node orderings for the Merkle tree leaf layout (Section III-B,
//! Figure 10).
//!
//! The integrity proof's size depends on how well the ordering
//! preserves network proximity: tuples that verify together should sit
//! under shared subtrees. The paper compares five orderings — random,
//! Hilbert, kd-tree, depth-first and breadth-first — and finds `hbt`,
//! `kd` and `dfs` comparable and clearly better than `bfs` and `rand`.

use crate::graph::Graph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One of the paper's five orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeOrdering {
    /// Breadth-first from node 0 (restarting per component).
    Bfs,
    /// Depth-first from node 0 (restarting per component).
    Dfs,
    /// Hilbert space-filling curve over the coordinates.
    Hilbert,
    /// kd-tree (recursive coordinate median split, in-order).
    KdTree,
    /// Seeded random shuffle.
    Random,
}

/// All orderings in the paper's presentation order (Fig. 10).
pub const ALL_ORDERINGS: [NodeOrdering; 5] = [
    NodeOrdering::Bfs,
    NodeOrdering::Dfs,
    NodeOrdering::Hilbert,
    NodeOrdering::KdTree,
    NodeOrdering::Random,
];

impl NodeOrdering {
    /// The figure label (`bfs`, `dfs`, `hbt`, `kd`, `rand`).
    pub fn name(self) -> &'static str {
        match self {
            NodeOrdering::Bfs => "bfs",
            NodeOrdering::Dfs => "dfs",
            NodeOrdering::Hilbert => "hbt",
            NodeOrdering::KdTree => "kd",
            NodeOrdering::Random => "rand",
        }
    }

    /// Parses a figure label.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "bfs" => Some(NodeOrdering::Bfs),
            "dfs" => Some(NodeOrdering::Dfs),
            "hbt" | "hilbert" => Some(NodeOrdering::Hilbert),
            "kd" | "kdtree" => Some(NodeOrdering::KdTree),
            "rand" | "random" => Some(NodeOrdering::Random),
            _ => None,
        }
    }

    /// Computes the permutation: position `i` of the returned vector is
    /// the node placed at Merkle leaf `i`.
    pub fn order(self, g: &Graph, seed: u64) -> Vec<NodeId> {
        match self {
            NodeOrdering::Bfs => bfs_order(g),
            NodeOrdering::Dfs => dfs_order(g),
            NodeOrdering::Hilbert => hilbert_order(g),
            NodeOrdering::KdTree => kd_order(g),
            NodeOrdering::Random => random_order(g, seed),
        }
    }
}

/// Breadth-first order, restarting at the smallest unvisited id per
/// component.
pub fn bfs_order(g: &Graph) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(NodeId(start as u32));
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for (u, _) in g.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    out
}

/// Depth-first order (iterative, neighbor order as stored), restarting
/// per component.
pub fn dfs_order(g: &Graph) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        stack.push(NodeId(start as u32));
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            out.push(v);
            // Push in reverse so the smallest-id neighbor pops first.
            let ns: Vec<NodeId> = g.neighbors(v).map(|(u, _)| u).collect();
            for u in ns.into_iter().rev() {
                if !seen[u.index()] {
                    stack.push(u);
                }
            }
        }
    }
    out
}

/// Hilbert-curve order of the node coordinates (order-16 curve).
pub fn hilbert_order(g: &Graph) -> Vec<NodeId> {
    let Some((minx, miny, maxx, maxy)) = g.bounding_box() else {
        return Vec::new();
    };
    let side = 1u32 << 16;
    let sx = if maxx > minx {
        (side - 1) as f64 / (maxx - minx)
    } else {
        0.0
    };
    let sy = if maxy > miny {
        (side - 1) as f64 / (maxy - miny)
    } else {
        0.0
    };
    let mut keyed: Vec<(u64, NodeId)> = g
        .nodes()
        .map(|v| {
            let (x, y) = g.coords(v);
            let gx = ((x - minx) * sx) as u32;
            let gy = ((y - miny) * sy) as u32;
            (hilbert_d(16, gx, gy), v)
        })
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, v)| v).collect()
}

/// Maps grid cell `(x, y)` to its distance along an order-`k` Hilbert
/// curve (standard rotate-and-flip formulation).
pub fn hilbert_d(k: u32, mut x: u32, mut y: u32) -> u64 {
    let side: u32 = 1 << k;
    let mut d: u64 = 0;
    let mut s: u32 = side / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate/flip the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// kd-tree order: recursive median split alternating x/y, emitting the
/// in-order traversal (left, median, right).
pub fn kd_order(g: &Graph) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.nodes().collect();
    let mut out = Vec::with_capacity(ids.len());
    kd_recurse(g, &mut ids, 0, &mut out);
    out
}

fn kd_recurse(g: &Graph, ids: &mut [NodeId], depth: usize, out: &mut Vec<NodeId>) {
    match ids.len() {
        0 => {}
        1 => out.push(ids[0]),
        _ => {
            let axis_x = depth.is_multiple_of(2);
            ids.sort_by(|&a, &b| {
                let ka = if axis_x { g.coords(a).0 } else { g.coords(a).1 };
                let kb = if axis_x { g.coords(b).0 } else { g.coords(b).1 };
                ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
            });
            let mid = ids.len() / 2;
            let (left, rest) = ids.split_at_mut(mid);
            let (median, right) = rest.split_at_mut(1);
            kd_recurse(g, left, depth + 1, out);
            out.push(median[0]);
            kd_recurse(g, right, depth + 1, out);
        }
    }
}

/// Seeded random permutation.
pub fn random_order(g: &Graph, seed: u64) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.nodes().collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_network;
    use std::collections::HashSet;

    fn is_permutation(g: &Graph, order: &[NodeId]) -> bool {
        order.len() == g.num_nodes() && order.iter().collect::<HashSet<_>>().len() == g.num_nodes()
    }

    #[test]
    fn all_orderings_are_permutations() {
        let g = grid_network(9, 9, 1.15, 70);
        for o in ALL_ORDERINGS {
            let order = o.order(&g, 71);
            assert!(is_permutation(&g, &order), "{} not a permutation", o.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for o in ALL_ORDERINGS {
            assert_eq!(NodeOrdering::parse(o.name()), Some(o));
        }
        assert_eq!(NodeOrdering::parse("nope"), None);
    }

    #[test]
    fn bfs_starts_at_zero_and_layers() {
        let g = grid_network(5, 5, 1.0, 72);
        let order = bfs_order(&g);
        assert_eq!(order[0], NodeId(0));
        // Second element must be a neighbor of node 0.
        let ns: Vec<NodeId> = g.neighbors(NodeId(0)).map(|(u, _)| u).collect();
        assert!(ns.contains(&order[1]));
    }

    #[test]
    fn dfs_follows_edges() {
        let g = grid_network(5, 5, 1.0, 73);
        let order = dfs_order(&g);
        assert_eq!(order[0], NodeId(0));
        // In a DFS of a connected graph, consecutive-order nodes need
        // not be adjacent, but the second node must neighbor the first.
        let ns: Vec<NodeId> = g.neighbors(NodeId(0)).map(|(u, _)| u).collect();
        assert!(ns.contains(&order[1]));
    }

    #[test]
    fn hilbert_d_unit_square() {
        // Order-1 curve visits (0,0),(0,1),(1,1),(1,0).
        assert_eq!(hilbert_d(1, 0, 0), 0);
        assert_eq!(hilbert_d(1, 0, 1), 1);
        assert_eq!(hilbert_d(1, 1, 1), 2);
        assert_eq!(hilbert_d(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_d_is_bijective_order2() {
        let mut seen = HashSet::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                assert!(seen.insert(hilbert_d(2, x, y)));
            }
        }
        assert_eq!(seen.len(), 16);
        assert!(seen.iter().all(|&d| d < 16));
    }

    #[test]
    fn hilbert_preserves_locality_better_than_random() {
        // Sum of |pos(u) − pos(v)| over edges: spatial orders should
        // beat random by a wide margin on a grid.
        let g = grid_network(12, 12, 1.1, 74);
        let span = |order: &[NodeId]| -> u64 {
            let mut pos = vec![0u32; g.num_nodes()];
            for (i, v) in order.iter().enumerate() {
                pos[v.index()] = i as u32;
            }
            g.edges()
                .map(|(u, v, _)| pos[u.index()].abs_diff(pos[v.index()]) as u64)
                .sum()
        };
        let hbt = span(&hilbert_order(&g));
        let rand = span(&random_order(&g, 75));
        assert!(hbt * 2 < rand, "hilbert {hbt} vs random {rand}");
    }

    #[test]
    fn kd_order_spatially_coherent() {
        let g = grid_network(10, 10, 1.1, 76);
        let order = kd_order(&g);
        assert!(is_permutation(&g, &order));
        // First and last elements should be on opposite x-halves.
        let (x0, _) = g.coords(order[0]);
        let (x1, _) = g.coords(*order.last().unwrap());
        assert!(x0 < x1);
    }

    #[test]
    fn random_order_deterministic_per_seed() {
        let g = grid_network(6, 6, 1.1, 77);
        assert_eq!(random_order(&g, 1), random_order(&g, 1));
        assert_ne!(random_order(&g, 1), random_order(&g, 2));
    }

    #[test]
    fn empty_graph_orders() {
        let g = crate::builder::GraphBuilder::new().build();
        for o in ALL_ORDERINGS {
            assert!(o.order(&g, 0).is_empty());
        }
    }
}
