//! Bounded LRU cache for pages faulted in from a backing store.
//!
//! The paged [`crate::merkle::MerkleTree`] and
//! [`crate::mbtree::MerkleBTree`] representations resolve digest and
//! entry pages lazily through a pager. Before this module they pinned
//! every faulted page forever (a `OnceLock` per page), so a long-lived
//! provider serving scattered queries would eventually pull the whole
//! snapshot into memory. A [`PageCache`] bounds residency: at most
//! `capacity` pages stay resident and the least-recently-used page is
//! dropped on overflow. Evicted pages are simply re-faulted (and
//! re-validated) on the next touch — correctness never depends on cache
//! contents.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many pages a paged structure keeps resident by default.
///
/// Snapshot pages are a few KiB each (128 digests / 256 entries), so
/// the default bounds a tree at roughly 4 MiB of faulted pages.
pub const DEFAULT_PAGE_CACHE_CAPACITY: usize = 1024;

/// Configuration for a [`PageCache`].
#[derive(Debug, Clone, Default)]
pub struct PageCacheCfg {
    /// Maximum resident pages; `0` means [`DEFAULT_PAGE_CACHE_CAPACITY`].
    pub capacity: usize,
    /// Shared eviction counter, bumped once per evicted page. The store
    /// layer aggregates these across every paged structure of a
    /// snapshot so callers can observe `evict_count` next to
    /// `fault_count`.
    pub evictions: Option<Arc<AtomicU64>>,
}

impl PageCacheCfg {
    /// A cache bounded at `capacity` pages with no eviction counter.
    pub fn with_capacity(capacity: usize) -> Self {
        PageCacheCfg {
            capacity,
            evictions: None,
        }
    }
}

struct Slot<T> {
    value: Arc<T>,
    stamp: u64,
}

struct Inner<T> {
    map: HashMap<u64, Slot<T>>,
    clock: u64,
}

/// A bounded LRU map from page key to resident page.
///
/// Recency is tracked with a monotonic stamp per slot; eviction scans
/// for the minimum stamp. The scan is O(capacity), which is fine here:
/// eviction only happens once the cache is full, and every insertion is
/// preceded by a backing-store fault that dwarfs the scan.
pub struct PageCache<T> {
    capacity: usize,
    evictions: Option<Arc<AtomicU64>>,
    inner: Mutex<Inner<T>>,
}

impl<T> std::fmt::Debug for PageCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.len())
            .finish()
    }
}

impl<T> PageCache<T> {
    /// Creates a cache from `cfg` (capacity `0` falls back to the
    /// default).
    pub fn new(cfg: PageCacheCfg) -> Self {
        let capacity = if cfg.capacity == 0 {
            DEFAULT_PAGE_CACHE_CAPACITY
        } else {
            cfg.capacity
        };
        PageCache {
            capacity,
            evictions: cfg.evictions,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
        }
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident pages.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("page cache poisoned").map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(&key).map(|slot| {
            slot.stamp = clock;
            Arc::clone(&slot.value)
        })
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// page if the cache is full. Returns the resident value: when two
    /// threads race to fault the same page, the first insertion wins
    /// and both observe it (the pages are identical — they came from
    /// the same validated backing store read).
    pub fn insert(&self, key: u64, value: Arc<T>) -> Arc<T> {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(slot) = inner.map.get_mut(&key) {
            slot.stamp = clock;
            return Arc::clone(&slot.value);
        }
        if inner.map.len() >= self.capacity {
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                if let Some(evictions) = &self.evictions {
                    evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        inner.map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                stamp: clock,
            },
        );
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(capacity: usize) -> (PageCache<u32>, Arc<AtomicU64>) {
        let evictions = Arc::new(AtomicU64::new(0));
        let cache = PageCache::new(PageCacheCfg {
            capacity,
            evictions: Some(Arc::clone(&evictions)),
        });
        (cache, evictions)
    }

    #[test]
    fn bounded_at_capacity() {
        let (cache, evictions) = counted(4);
        for k in 0..10u64 {
            cache.insert(k, Arc::new(k as u32));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(evictions.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn evicts_least_recently_used() {
        let (cache, _) = counted(2);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, Arc::new(3));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn racing_insert_keeps_first_value() {
        let (cache, _) = counted(4);
        let a = cache.insert(7, Arc::new(70));
        let b = cache.insert(7, Arc::new(71));
        assert_eq!(*a, 70);
        assert_eq!(*b, 70, "second insert observes the resident page");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_uses_default() {
        let cache: PageCache<u32> = PageCache::new(PageCacheCfg::default());
        assert_eq!(cache.capacity(), DEFAULT_PAGE_CACHE_CAPACITY);
    }
}
