//! Arbitrary-precision unsigned integers.
//!
//! A deliberately small big-integer implementation — just enough for
//! RSA key generation, signing and verification: addition, subtraction,
//! multiplication, division with remainder, modular exponentiation and
//! modular inverse. Limbs are `u32` stored little-endian; intermediate
//! products use `u64`.
//!
//! Not constant-time; see the crate-level security disclaimer.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u32` limbs,
/// normalized: no trailing zero limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0 (empty limb vector).
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(4);
            let mut limb = 0u32;
            for &b in &bytes[start..i] {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
            i = start;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let nz = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..nz);
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (false beyond the top bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self.cmp_to(other) != Ordering::Less, "BigUint underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        assert_eq!(borrow, 0, "BigUint underflow");
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Total ordering comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Shift-and-subtract long division — O(bit_len · limbs), plenty for
    /// RSA-sized operands.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_to(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut rem = self.clone();
        let mut quot_limbs = vec![0u32; shift / 32 + 1];
        let mut d = divisor.shl(shift);
        for s in (0..=shift).rev() {
            if rem.cmp_to(&d) != Ordering::Less {
                rem = rem.sub(&d);
                quot_limbs[s / 32] |= 1 << (s % 32);
            }
            d = d.shr(1);
        }
        let mut q = BigUint { limbs: quot_limbs };
        q.normalize();
        (q, rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular exponentiation `self^exp mod m` (square-and-multiply).
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus is zero");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
            base = base.mul(&base).rem(m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp_to(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse `self⁻¹ mod m`, or `None` if not coprime.
    ///
    /// Extended Euclid tracking only the `t` coefficient, with a sign
    /// flag to stay within unsigned arithmetic.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Invariant: t_cur * a ≡ r_cur (mod m)  (up to sign neg_cur)
        let mut r_prev = m.clone();
        let mut r_cur = a;
        let mut t_prev = BigUint::zero();
        let mut t_cur = BigUint::one();
        let mut neg_prev = false;
        let mut neg_cur = false;
        while !r_cur.is_zero() {
            let (q, r_next) = r_prev.div_rem(&r_cur);
            // t_next = t_prev - q * t_cur   (signed)
            let qt = q.mul(&t_cur);
            let (t_next, neg_next) = signed_sub(&t_prev, neg_prev, &qt, neg_cur);
            r_prev = r_cur;
            r_cur = r_next;
            t_prev = t_cur;
            t_cur = t_next;
            neg_prev = neg_cur;
            neg_cur = neg_next;
        }
        if !r_prev.is_one() {
            return None; // not coprime
        }
        let inv = if neg_prev {
            m.sub(&t_prev.rem(m))
        } else {
            t_prev.rem(m)
        };
        Some(inv.rem(m))
    }

    /// A uniformly random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        use rand::RngExt as _;
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.random()).collect();
        let top_bits = bits - (limbs_needed - 1) * 32;
        let mask = if top_bits == 32 {
            u32::MAX
        } else {
            (1u32 << top_bits) - 1
        };
        let top = limbs.last_mut().unwrap();
        *top &= mask;
        *top |= 1 << (top_bits - 1); // force exact bit length
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// A uniformly random integer in `[0, bound)` via rejection sampling.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        use rand::RngExt as _;
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.random()).collect();
            let top_bits = bits - (limbs_needed - 1) * 32;
            let mask = if top_bits == 32 {
                u32::MAX
            } else {
                (1u32 << top_bits) - 1
            };
            *limbs.last_mut().unwrap() &= mask;
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if candidate.cmp_to(bound) == Ordering::Less {
                return candidate;
            }
        }
    }
}

/// Computes `a·(-1)^neg_a - b·(-1)^neg_b` returning `(magnitude, sign)`.
fn signed_sub(a: &BigUint, neg_a: bool, b: &BigUint, neg_b: bool) -> (BigUint, bool) {
    match (neg_a, neg_b) {
        (false, true) => (a.add(b), false), //  a - (-b) = a + b
        (true, false) => (a.add(b), true),  // -a - b    = -(a + b)
        (false, false) => match a.cmp_to(b) {
            Ordering::Less => (b.sub(a), true),
            _ => (a.sub(b), false),
        },
        (true, true) => match b.cmp_to(a) {
            // -a + b
            Ordering::Less => (a.sub(b), true),
            _ => (b.sub(a), false),
        },
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "BigUint(0)");
        }
        write!(f, "BigUint(0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        write!(f, ")")
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn from_to_bytes_round_trip() {
        let cases: [&[u8]; 4] = [&[], &[1], &[0xde, 0xad, 0xbe, 0xef, 0x42], &[0xff; 17]];
        for bytes in cases {
            let n = BigUint::from_bytes_be(bytes);
            let back = n.to_bytes_be();
            // Leading zeros are stripped, so compare the numeric values.
            assert_eq!(BigUint::from_bytes_be(&back), n);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 0, 5]),
            BigUint::from_bytes_be(&[5])
        );
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(b(123).add(&b(877)), b(1000));
        assert_eq!(b(1000).sub(&b(877)), b(123));
        assert_eq!(b(0).add(&b(0)), b(0));
    }

    #[test]
    fn add_carries_across_limbs() {
        let x = b(u64::MAX);
        let one = b(1);
        let sum = x.add(&one);
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(sum.sub(&one), x);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = b(1).sub(&b(2));
    }

    #[test]
    fn mul_matches_u128() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let x: u64 = rng.random();
            let y: u64 = rng.random();
            let prod = (x as u128) * (y as u128);
            let expected = BigUint::from_bytes_be(&prod.to_be_bytes());
            assert_eq!(b(x).mul(&b(y)), expected);
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let x: u128 = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
            let y: u64 = rng.random_range(1..u64::MAX);
            let q = x / y as u128;
            let r = x % y as u128;
            let xb = BigUint::from_bytes_be(&x.to_be_bytes());
            let (qb, rb) = xb.div_rem(&b(y));
            assert_eq!(qb, BigUint::from_bytes_be(&q.to_be_bytes()));
            assert_eq!(rb, BigUint::from_bytes_be(&r.to_be_bytes()));
        }
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        let _ = b(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let x = b(0b1011);
        assert_eq!(x.shl(3), b(0b1011000));
        assert_eq!(x.shr(2), b(0b10));
        assert_eq!(x.shl(100).shr(100), x);
        assert_eq!(BigUint::zero().shl(64), BigUint::zero());
        assert_eq!(b(1).shr(1), BigUint::zero());
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(b(256).bit_len(), 9);
        let x = b(0b101);
        assert!(x.bit(0) && !x.bit(1) && x.bit(2) && !x.bit(3));
        assert!(!x.bit(1000));
    }

    #[test]
    fn modpow_small_cases() {
        // 3^5 mod 7 = 243 mod 7 = 5
        assert_eq!(b(3).modpow(&b(5), &b(7)), b(5));
        // Fermat: a^(p-1) ≡ 1 mod p
        let p = b(1_000_000_007);
        for a in [2u64, 3, 10, 999] {
            assert_eq!(b(a).modpow(&p.sub(&b(1)), &p), b(1));
        }
        // exponent 0
        assert_eq!(b(12345).modpow(&b(0), &b(97)), b(1));
        // modulus 1
        assert_eq!(b(5).modpow(&b(5), &b(1)), b(0));
    }

    #[test]
    fn modpow_large_random_consistency() {
        // (a^e1)^e2 == a^(e1*e2) mod m
        let mut rng = StdRng::seed_from_u64(9);
        let m = BigUint::random_bits(&mut rng, 128);
        let a = BigUint::random_bits(&mut rng, 100);
        let e1 = b(rng.random_range(2..1000));
        let e2 = b(rng.random_range(2..1000));
        let lhs = a.modpow(&e1, &m).modpow(&e2, &m);
        let rhs = a.modpow(&e1.mul(&e2), &m);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_small() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(31)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(48).gcd(&b(64)), b(16));
    }

    #[test]
    fn modinv_basic() {
        // 3 * 5 = 15 ≡ 1 mod 7
        assert_eq!(b(3).modinv(&b(7)), Some(b(5)));
        // No inverse when not coprime.
        assert_eq!(b(6).modinv(&b(9)), None);
        assert_eq!(b(0).modinv(&b(7)), None);
    }

    #[test]
    fn modinv_random_verification() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = b(1_000_000_007); // prime
        for _ in 0..100 {
            let a = b(rng.random_range(1..1_000_000_006));
            let inv = a.modinv(&m).expect("prime modulus ⇒ inverse exists");
            assert_eq!(a.mul(&inv).rem(&m), b(1));
        }
    }

    #[test]
    fn modinv_large() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = BigUint::random_bits(&mut rng, 256);
        for _ in 0..20 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() || !a.gcd(&m).is_one() {
                continue;
            }
            let inv = a.modinv(&m).unwrap();
            assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
        }
    }

    #[test]
    fn random_bits_exact_length() {
        let mut rng = StdRng::seed_from_u64(12);
        for bits in [1usize, 31, 32, 33, 64, 100, 257] {
            let n = BigUint::random_bits(&mut rng, bits);
            assert_eq!(n.bit_len(), bits);
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let bound = b(1000);
        for _ in 0..200 {
            let n = BigUint::random_below(&mut rng, &bound);
            assert!(n.cmp_to(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn mul_known_large_vector() {
        // (2^128 − 1)² = 2^256 − 2^129 + 1.
        let x = BigUint::from_bytes_be(&[0xFF; 16]);
        let sq = x.mul(&x);
        let expected = BigUint::one()
            .shl(256)
            .sub(&BigUint::one().shl(129))
            .add(&BigUint::one());
        assert_eq!(sq, expected);
    }

    #[test]
    fn div_rem_reconstructs_large_operands() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..25 {
            let a = BigUint::random_bits(&mut rng, 300);
            let b = BigUint::random_bits(&mut rng, 140);
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }

    #[test]
    fn ordering_impls() {
        assert!(b(3) < b(5));
        assert!(b(5) > b(3));
        assert!(b(u64::MAX).add(&b(1)) > b(u64::MAX));
    }
}
