//! Merkle hash tree with configurable fanout and multi-leaf proofs.
//!
//! Section III-B of the paper builds a Merkle tree over the ordered
//! extended-tuples of graph nodes, with an arbitrary fanout `f`
//! (Figure 3b uses `f = 3`; the fanout experiment of Figure 11a sweeps
//! `f ∈ {2,4,8,16,32}`). A proof for a *set* of leaves follows Merkle's
//! subtree rule: hash entry `hᵢ` is included iff
//!
//! 1. the subtree of `hᵢ` contains no proven leaf, and
//! 2. the subtree of `hᵢ`'s parent does.
//!
//! Verification reconstructs the root bottom-up from the proven leaf
//! digests plus the proof entries and compares it against the signed
//! root.

use crate::cache::{PageCache, PageCacheCfg};
use crate::digest::{hash_digests, Digest};
use crate::pager::DigestPager;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Errors raised while building or checking Merkle structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MerkleError {
    /// A tree must have at least one leaf.
    EmptyTree,
    /// Fanout must be at least 2.
    BadFanout(usize),
    /// A requested leaf index is out of range.
    LeafOutOfRange { index: usize, leaf_count: usize },
    /// Proof verification could not reconstruct the root because a
    /// digest for the given (level, index) slot was neither computable
    /// nor supplied.
    MissingDigest { level: usize, index: usize },
    /// A proof entry collides with a slot that is derivable from the
    /// proven leaves (a well-formed prover never emits this).
    RedundantEntry { level: usize, index: usize },
    /// Proof entry refers to a slot outside the tree shape.
    MalformedEntry { level: usize, index: usize },
    /// No leaves were supplied to verification.
    NoLeaves,
    /// A paged tree failed to fault in a page from its backing store.
    Page(String),
    /// Mutation was attempted on a paged (read-only) tree.
    ReadOnly,
}

impl std::fmt::Display for MerkleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MerkleError::EmptyTree => write!(f, "merkle tree must have at least one leaf"),
            MerkleError::BadFanout(n) => write!(f, "fanout {n} is invalid (must be ≥ 2)"),
            MerkleError::LeafOutOfRange { index, leaf_count } => {
                write!(
                    f,
                    "leaf index {index} out of range (leaf count {leaf_count})"
                )
            }
            MerkleError::MissingDigest { level, index } => {
                write!(
                    f,
                    "proof incomplete: missing digest at level {level}, index {index}"
                )
            }
            MerkleError::RedundantEntry { level, index } => {
                write!(
                    f,
                    "proof entry at level {level}, index {index} shadows a computed digest"
                )
            }
            MerkleError::MalformedEntry { level, index } => {
                write!(
                    f,
                    "proof entry at level {level}, index {index} is outside the tree"
                )
            }
            MerkleError::NoLeaves => write!(f, "verification requires at least one proven leaf"),
            MerkleError::Page(m) => write!(f, "paged tree fault failed: {m}"),
            MerkleError::ReadOnly => write!(f, "paged merkle tree is read-only"),
        }
    }
}

impl std::error::Error for MerkleError {}

/// One digest supplied by the prover, addressed by its tree position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofEntry {
    /// 0 = leaf level; increases towards the root.
    pub level: u32,
    /// Index within the level.
    pub index: u32,
    /// Digest stored at that slot.
    pub digest: Digest,
}

/// A multi-leaf Merkle proof.
///
/// Carries the tree geometry (leaf count + fanout) so that verification
/// is self-contained; the geometry itself is authenticated because the
/// owner signs `H(root ∘ meta)` where meta encodes the same values
/// (done one layer up, in `spnet-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Sibling/cover digests per Merkle's rule.
    pub entries: Vec<ProofEntry>,
    /// Total number of leaves in the tree.
    pub leaf_count: u32,
    /// Tree fanout.
    pub fanout: u32,
}

impl MerkleProof {
    /// Number of digests in the proof — the paper's "number of items in
    /// ΓT" metric counts these.
    pub fn num_items(&self) -> usize {
        self.entries.len()
    }

    /// Serialized size in bytes: each entry is a (level, index, digest)
    /// triple, plus the 8-byte geometry header.
    pub fn size_bytes(&self) -> usize {
        8 + self.entries.len() * (4 + 4 + 32)
    }

    /// Reconstructs the root digest from proven `(leaf_index, digest)`
    /// pairs plus this proof's entries.
    ///
    /// Fails if any required digest is missing or the proof is
    /// malformed. The caller compares the returned root against the
    /// owner-signed root.
    pub fn reconstruct_root(&self, leaves: &[(usize, Digest)]) -> Result<Digest, MerkleError> {
        if leaves.is_empty() {
            return Err(MerkleError::NoLeaves);
        }
        let fanout = self.fanout as usize;
        if fanout < 2 {
            return Err(MerkleError::BadFanout(fanout));
        }
        let leaf_count = self.leaf_count as usize;
        let sizes = level_sizes(leaf_count, fanout);

        // Proof entries per level as index-sorted vectors (binary-search
        // lookups; no tree maps). A duplicate entry at one slot keeps
        // the last occurrence, matching the former map insert.
        let mut entry_levels: Vec<Vec<(usize, Digest)>> = vec![Vec::new(); sizes.len()];
        for e in &self.entries {
            let (lvl, idx) = (e.level as usize, e.index as usize);
            if lvl >= sizes.len() || idx >= sizes[lvl] {
                return Err(MerkleError::MalformedEntry {
                    level: lvl,
                    index: idx,
                });
            }
            entry_levels[lvl].push((idx, e.digest));
        }
        for lvl in &mut entry_levels {
            // Stable sort keeps insertion order within one index; the
            // trailing occurrence wins below.
            lvl.sort_by_key(|&(idx, _)| idx);
        }
        let lookup = |lvl: &[(usize, Digest)], idx: usize| -> Option<Digest> {
            // Rightmost match (duplicates keep the last inserted).
            match lvl.partition_point(|&(i, _)| i <= idx) {
                0 => None,
                p if lvl[p - 1].0 == idx => Some(lvl[p - 1].1),
                _ => None,
            }
        };

        // The frontier: slots derivable from proven leaves, sorted by
        // index. A proof entry in a derivable slot is a prover error
        // (it could mask a missing tuple), so reject it.
        let mut frontier: Vec<(usize, Digest)> = Vec::with_capacity(leaves.len());
        for &(idx, digest) in leaves {
            if idx >= leaf_count {
                return Err(MerkleError::LeafOutOfRange {
                    index: idx,
                    leaf_count,
                });
            }
            if lookup(&entry_levels[0], idx).is_some() {
                return Err(MerkleError::RedundantEntry {
                    level: 0,
                    index: idx,
                });
            }
            frontier.push((idx, digest));
        }
        frontier.sort_by_key(|&(idx, _)| idx);
        if let Some(w) = frontier.windows(2).find(|w| w[0].0 == w[1].0) {
            // Two proven digests for one slot — same class of error as
            // an entry shadowing a proven leaf.
            return Err(MerkleError::RedundantEntry {
                level: 0,
                index: w[0].0,
            });
        }

        // Bottom-up: compute every parent that covers a proven leaf.
        // The frontier stays sorted, so each parent's children are a
        // contiguous run consumed by one forward pass. `fanout` is
        // wire-controlled, so cap the pre-allocation by the widest
        // level instead of trusting it (a corrupt proof must fail
        // verification, not abort on an absurd allocation).
        let mut children: Vec<Digest> = Vec::with_capacity(fanout.min(sizes[0]));
        for lvl in 0..sizes.len() - 1 {
            let mut next: Vec<(usize, Digest)> = Vec::with_capacity(frontier.len());
            let mut i = 0usize;
            while i < frontier.len() {
                let p = frontier[i].0 / fanout;
                if lookup(&entry_levels[lvl + 1], p).is_some() {
                    return Err(MerkleError::RedundantEntry {
                        level: lvl + 1,
                        index: p,
                    });
                }
                let first = p * fanout;
                let last = (first + fanout).min(sizes[lvl]);
                children.clear();
                for c in first..last {
                    if i < frontier.len() && frontier[i].0 == c {
                        children.push(frontier[i].1);
                        i += 1;
                    } else if let Some(d) = lookup(&entry_levels[lvl], c) {
                        children.push(d);
                    } else {
                        return Err(MerkleError::MissingDigest {
                            level: lvl,
                            index: c,
                        });
                    }
                }
                next.push((p, hash_digests(&children)));
            }
            frontier = next;
        }

        match frontier.first() {
            Some(&(0, root)) => Ok(root),
            _ => Err(MerkleError::MissingDigest {
                level: sizes.len() - 1,
                index: 0,
            }),
        }
    }
}

/// Sizes of each level, leaf level first, ending with the root level of
/// size 1. A single-leaf tree has one level.
fn level_sizes(leaf_count: usize, fanout: usize) -> Vec<usize> {
    let mut sizes = vec![leaf_count];
    let mut s = leaf_count;
    while s > 1 {
        s = s.div_ceil(fanout);
        sizes.push(s);
    }
    sizes
}

/// Lazily paged tree levels: digests resolve on demand from a
/// [`DigestPager`], merk-`Link` style — a page is either resident (in
/// the bounded LRU [`PageCache`]) or a stub to be faulted from the
/// backing store. The root is loaded eagerly at open so `root()` stays
/// infallible.
#[derive(Debug, Clone)]
struct PagedLevels {
    pager: Arc<dyn DigestPager>,
    /// Logical size of each level, leaf level first.
    sizes: Vec<usize>,
    /// Digests per page (all levels; last page of a level may be short).
    page_digests: usize,
    /// Resident pages keyed by `(level << 32) | page`, shared across
    /// clones so every handle sees the same residency bound.
    cache: Arc<PageCache<Vec<Digest>>>,
    root: Digest,
}

impl PagedLevels {
    fn page(&self, level: usize, page: usize) -> Result<Arc<Vec<Digest>>, MerkleError> {
        let key = ((level as u64) << 32) | page as u64;
        if let Some(run) = self.cache.get(key) {
            return Ok(run);
        }
        if page >= self.sizes[level].div_ceil(self.page_digests) {
            return Err(MerkleError::Page(format!(
                "level {level} page {page} outside the tree shape"
            )));
        }
        let run = self
            .pager
            .load_page(level as u32, page as u32)
            .map_err(|e| MerkleError::Page(e.to_string()))?;
        let expected = page_len(self.sizes[level], self.page_digests, page);
        if run.len() != expected {
            return Err(MerkleError::Page(format!(
                "level {level} page {page}: expected {expected} digests, got {}",
                run.len()
            )));
        }
        // A concurrent fault may have won the race; either value is the
        // same verified page, so keep whichever landed first.
        Ok(self.cache.insert(key, Arc::new(run)))
    }

    fn digest_at(&self, level: usize, index: usize) -> Result<Digest, MerkleError> {
        let run = self.page(level, index / self.page_digests)?;
        Ok(run[index % self.page_digests])
    }
}

/// Number of digests in `page` of a level holding `size` digests.
fn page_len(size: usize, page_digests: usize, page: usize) -> usize {
    (size - page * page_digests).min(page_digests)
}

/// Physical representation of the tree levels.
#[derive(Debug, Clone)]
enum Repr {
    /// Every level materialized in memory (the historical layout).
    Dense(Vec<Vec<Digest>>),
    /// Levels faulted in page-by-page from a backing store.
    Paged(PagedLevels),
}

/// A Merkle hash tree with configurable fanout.
///
/// Built trees ([`MerkleTree::build`]) store every level densely so
/// multi-leaf proofs are O(result) to assemble. Trees opened over a
/// snapshot ([`MerkleTree::open_paged`]) keep only the pages a proof
/// path has touched; they are read-only and hash-identical to the
/// dense tree they were saved from.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    fanout: usize,
    repr: Repr,
}

impl MerkleTree {
    /// Builds a tree over `leaves` with the given `fanout`.
    pub fn build(leaves: Vec<Digest>, fanout: usize) -> Result<Self, MerkleError> {
        if leaves.is_empty() {
            return Err(MerkleError::EmptyTree);
        }
        if fanout < 2 {
            return Err(MerkleError::BadFanout(fanout));
        }
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(fanout));
            for chunk in prev.chunks(fanout) {
                next.push(hash_digests(chunk));
            }
            levels.push(next);
        }
        Ok(MerkleTree {
            fanout,
            repr: Repr::Dense(levels),
        })
    }

    /// Opens a read-only tree whose levels live in a paged backing
    /// store, with the default residency bound. Only the root page is
    /// faulted eagerly; `prove` faults the pages its proof paths touch.
    pub fn open_paged(
        pager: Arc<dyn DigestPager>,
        leaf_count: usize,
        fanout: usize,
        page_digests: usize,
    ) -> Result<Self, MerkleError> {
        Self::open_paged_with_cache(
            pager,
            leaf_count,
            fanout,
            page_digests,
            PageCacheCfg::default(),
        )
    }

    /// [`MerkleTree::open_paged`] with an explicit page-cache bound and
    /// optional shared eviction counter.
    pub fn open_paged_with_cache(
        pager: Arc<dyn DigestPager>,
        leaf_count: usize,
        fanout: usize,
        page_digests: usize,
        cache_cfg: PageCacheCfg,
    ) -> Result<Self, MerkleError> {
        if leaf_count == 0 {
            return Err(MerkleError::EmptyTree);
        }
        if fanout < 2 {
            return Err(MerkleError::BadFanout(fanout));
        }
        if page_digests == 0 {
            return Err(MerkleError::Page("page_digests must be ≥ 1".into()));
        }
        let sizes = level_sizes(leaf_count, fanout);
        let mut paged = PagedLevels {
            pager,
            sizes,
            page_digests,
            cache: Arc::new(PageCache::new(cache_cfg)),
            root: Digest::ZERO,
        };
        paged.root = paged.digest_at(paged.sizes.len() - 1, 0)?;
        Ok(MerkleTree {
            fanout,
            repr: Repr::Paged(paged),
        })
    }

    /// The signed root digest.
    pub fn root(&self) -> Digest {
        match &self.repr {
            Repr::Dense(levels) => *levels.last().unwrap().first().unwrap(),
            Repr::Paged(p) => p.root,
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match &self.repr {
            Repr::Dense(levels) => levels[0].len(),
            Repr::Paged(p) => p.sizes[0],
        }
    }

    /// Tree fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in levels (1 for a single leaf).
    pub fn height(&self) -> usize {
        match &self.repr {
            Repr::Dense(levels) => levels.len(),
            Repr::Paged(p) => p.sizes.len(),
        }
    }

    /// Whether this tree resolves digests lazily from a backing store.
    pub fn is_paged(&self) -> bool {
        matches!(self.repr, Repr::Paged(_))
    }

    /// The dense level arrays, leaf level first — present only for
    /// built trees. Snapshot writers use this to serialize levels.
    pub fn dense_levels(&self) -> Option<&[Vec<Digest>]> {
        match &self.repr {
            Repr::Dense(levels) => Some(levels),
            Repr::Paged(_) => None,
        }
    }

    /// Digest of leaf `i`.
    ///
    /// On a paged tree this faults in the leaf's page; a fault failure
    /// reports as `None`, same as out-of-range.
    pub fn leaf(&self, i: usize) -> Option<Digest> {
        match &self.repr {
            Repr::Dense(levels) => levels[0].get(i).copied(),
            Repr::Paged(p) => {
                if i >= p.sizes[0] {
                    None
                } else {
                    p.digest_at(0, i).ok()
                }
            }
        }
    }

    /// Total number of digests in the tree (logical count for paged
    /// trees) — the ADS storage-overhead metric.
    pub fn total_digests(&self) -> usize {
        match &self.repr {
            Repr::Dense(levels) => levels.iter().map(Vec::len).sum(),
            Repr::Paged(p) => p.sizes.iter().sum(),
        }
    }

    /// Size of level `lvl` in digests.
    fn level_len(&self, lvl: usize) -> usize {
        match &self.repr {
            Repr::Dense(levels) => levels[lvl].len(),
            Repr::Paged(p) => p.sizes[lvl],
        }
    }

    /// Digest stored at `(level, index)`; faults the containing page on
    /// a paged tree. Callers stay in-shape, so out-of-range indexing on
    /// a dense tree panics like a slice.
    fn digest_at(&self, level: usize, index: usize) -> Result<Digest, MerkleError> {
        match &self.repr {
            Repr::Dense(levels) => Ok(levels[level][index]),
            Repr::Paged(p) => p.digest_at(level, index),
        }
    }

    /// Replaces the digest of leaf `i` and recomputes the O(log n) path
    /// to the root — the incremental-update primitive for dynamic
    /// networks (an edge-weight change touches two leaves).
    ///
    /// Paged trees are read-only snapshots: this returns
    /// [`MerkleError::ReadOnly`] for them.
    pub fn update_leaf(&mut self, i: usize, digest: Digest) -> Result<(), MerkleError> {
        let fanout = self.fanout;
        let levels = match &mut self.repr {
            Repr::Dense(levels) => levels,
            Repr::Paged(_) => return Err(MerkleError::ReadOnly),
        };
        let n = levels[0].len();
        if i >= n {
            return Err(MerkleError::LeafOutOfRange {
                index: i,
                leaf_count: n,
            });
        }
        levels[0][i] = digest;
        let mut idx = i;
        for lvl in 0..levels.len() - 1 {
            let parent = idx / fanout;
            let first = parent * fanout;
            let last = (first + fanout).min(levels[lvl].len());
            let combined = hash_digests(&levels[lvl][first..last]);
            levels[lvl + 1][parent] = combined;
            idx = parent;
        }
        Ok(())
    }

    /// Builds the proof for a set of leaf indices per Merkle's rule.
    ///
    /// One sorted-vector sweep per level: the covered set stays sorted,
    /// so each parent's covered children form a contiguous run and the
    /// uncovered siblings are emitted in index order without set
    /// membership queries. On a paged tree only the pages holding
    /// emitted sibling digests are faulted in.
    pub fn prove(&self, leaf_indices: BTreeSet<usize>) -> Result<MerkleProof, MerkleError> {
        let leaf_count = self.leaf_count();
        if leaf_indices.is_empty() {
            return Err(MerkleError::NoLeaves);
        }
        // Already sorted and distinct, by BTreeSet construction.
        let mut covered: Vec<usize> = leaf_indices.into_iter().collect();
        if let Some(&max) = covered.last() {
            if max >= leaf_count {
                return Err(MerkleError::LeafOutOfRange {
                    index: max,
                    leaf_count,
                });
            }
        }
        let mut entries = Vec::new();
        for lvl in 0..self.height() - 1 {
            let level_size = self.level_len(lvl);
            let mut parents: Vec<usize> = Vec::with_capacity(covered.len());
            let mut i = 0usize;
            while i < covered.len() {
                let p = covered[i] / self.fanout;
                let first = p * self.fanout;
                let last = (first + self.fanout).min(level_size);
                // Supply digests of the parent's uncovered children
                // (rule: subtree has no proven leaf, parent's does).
                for c in first..last {
                    if i < covered.len() && covered[i] == c {
                        i += 1;
                    } else {
                        entries.push(ProofEntry {
                            level: lvl as u32,
                            index: c as u32,
                            digest: self.digest_at(lvl, c)?,
                        });
                    }
                }
                parents.push(p);
            }
            covered = parents;
        }
        Ok(MerkleProof {
            entries,
            leaf_count: leaf_count as u32,
            fanout: self.fanout as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hash_bytes;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| hash_bytes(&(i as u64).to_le_bytes()))
            .collect()
    }

    fn check_round_trip(n: usize, fanout: usize, proven: &[usize]) {
        let ls = leaves(n);
        let tree = MerkleTree::build(ls.clone(), fanout).unwrap();
        let set: BTreeSet<usize> = proven.iter().copied().collect();
        let proof = tree.prove(set.clone()).unwrap();
        let pairs: Vec<(usize, Digest)> = set.iter().map(|&i| (i, ls[i])).collect();
        let root = proof.reconstruct_root(&pairs).unwrap();
        assert_eq!(root, tree.root(), "n={n} f={fanout} proven={proven:?}");
    }

    #[test]
    fn single_leaf_tree() {
        let ls = leaves(1);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        assert_eq!(tree.root(), ls[0]);
        assert_eq!(tree.height(), 1);
        check_round_trip(1, 2, &[0]);
    }

    #[test]
    fn empty_tree_rejected() {
        assert!(matches!(
            MerkleTree::build(vec![], 2),
            Err(MerkleError::EmptyTree)
        ));
    }

    #[test]
    fn bad_fanout_rejected() {
        assert!(matches!(
            MerkleTree::build(leaves(4), 1),
            Err(MerkleError::BadFanout(1))
        ));
        assert!(matches!(
            MerkleTree::build(leaves(4), 0),
            Err(MerkleError::BadFanout(0))
        ));
    }

    #[test]
    fn binary_tree_manual_root() {
        // 4 leaves, fanout 2: root = H(H(l0∘l1) ∘ H(l2∘l3))
        let ls = leaves(4);
        let h01 = crate::digest::hash_concat(&[ls[0], ls[1]]);
        let h23 = crate::digest::hash_concat(&[ls[2], ls[3]]);
        let expected = crate::digest::hash_concat(&[h01, h23]);
        let tree = MerkleTree::build(ls, 2).unwrap();
        assert_eq!(tree.root(), expected);
    }

    #[test]
    fn paper_figure3_shape_fanout3() {
        // Figure 3b: 36 leaves, fanout 3 → levels 36, 12, 4, 2, 1.
        let tree = MerkleTree::build(leaves(36), 3).unwrap();
        let sizes: Vec<usize> = tree.dense_levels().unwrap().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![36, 12, 4, 2, 1]);
    }

    #[test]
    fn irregular_last_chunk() {
        // 5 leaves, fanout 3 → last parent has 2 children; last level of
        // size 2 hashes into a root of a 2-ary node.
        check_round_trip(5, 3, &[4]);
        check_round_trip(5, 3, &[0, 4]);
        check_round_trip(7, 4, &[6]);
    }

    #[test]
    fn round_trips_various_shapes() {
        for &(n, f) in &[
            (2usize, 2usize),
            (3, 2),
            (8, 2),
            (9, 2),
            (10, 3),
            (36, 3),
            (100, 16),
            (33, 32),
            (64, 32),
        ] {
            check_round_trip(n, f, &[0]);
            check_round_trip(n, f, &[n - 1]);
            check_round_trip(n, f, &[n / 2]);
            let all: Vec<usize> = (0..n).collect();
            check_round_trip(n, f, &all);
        }
    }

    #[test]
    fn contiguous_range_proof_smaller_than_scattered() {
        // Locality matters: a contiguous leaf range shares covers.
        let tree = MerkleTree::build(leaves(256), 2).unwrap();
        let contiguous: BTreeSet<usize> = (100..116).collect();
        let scattered: BTreeSet<usize> = (0..16).map(|i| i * 16).collect();
        let p1 = tree.prove(contiguous).unwrap();
        let p2 = tree.prove(scattered).unwrap();
        assert!(
            p1.num_items() < p2.num_items(),
            "contiguous {} vs scattered {}",
            p1.num_items(),
            p2.num_items()
        );
    }

    #[test]
    fn higher_fanout_more_proof_items() {
        // Figure 11a: proof size grows with fanout for a fixed leaf set.
        let ls = leaves(1024);
        let proven: BTreeSet<usize> = (500..510).collect();
        let mut last = 0usize;
        for f in [2usize, 4, 8, 16, 32] {
            let tree = MerkleTree::build(ls.clone(), f).unwrap();
            let p = tree.prove(proven.clone()).unwrap();
            assert!(p.num_items() >= last, "fanout {f}");
            last = p.num_items();
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_digest() {
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let proof = tree.prove([3usize].into_iter().collect()).unwrap();
        let tampered = hash_bytes(b"evil");
        let root = proof.reconstruct_root(&[(3, tampered)]).unwrap();
        assert_ne!(root, tree.root());
    }

    #[test]
    fn proof_rejects_moved_leaf() {
        // Same digest claimed at a different position must change root.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let proof = tree.prove([3usize].into_iter().collect()).unwrap();
        // Structurally invalid is fine too; a reconstructed root must
        // differ.
        if let Ok(root) = proof.reconstruct_root(&[(4, ls[3])]) {
            assert_ne!(root, tree.root());
        }
    }

    #[test]
    fn missing_proof_entry_detected() {
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([3usize].into_iter().collect()).unwrap();
        proof.entries.pop();
        let err = proof.reconstruct_root(&[(3, ls[3])]).unwrap_err();
        assert!(matches!(err, MerkleError::MissingDigest { .. }));
    }

    #[test]
    fn dropped_tuple_attack_detected() {
        // Section IV-A: a malicious provider removes a tuple from ΓS and
        // adds its digest to ΓT instead. The redundant-entry check
        // catches the other direction; here, verifying with the reduced
        // leaf set against the *original* proof must fail or mismatch.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let full: BTreeSet<usize> = [3usize, 4].into_iter().collect();
        let proof_full = tree.prove(full).unwrap();
        // Client got only leaf 3 but the proof was built for {3,4}.
        let res = proof_full.reconstruct_root(&[(3, ls[3])]);
        assert!(res.is_err(), "missing leaf must be detected");
    }

    #[test]
    fn redundant_entry_rejected() {
        // A proof entry that shadows a proven leaf slot is rejected —
        // otherwise a provider could substitute digests for tuples.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([3usize].into_iter().collect()).unwrap();
        proof.entries.push(ProofEntry {
            level: 0,
            index: 3,
            digest: ls[3],
        });
        let err = proof.reconstruct_root(&[(3, ls[3])]).unwrap_err();
        assert!(matches!(err, MerkleError::RedundantEntry { .. }));
    }

    #[test]
    fn malformed_entry_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([0usize].into_iter().collect()).unwrap();
        proof.entries.push(ProofEntry {
            level: 9,
            index: 0,
            digest: ls[0],
        });
        let err = proof.reconstruct_root(&[(0, ls[0])]).unwrap_err();
        assert!(matches!(err, MerkleError::MalformedEntry { .. }));
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.prove([8usize].into_iter().collect()),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
        let proof = tree.prove([0usize].into_iter().collect()).unwrap();
        assert!(matches!(
            proof.reconstruct_root(&[(8, hash_bytes(b"x"))]),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_index_set_rejected() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.prove(BTreeSet::new()),
            Err(MerkleError::NoLeaves)
        ));
    }

    #[test]
    fn proof_size_accounting() {
        let tree = MerkleTree::build(leaves(64), 2).unwrap();
        let p = tree.prove([0usize].into_iter().collect()).unwrap();
        // 64 leaves, fanout 2 → 6 sibling digests.
        assert_eq!(p.num_items(), 6);
        assert_eq!(p.size_bytes(), 8 + 6 * 40);
    }

    #[test]
    fn update_leaf_matches_rebuild() {
        for (n, f) in [(1usize, 2usize), (5, 3), (64, 2), (100, 16)] {
            let mut ls = leaves(n);
            let mut tree = MerkleTree::build(ls.clone(), f).unwrap();
            for touch in [0usize, n / 2, n - 1] {
                ls[touch] = hash_bytes(format!("new-{touch}").as_bytes());
                tree.update_leaf(touch, ls[touch]).unwrap();
                let rebuilt = MerkleTree::build(ls.clone(), f).unwrap();
                assert_eq!(tree.root(), rebuilt.root(), "n={n} f={f} touch={touch}");
            }
        }
    }

    #[test]
    fn update_leaf_out_of_range() {
        let mut tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.update_leaf(8, hash_bytes(b"x")),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn proofs_after_update_verify_against_new_root() {
        let mut ls = leaves(32);
        let mut tree = MerkleTree::build(ls.clone(), 2).unwrap();
        ls[7] = hash_bytes(b"updated");
        tree.update_leaf(7, ls[7]).unwrap();
        let proof = tree.prove([7usize].into_iter().collect()).unwrap();
        assert_eq!(proof.reconstruct_root(&[(7, ls[7])]).unwrap(), tree.root());
    }

    #[test]
    fn total_digests_counts_all_levels() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert_eq!(tree.total_digests(), 8 + 4 + 2 + 1);
    }

    /// Test pager over a dense tree's levels, with a fault counter.
    #[derive(Debug)]
    struct VecPager {
        levels: Vec<Vec<Digest>>,
        page_digests: usize,
        faults: std::sync::atomic::AtomicU64,
    }

    impl VecPager {
        fn new(tree: &MerkleTree, page_digests: usize) -> Self {
            VecPager {
                levels: tree.dense_levels().unwrap().to_vec(),
                page_digests,
                faults: std::sync::atomic::AtomicU64::new(0),
            }
        }
    }

    impl DigestPager for VecPager {
        fn load_page(&self, level: u32, page: u32) -> Result<Vec<Digest>, crate::pager::PageError> {
            let lvl = self
                .levels
                .get(level as usize)
                .ok_or(crate::pager::PageError::OutOfRange { level, page })?;
            let start = page as usize * self.page_digests;
            if start >= lvl.len() {
                return Err(crate::pager::PageError::OutOfRange { level, page });
            }
            self.faults
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let end = (start + self.page_digests).min(lvl.len());
            Ok(lvl[start..end].to_vec())
        }
    }

    #[test]
    fn paged_tree_matches_dense_proofs() {
        for &(n, f, pd) in &[
            (36usize, 3usize, 4usize),
            (100, 16, 8),
            (64, 2, 128),
            (1, 2, 4),
        ] {
            let ls = leaves(n);
            let dense = MerkleTree::build(ls.clone(), f).unwrap();
            let pager = Arc::new(VecPager::new(&dense, pd));
            let paged = MerkleTree::open_paged(pager, n, f, pd).unwrap();
            assert!(paged.is_paged());
            assert_eq!(paged.root(), dense.root());
            assert_eq!(paged.height(), dense.height());
            assert_eq!(paged.leaf_count(), dense.leaf_count());
            assert_eq!(paged.total_digests(), dense.total_digests());
            for proven in [vec![0usize], vec![n - 1], vec![0, n / 2, n - 1]] {
                let set: BTreeSet<usize> = proven.iter().copied().collect();
                let a = dense.prove(set.clone()).unwrap();
                let b = paged.prove(set).unwrap();
                assert_eq!(a, b, "n={n} f={f} pd={pd} proven={proven:?}");
            }
            assert_eq!(paged.leaf(0), dense.leaf(0));
            assert_eq!(paged.leaf(n), None);
        }
    }

    #[test]
    fn paged_tree_faults_only_touched_pages() {
        // 256 leaves, fanout 2, 8-digest pages: one single-leaf proof
        // must not fault every leaf page.
        let ls = leaves(256);
        let dense = MerkleTree::build(ls, 2).unwrap();
        let pager = Arc::new(VecPager::new(&dense, 8));
        let paged =
            MerkleTree::open_paged(Arc::clone(&pager) as Arc<dyn DigestPager>, 256, 2, 8).unwrap();
        let after_open = pager.faults.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(after_open, 1, "open faults only the root page");
        paged.prove([3usize].into_iter().collect()).unwrap();
        let after_prove = pager.faults.load(std::sync::atomic::Ordering::Relaxed);
        let total_pages: usize = dense
            .dense_levels()
            .unwrap()
            .iter()
            .map(|l| l.len().div_ceil(8))
            .sum();
        assert!(
            ((after_prove - after_open) as usize) < total_pages / 2,
            "proof faulted {} of {} pages",
            after_prove - after_open,
            total_pages
        );
        // Re-proving the same leaf hits the cache: no new faults.
        paged.prove([3usize].into_iter().collect()).unwrap();
        assert_eq!(
            pager.faults.load(std::sync::atomic::Ordering::Relaxed),
            after_prove
        );
    }

    #[test]
    fn paged_tree_cache_is_bounded() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ls = leaves(256);
        let dense = MerkleTree::build(ls, 2).unwrap();
        let pager = Arc::new(VecPager::new(&dense, 4));
        let evictions = Arc::new(AtomicU64::new(0));
        let paged = MerkleTree::open_paged_with_cache(
            Arc::clone(&pager) as Arc<dyn DigestPager>,
            256,
            2,
            4,
            crate::cache::PageCacheCfg {
                capacity: 8,
                evictions: Some(Arc::clone(&evictions)),
            },
        )
        .unwrap();
        // Sweep every leaf page — far more pages than the bound.
        for i in 0..256 {
            assert!(paged.leaf(i).is_some());
        }
        let faults = pager.faults.load(Ordering::Relaxed);
        let evicted = evictions.load(Ordering::Relaxed);
        assert!(evicted > 0, "sweep must overflow an 8-page cache");
        assert!(
            faults - evicted <= 8,
            "resident pages {} exceed the bound",
            faults - evicted
        );
        // Evicted pages re-fault transparently: proofs still match the
        // dense tree.
        let set: BTreeSet<usize> = [0usize, 255].into_iter().collect();
        assert_eq!(paged.prove(set.clone()).unwrap(), dense.prove(set).unwrap());
    }

    #[test]
    fn paged_tree_is_read_only() {
        let dense = MerkleTree::build(leaves(16), 2).unwrap();
        let pager = Arc::new(VecPager::new(&dense, 4));
        let mut paged = MerkleTree::open_paged(pager, 16, 2, 4).unwrap();
        assert!(matches!(
            paged.update_leaf(0, hash_bytes(b"x")),
            Err(MerkleError::ReadOnly)
        ));
    }

    #[test]
    fn paged_tree_rejects_short_page() {
        /// Pager that truncates every page to one digest.
        #[derive(Debug)]
        struct Truncating(VecPager);
        impl DigestPager for Truncating {
            fn load_page(
                &self,
                level: u32,
                page: u32,
            ) -> Result<Vec<Digest>, crate::pager::PageError> {
                let mut run = self.0.load_page(level, page)?;
                run.truncate(1);
                Ok(run)
            }
        }
        let dense = MerkleTree::build(leaves(16), 2).unwrap();
        let pager = Arc::new(Truncating(VecPager::new(&dense, 4)));
        // The root page (size 1) passes, so open succeeds; the first
        // leaf-page fault then reports the short page.
        let paged = MerkleTree::open_paged(pager, 16, 2, 4).unwrap();
        let err = paged.prove([0usize].into_iter().collect()).unwrap_err();
        assert!(matches!(err, MerkleError::Page(_)), "{err:?}");
    }
}
