//! Merkle hash tree with configurable fanout and multi-leaf proofs.
//!
//! Section III-B of the paper builds a Merkle tree over the ordered
//! extended-tuples of graph nodes, with an arbitrary fanout `f`
//! (Figure 3b uses `f = 3`; the fanout experiment of Figure 11a sweeps
//! `f ∈ {2,4,8,16,32}`). A proof for a *set* of leaves follows Merkle's
//! subtree rule: hash entry `hᵢ` is included iff
//!
//! 1. the subtree of `hᵢ` contains no proven leaf, and
//! 2. the subtree of `hᵢ`'s parent does.
//!
//! Verification reconstructs the root bottom-up from the proven leaf
//! digests plus the proof entries and compares it against the signed
//! root.

use crate::digest::{hash_digests, Digest};
use std::collections::BTreeSet;

/// Errors raised while building or checking Merkle structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MerkleError {
    /// A tree must have at least one leaf.
    EmptyTree,
    /// Fanout must be at least 2.
    BadFanout(usize),
    /// A requested leaf index is out of range.
    LeafOutOfRange { index: usize, leaf_count: usize },
    /// Proof verification could not reconstruct the root because a
    /// digest for the given (level, index) slot was neither computable
    /// nor supplied.
    MissingDigest { level: usize, index: usize },
    /// A proof entry collides with a slot that is derivable from the
    /// proven leaves (a well-formed prover never emits this).
    RedundantEntry { level: usize, index: usize },
    /// Proof entry refers to a slot outside the tree shape.
    MalformedEntry { level: usize, index: usize },
    /// No leaves were supplied to verification.
    NoLeaves,
}

impl std::fmt::Display for MerkleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MerkleError::EmptyTree => write!(f, "merkle tree must have at least one leaf"),
            MerkleError::BadFanout(n) => write!(f, "fanout {n} is invalid (must be ≥ 2)"),
            MerkleError::LeafOutOfRange { index, leaf_count } => {
                write!(
                    f,
                    "leaf index {index} out of range (leaf count {leaf_count})"
                )
            }
            MerkleError::MissingDigest { level, index } => {
                write!(
                    f,
                    "proof incomplete: missing digest at level {level}, index {index}"
                )
            }
            MerkleError::RedundantEntry { level, index } => {
                write!(
                    f,
                    "proof entry at level {level}, index {index} shadows a computed digest"
                )
            }
            MerkleError::MalformedEntry { level, index } => {
                write!(
                    f,
                    "proof entry at level {level}, index {index} is outside the tree"
                )
            }
            MerkleError::NoLeaves => write!(f, "verification requires at least one proven leaf"),
        }
    }
}

impl std::error::Error for MerkleError {}

/// One digest supplied by the prover, addressed by its tree position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofEntry {
    /// 0 = leaf level; increases towards the root.
    pub level: u32,
    /// Index within the level.
    pub index: u32,
    /// Digest stored at that slot.
    pub digest: Digest,
}

/// A multi-leaf Merkle proof.
///
/// Carries the tree geometry (leaf count + fanout) so that verification
/// is self-contained; the geometry itself is authenticated because the
/// owner signs `H(root ∘ meta)` where meta encodes the same values
/// (done one layer up, in `spnet-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Sibling/cover digests per Merkle's rule.
    pub entries: Vec<ProofEntry>,
    /// Total number of leaves in the tree.
    pub leaf_count: u32,
    /// Tree fanout.
    pub fanout: u32,
}

impl MerkleProof {
    /// Number of digests in the proof — the paper's "number of items in
    /// ΓT" metric counts these.
    pub fn num_items(&self) -> usize {
        self.entries.len()
    }

    /// Serialized size in bytes: each entry is a (level, index, digest)
    /// triple, plus the 8-byte geometry header.
    pub fn size_bytes(&self) -> usize {
        8 + self.entries.len() * (4 + 4 + 32)
    }

    /// Reconstructs the root digest from proven `(leaf_index, digest)`
    /// pairs plus this proof's entries.
    ///
    /// Fails if any required digest is missing or the proof is
    /// malformed. The caller compares the returned root against the
    /// owner-signed root.
    pub fn reconstruct_root(&self, leaves: &[(usize, Digest)]) -> Result<Digest, MerkleError> {
        if leaves.is_empty() {
            return Err(MerkleError::NoLeaves);
        }
        let fanout = self.fanout as usize;
        if fanout < 2 {
            return Err(MerkleError::BadFanout(fanout));
        }
        let leaf_count = self.leaf_count as usize;
        let sizes = level_sizes(leaf_count, fanout);

        // Proof entries per level as index-sorted vectors (binary-search
        // lookups; no tree maps). A duplicate entry at one slot keeps
        // the last occurrence, matching the former map insert.
        let mut entry_levels: Vec<Vec<(usize, Digest)>> = vec![Vec::new(); sizes.len()];
        for e in &self.entries {
            let (lvl, idx) = (e.level as usize, e.index as usize);
            if lvl >= sizes.len() || idx >= sizes[lvl] {
                return Err(MerkleError::MalformedEntry {
                    level: lvl,
                    index: idx,
                });
            }
            entry_levels[lvl].push((idx, e.digest));
        }
        for lvl in &mut entry_levels {
            // Stable sort keeps insertion order within one index; the
            // trailing occurrence wins below.
            lvl.sort_by_key(|&(idx, _)| idx);
        }
        let lookup = |lvl: &[(usize, Digest)], idx: usize| -> Option<Digest> {
            // Rightmost match (duplicates keep the last inserted).
            match lvl.partition_point(|&(i, _)| i <= idx) {
                0 => None,
                p if lvl[p - 1].0 == idx => Some(lvl[p - 1].1),
                _ => None,
            }
        };

        // The frontier: slots derivable from proven leaves, sorted by
        // index. A proof entry in a derivable slot is a prover error
        // (it could mask a missing tuple), so reject it.
        let mut frontier: Vec<(usize, Digest)> = Vec::with_capacity(leaves.len());
        for &(idx, digest) in leaves {
            if idx >= leaf_count {
                return Err(MerkleError::LeafOutOfRange {
                    index: idx,
                    leaf_count,
                });
            }
            if lookup(&entry_levels[0], idx).is_some() {
                return Err(MerkleError::RedundantEntry {
                    level: 0,
                    index: idx,
                });
            }
            frontier.push((idx, digest));
        }
        frontier.sort_by_key(|&(idx, _)| idx);
        if let Some(w) = frontier.windows(2).find(|w| w[0].0 == w[1].0) {
            // Two proven digests for one slot — same class of error as
            // an entry shadowing a proven leaf.
            return Err(MerkleError::RedundantEntry {
                level: 0,
                index: w[0].0,
            });
        }

        // Bottom-up: compute every parent that covers a proven leaf.
        // The frontier stays sorted, so each parent's children are a
        // contiguous run consumed by one forward pass. `fanout` is
        // wire-controlled, so cap the pre-allocation by the widest
        // level instead of trusting it (a corrupt proof must fail
        // verification, not abort on an absurd allocation).
        let mut children: Vec<Digest> = Vec::with_capacity(fanout.min(sizes[0]));
        for lvl in 0..sizes.len() - 1 {
            let mut next: Vec<(usize, Digest)> = Vec::with_capacity(frontier.len());
            let mut i = 0usize;
            while i < frontier.len() {
                let p = frontier[i].0 / fanout;
                if lookup(&entry_levels[lvl + 1], p).is_some() {
                    return Err(MerkleError::RedundantEntry {
                        level: lvl + 1,
                        index: p,
                    });
                }
                let first = p * fanout;
                let last = (first + fanout).min(sizes[lvl]);
                children.clear();
                for c in first..last {
                    if i < frontier.len() && frontier[i].0 == c {
                        children.push(frontier[i].1);
                        i += 1;
                    } else if let Some(d) = lookup(&entry_levels[lvl], c) {
                        children.push(d);
                    } else {
                        return Err(MerkleError::MissingDigest {
                            level: lvl,
                            index: c,
                        });
                    }
                }
                next.push((p, hash_digests(&children)));
            }
            frontier = next;
        }

        match frontier.first() {
            Some(&(0, root)) => Ok(root),
            _ => Err(MerkleError::MissingDigest {
                level: sizes.len() - 1,
                index: 0,
            }),
        }
    }
}

/// Sizes of each level, leaf level first, ending with the root level of
/// size 1. A single-leaf tree has one level.
fn level_sizes(leaf_count: usize, fanout: usize) -> Vec<usize> {
    let mut sizes = vec![leaf_count];
    let mut s = leaf_count;
    while s > 1 {
        s = s.div_ceil(fanout);
        sizes.push(s);
    }
    sizes
}

/// An in-memory Merkle hash tree.
///
/// Stores every level so that multi-leaf proofs are O(result) to
/// assemble. For very large leaf sets where this is too much memory,
/// see `spnet-core`'s lazy two-level distance tree (FULL method).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    fanout: usize,
    /// `levels[0]` = leaf digests; last level has exactly one digest.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over `leaves` with the given `fanout`.
    pub fn build(leaves: Vec<Digest>, fanout: usize) -> Result<Self, MerkleError> {
        if leaves.is_empty() {
            return Err(MerkleError::EmptyTree);
        }
        if fanout < 2 {
            return Err(MerkleError::BadFanout(fanout));
        }
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(fanout));
            for chunk in prev.chunks(fanout) {
                next.push(hash_digests(chunk));
            }
            levels.push(next);
        }
        Ok(MerkleTree { fanout, levels })
    }

    /// The signed root digest.
    pub fn root(&self) -> Digest {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Tree fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in levels (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Digest of leaf `i`.
    pub fn leaf(&self, i: usize) -> Option<Digest> {
        self.levels[0].get(i).copied()
    }

    /// Total number of digests stored — the ADS storage-overhead metric.
    pub fn total_digests(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Replaces the digest of leaf `i` and recomputes the O(log n) path
    /// to the root — the incremental-update primitive for dynamic
    /// networks (an edge-weight change touches two leaves).
    pub fn update_leaf(&mut self, i: usize, digest: Digest) -> Result<(), MerkleError> {
        let n = self.leaf_count();
        if i >= n {
            return Err(MerkleError::LeafOutOfRange {
                index: i,
                leaf_count: n,
            });
        }
        self.levels[0][i] = digest;
        let mut idx = i;
        for lvl in 0..self.levels.len() - 1 {
            let parent = idx / self.fanout;
            let first = parent * self.fanout;
            let last = (first + self.fanout).min(self.levels[lvl].len());
            let combined = hash_digests(&self.levels[lvl][first..last]);
            self.levels[lvl + 1][parent] = combined;
            idx = parent;
        }
        Ok(())
    }

    /// Builds the proof for a set of leaf indices per Merkle's rule.
    ///
    /// One sorted-vector sweep per level: the covered set stays sorted,
    /// so each parent's covered children form a contiguous run and the
    /// uncovered siblings are emitted in index order without set
    /// membership queries.
    pub fn prove(&self, leaf_indices: BTreeSet<usize>) -> Result<MerkleProof, MerkleError> {
        let leaf_count = self.leaf_count();
        if leaf_indices.is_empty() {
            return Err(MerkleError::NoLeaves);
        }
        // Already sorted and distinct, by BTreeSet construction.
        let mut covered: Vec<usize> = leaf_indices.into_iter().collect();
        if let Some(&max) = covered.last() {
            if max >= leaf_count {
                return Err(MerkleError::LeafOutOfRange {
                    index: max,
                    leaf_count,
                });
            }
        }
        let mut entries = Vec::new();
        for lvl in 0..self.levels.len() - 1 {
            let level_size = self.levels[lvl].len();
            let mut parents: Vec<usize> = Vec::with_capacity(covered.len());
            let mut i = 0usize;
            while i < covered.len() {
                let p = covered[i] / self.fanout;
                let first = p * self.fanout;
                let last = (first + self.fanout).min(level_size);
                // Supply digests of the parent's uncovered children
                // (rule: subtree has no proven leaf, parent's does).
                for c in first..last {
                    if i < covered.len() && covered[i] == c {
                        i += 1;
                    } else {
                        entries.push(ProofEntry {
                            level: lvl as u32,
                            index: c as u32,
                            digest: self.levels[lvl][c],
                        });
                    }
                }
                parents.push(p);
            }
            covered = parents;
        }
        Ok(MerkleProof {
            entries,
            leaf_count: leaf_count as u32,
            fanout: self.fanout as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hash_bytes;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| hash_bytes(&(i as u64).to_le_bytes()))
            .collect()
    }

    fn check_round_trip(n: usize, fanout: usize, proven: &[usize]) {
        let ls = leaves(n);
        let tree = MerkleTree::build(ls.clone(), fanout).unwrap();
        let set: BTreeSet<usize> = proven.iter().copied().collect();
        let proof = tree.prove(set.clone()).unwrap();
        let pairs: Vec<(usize, Digest)> = set.iter().map(|&i| (i, ls[i])).collect();
        let root = proof.reconstruct_root(&pairs).unwrap();
        assert_eq!(root, tree.root(), "n={n} f={fanout} proven={proven:?}");
    }

    #[test]
    fn single_leaf_tree() {
        let ls = leaves(1);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        assert_eq!(tree.root(), ls[0]);
        assert_eq!(tree.height(), 1);
        check_round_trip(1, 2, &[0]);
    }

    #[test]
    fn empty_tree_rejected() {
        assert!(matches!(
            MerkleTree::build(vec![], 2),
            Err(MerkleError::EmptyTree)
        ));
    }

    #[test]
    fn bad_fanout_rejected() {
        assert!(matches!(
            MerkleTree::build(leaves(4), 1),
            Err(MerkleError::BadFanout(1))
        ));
        assert!(matches!(
            MerkleTree::build(leaves(4), 0),
            Err(MerkleError::BadFanout(0))
        ));
    }

    #[test]
    fn binary_tree_manual_root() {
        // 4 leaves, fanout 2: root = H(H(l0∘l1) ∘ H(l2∘l3))
        let ls = leaves(4);
        let h01 = crate::digest::hash_concat(&[ls[0], ls[1]]);
        let h23 = crate::digest::hash_concat(&[ls[2], ls[3]]);
        let expected = crate::digest::hash_concat(&[h01, h23]);
        let tree = MerkleTree::build(ls, 2).unwrap();
        assert_eq!(tree.root(), expected);
    }

    #[test]
    fn paper_figure3_shape_fanout3() {
        // Figure 3b: 36 leaves, fanout 3 → levels 36, 12, 4, 2, 1.
        let tree = MerkleTree::build(leaves(36), 3).unwrap();
        let sizes: Vec<usize> = tree.levels.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![36, 12, 4, 2, 1]);
    }

    #[test]
    fn irregular_last_chunk() {
        // 5 leaves, fanout 3 → last parent has 2 children; last level of
        // size 2 hashes into a root of a 2-ary node.
        check_round_trip(5, 3, &[4]);
        check_round_trip(5, 3, &[0, 4]);
        check_round_trip(7, 4, &[6]);
    }

    #[test]
    fn round_trips_various_shapes() {
        for &(n, f) in &[
            (2usize, 2usize),
            (3, 2),
            (8, 2),
            (9, 2),
            (10, 3),
            (36, 3),
            (100, 16),
            (33, 32),
            (64, 32),
        ] {
            check_round_trip(n, f, &[0]);
            check_round_trip(n, f, &[n - 1]);
            check_round_trip(n, f, &[n / 2]);
            let all: Vec<usize> = (0..n).collect();
            check_round_trip(n, f, &all);
        }
    }

    #[test]
    fn contiguous_range_proof_smaller_than_scattered() {
        // Locality matters: a contiguous leaf range shares covers.
        let tree = MerkleTree::build(leaves(256), 2).unwrap();
        let contiguous: BTreeSet<usize> = (100..116).collect();
        let scattered: BTreeSet<usize> = (0..16).map(|i| i * 16).collect();
        let p1 = tree.prove(contiguous).unwrap();
        let p2 = tree.prove(scattered).unwrap();
        assert!(
            p1.num_items() < p2.num_items(),
            "contiguous {} vs scattered {}",
            p1.num_items(),
            p2.num_items()
        );
    }

    #[test]
    fn higher_fanout_more_proof_items() {
        // Figure 11a: proof size grows with fanout for a fixed leaf set.
        let ls = leaves(1024);
        let proven: BTreeSet<usize> = (500..510).collect();
        let mut last = 0usize;
        for f in [2usize, 4, 8, 16, 32] {
            let tree = MerkleTree::build(ls.clone(), f).unwrap();
            let p = tree.prove(proven.clone()).unwrap();
            assert!(p.num_items() >= last, "fanout {f}");
            last = p.num_items();
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_digest() {
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let proof = tree.prove([3usize].into_iter().collect()).unwrap();
        let tampered = hash_bytes(b"evil");
        let root = proof.reconstruct_root(&[(3, tampered)]).unwrap();
        assert_ne!(root, tree.root());
    }

    #[test]
    fn proof_rejects_moved_leaf() {
        // Same digest claimed at a different position must change root.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let proof = tree.prove([3usize].into_iter().collect()).unwrap();
        // Structurally invalid is fine too; a reconstructed root must
        // differ.
        if let Ok(root) = proof.reconstruct_root(&[(4, ls[3])]) {
            assert_ne!(root, tree.root());
        }
    }

    #[test]
    fn missing_proof_entry_detected() {
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([3usize].into_iter().collect()).unwrap();
        proof.entries.pop();
        let err = proof.reconstruct_root(&[(3, ls[3])]).unwrap_err();
        assert!(matches!(err, MerkleError::MissingDigest { .. }));
    }

    #[test]
    fn dropped_tuple_attack_detected() {
        // Section IV-A: a malicious provider removes a tuple from ΓS and
        // adds its digest to ΓT instead. The redundant-entry check
        // catches the other direction; here, verifying with the reduced
        // leaf set against the *original* proof must fail or mismatch.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let full: BTreeSet<usize> = [3usize, 4].into_iter().collect();
        let proof_full = tree.prove(full).unwrap();
        // Client got only leaf 3 but the proof was built for {3,4}.
        let res = proof_full.reconstruct_root(&[(3, ls[3])]);
        assert!(res.is_err(), "missing leaf must be detected");
    }

    #[test]
    fn redundant_entry_rejected() {
        // A proof entry that shadows a proven leaf slot is rejected —
        // otherwise a provider could substitute digests for tuples.
        let ls = leaves(16);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([3usize].into_iter().collect()).unwrap();
        proof.entries.push(ProofEntry {
            level: 0,
            index: 3,
            digest: ls[3],
        });
        let err = proof.reconstruct_root(&[(3, ls[3])]).unwrap_err();
        assert!(matches!(err, MerkleError::RedundantEntry { .. }));
    }

    #[test]
    fn malformed_entry_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::build(ls.clone(), 2).unwrap();
        let mut proof = tree.prove([0usize].into_iter().collect()).unwrap();
        proof.entries.push(ProofEntry {
            level: 9,
            index: 0,
            digest: ls[0],
        });
        let err = proof.reconstruct_root(&[(0, ls[0])]).unwrap_err();
        assert!(matches!(err, MerkleError::MalformedEntry { .. }));
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.prove([8usize].into_iter().collect()),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
        let proof = tree.prove([0usize].into_iter().collect()).unwrap();
        assert!(matches!(
            proof.reconstruct_root(&[(8, hash_bytes(b"x"))]),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_index_set_rejected() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.prove(BTreeSet::new()),
            Err(MerkleError::NoLeaves)
        ));
    }

    #[test]
    fn proof_size_accounting() {
        let tree = MerkleTree::build(leaves(64), 2).unwrap();
        let p = tree.prove([0usize].into_iter().collect()).unwrap();
        // 64 leaves, fanout 2 → 6 sibling digests.
        assert_eq!(p.num_items(), 6);
        assert_eq!(p.size_bytes(), 8 + 6 * 40);
    }

    #[test]
    fn update_leaf_matches_rebuild() {
        for (n, f) in [(1usize, 2usize), (5, 3), (64, 2), (100, 16)] {
            let mut ls = leaves(n);
            let mut tree = MerkleTree::build(ls.clone(), f).unwrap();
            for touch in [0usize, n / 2, n - 1] {
                ls[touch] = hash_bytes(format!("new-{touch}").as_bytes());
                tree.update_leaf(touch, ls[touch]).unwrap();
                let rebuilt = MerkleTree::build(ls.clone(), f).unwrap();
                assert_eq!(tree.root(), rebuilt.root(), "n={n} f={f} touch={touch}");
            }
        }
    }

    #[test]
    fn update_leaf_out_of_range() {
        let mut tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert!(matches!(
            tree.update_leaf(8, hash_bytes(b"x")),
            Err(MerkleError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn proofs_after_update_verify_against_new_root() {
        let mut ls = leaves(32);
        let mut tree = MerkleTree::build(ls.clone(), 2).unwrap();
        ls[7] = hash_bytes(b"updated");
        tree.update_leaf(7, ls[7]).unwrap();
        let proof = tree.prove([7usize].into_iter().collect()).unwrap();
        assert_eq!(proof.reconstruct_root(&[(7, ls[7])]).unwrap(), tree.root());
    }

    #[test]
    fn total_digests_counts_all_levels() {
        let tree = MerkleTree::build(leaves(8), 2).unwrap();
        assert_eq!(tree.total_digests(), 8 + 4 + 2 + 1);
    }
}
