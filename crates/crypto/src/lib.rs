//! Cryptographic substrate for the `auth-sp` workspace.
//!
//! This crate implements, from first principles, every cryptographic
//! primitive required by the authenticated shortest-path verification
//! framework of Yiu, Lin and Mouratidis (ICDE 2010):
//!
//! * [`sha256`] — the SHA-256 one-way hash function (the paper uses
//!   SHA-1; any collision-resistant hash with a fixed-width digest is
//!   interchangeable in the protocol, see `DESIGN.md`).
//! * [`digest`] — the 32-byte [`digest::Digest`] type and
//!   convenience combinators for hashing concatenations.
//! * [`bigint`] — arbitrary-precision unsigned integers with the modular
//!   arithmetic needed for RSA.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation.
//! * [`rsa`] — RSA key generation, signing and verification used by the
//!   data owner to sign ADS roots.
//! * [`merkle`] — a Merkle hash tree with configurable fanout plus
//!   multi-leaf proof generation/verification following Merkle's
//!   subtree rule (Section III-B of the paper).
//! * [`mbtree`] — a keyed Merkle B-tree used for materialized distance
//!   tuples (the FULL method) and hyper-edge weights (the HYP method).
//!
//! # Security disclaimer
//!
//! This is research-grade code written for a reproduction study: the RSA
//! implementation is not constant-time and the default modulus size is
//! chosen for experiment throughput, not production security.
//!
//! # Example
//!
//! ```
//! use spnet_crypto::{sha256::sha256, merkle::MerkleTree};
//!
//! let leaves: Vec<_> = (0u32..10).map(|i| sha256(&i.to_le_bytes())).collect();
//! let tree = MerkleTree::build(leaves.clone(), 2).unwrap();
//! let proof = tree.prove([3usize, 4].into_iter().collect()).unwrap();
//! let root = proof
//!     .reconstruct_root(&[(3, leaves[3]), (4, leaves[4])])
//!     .unwrap();
//! assert_eq!(root, tree.root());
//! ```

pub mod bigint;
pub mod cache;
pub mod digest;
pub mod mbtree;
pub mod merkle;
pub mod pager;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use digest::Digest;
pub use merkle::{MerkleProof, MerkleTree};
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
