//! The fixed-width message digest type and hash combinators.

use crate::sha256::{sha256, Sha256};
use std::fmt;

/// Number of bytes in a digest (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// A 32-byte message digest.
///
/// Digests are the atoms of every authenticated structure in this
/// workspace: Merkle tree nodes, signed roots, and integrity proof
/// entries are all `Digest`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; used as a sentinel, never produced by SHA-256
    /// on any known input.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Hex encoding (lowercase), mainly for debugging and test vectors.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a lowercase/uppercase hex string into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, byte) in out.iter_mut().enumerate() {
            let hi = s.as_bytes()[2 * i] as char;
            let lo = s.as_bytes()[2 * i + 1] as char;
            *byte = ((hi.to_digit(16)? as u8) << 4) | lo.to_digit(16)? as u8;
        }
        Some(Digest(out))
    }

    /// Raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..8])
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hashes a single byte string: `H(m)`.
pub fn hash_bytes(m: &[u8]) -> Digest {
    sha256(m)
}

/// Hashes the concatenation of several digests: `H(d₀ ∘ d₁ ∘ …)`.
///
/// This is the internal-node combiner of the Merkle structures
/// (Section III-B: `h₁ = H(H(Φ(v11)) ∘ H(Φ(v12)) ∘ H(Φ(v13)))`).
pub fn hash_concat(children: &[Digest]) -> Digest {
    let mut h = Sha256::new();
    for c in children {
        h.update(&c.0);
    }
    h.finalize()
}

/// Hashes the concatenation of two byte strings without allocating.
pub fn hash_pair_bytes(a: &[u8], b: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let d = hash_bytes(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        let d = hash_bytes(b"x");
        let mut hex = d.to_hex();
        hex.pop();
        assert_eq!(Digest::from_hex(&hex), None);
    }

    #[test]
    fn hash_concat_equals_manual_concat() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        let mut buf = Vec::new();
        buf.extend_from_slice(&a.0);
        buf.extend_from_slice(&b.0);
        assert_eq!(hash_concat(&[a, b]), hash_bytes(&buf));
    }

    #[test]
    fn hash_concat_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_concat(&[a, b]), hash_concat(&[b, a]));
    }

    #[test]
    fn hash_pair_bytes_matches_concat() {
        let d1 = hash_pair_bytes(b"hello ", b"world");
        let d2 = hash_bytes(b"hello world");
        assert_eq!(d1, d2);
    }

    #[test]
    fn zero_digest_is_not_a_hash_of_empty() {
        assert_ne!(Digest::ZERO, hash_bytes(b""));
    }
}
