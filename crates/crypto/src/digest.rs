//! The fixed-width message digest type and hash combinators.

use crate::sha256::{sha256, Sha256};
use std::fmt;

/// Number of bytes in a digest (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// A 32-byte message digest.
///
/// Digests are the atoms of every authenticated structure in this
/// workspace: Merkle tree nodes, signed roots, and integrity proof
/// entries are all `Digest`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; used as a sentinel, never produced by SHA-256
    /// on any known input.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Hex encoding (lowercase), mainly for debugging and test vectors.
    ///
    /// Table-driven: one lookup per nibble into a fixed alphabet
    /// instead of a `char::from_digit` call per nibble.
    pub fn to_hex(&self) -> String {
        const ALPHABET: &[u8; 16] = b"0123456789abcdef";
        let mut out = [0u8; DIGEST_LEN * 2];
        for (i, b) in self.0.iter().enumerate() {
            out[2 * i] = ALPHABET[(b >> 4) as usize];
            out[2 * i + 1] = ALPHABET[(b & 0xf) as usize];
        }
        String::from_utf8(out.to_vec()).expect("hex alphabet is ASCII")
    }

    /// Parses a lowercase/uppercase hex string into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, byte) in out.iter_mut().enumerate() {
            let hi = s.as_bytes()[2 * i] as char;
            let lo = s.as_bytes()[2 * i + 1] as char;
            *byte = ((hi.to_digit(16)? as u8) << 4) | lo.to_digit(16)? as u8;
        }
        Some(Digest(out))
    }

    /// Raw bytes of the digest.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..8])
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hashes a single byte string: `H(m)`.
pub fn hash_bytes(m: &[u8]) -> Digest {
    sha256(m)
}

/// Hashes the concatenation of several digests: `H(d₀ ∘ d₁ ∘ …)`.
///
/// This is the internal-node combiner of the Merkle structures
/// (Section III-B: `h₁ = H(H(Φ(v11)) ∘ H(Φ(v12)) ∘ H(Φ(v13)))`).
pub fn hash_concat(children: &[Digest]) -> Digest {
    hash_digests(children)
}

/// Number of child digests the [`hash_digests`] fast path handles on
/// the stack — covers every Merkle fanout the experiments sweep
/// (2–32).
pub const HASH_DIGESTS_STACK_ARITY: usize = 32;

/// Fast inner-node combiner: `H(d₀ ∘ d₁ ∘ …)` with the children
/// concatenated into a fixed stack buffer for fixed-arity nodes.
///
/// Feeding 32-byte digests one `update` at a time forces the hasher to
/// assemble every 64-byte block in its internal buffer; concatenating
/// up to [`HASH_DIGESTS_STACK_ARITY`] children on the stack first lets
/// the compression function consume whole blocks directly from the
/// contiguous buffer. Larger arities fall back to streaming.
pub fn hash_digests(children: &[Digest]) -> Digest {
    if children.len() <= HASH_DIGESTS_STACK_ARITY {
        let mut buf = [0u8; HASH_DIGESTS_STACK_ARITY * DIGEST_LEN];
        let n = children.len() * DIGEST_LEN;
        for (chunk, c) in buf.chunks_exact_mut(DIGEST_LEN).zip(children) {
            chunk.copy_from_slice(&c.0);
        }
        sha256(&buf[..n])
    } else {
        let mut h = Sha256::new();
        for c in children {
            h.update(&c.0);
        }
        h.finalize()
    }
}

/// Binary inner-node combiner: `H(a ∘ b)` (the default fanout-2 tree).
#[inline]
pub fn hash_two(a: &Digest, b: &Digest) -> Digest {
    let mut buf = [0u8; 2 * DIGEST_LEN];
    buf[..DIGEST_LEN].copy_from_slice(&a.0);
    buf[DIGEST_LEN..].copy_from_slice(&b.0);
    sha256(&buf)
}

/// Hashes the concatenation of two byte strings without allocating.
pub fn hash_pair_bytes(a: &[u8], b: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let d = hash_bytes(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        let d = hash_bytes(b"x");
        let mut hex = d.to_hex();
        hex.pop();
        assert_eq!(Digest::from_hex(&hex), None);
    }

    #[test]
    fn hash_concat_equals_manual_concat() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        let mut buf = Vec::new();
        buf.extend_from_slice(&a.0);
        buf.extend_from_slice(&b.0);
        assert_eq!(hash_concat(&[a, b]), hash_bytes(&buf));
    }

    #[test]
    fn hash_concat_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_concat(&[a, b]), hash_concat(&[b, a]));
    }

    #[test]
    fn hash_pair_bytes_matches_concat() {
        let d1 = hash_pair_bytes(b"hello ", b"world");
        let d2 = hash_bytes(b"hello world");
        assert_eq!(d1, d2);
    }

    #[test]
    fn zero_digest_is_not_a_hash_of_empty() {
        assert_ne!(Digest::ZERO, hash_bytes(b""));
    }

    #[test]
    fn hash_digests_matches_streaming_all_arities() {
        // Cover the stack fast path, its boundary, and the fallback.
        for n in [1usize, 2, 3, 5, 31, 32, 33, 64] {
            let children: Vec<Digest> = (0..n as u64)
                .map(|i| hash_bytes(&i.to_le_bytes()))
                .collect();
            let mut h = Sha256::new();
            for c in &children {
                h.update(&c.0);
            }
            assert_eq!(hash_digests(&children), h.finalize(), "arity {n}");
        }
    }

    #[test]
    fn hash_two_matches_concat() {
        let a = hash_bytes(b"left");
        let b = hash_bytes(b"right");
        assert_eq!(hash_two(&a, &b), hash_concat(&[a, b]));
        assert_ne!(hash_two(&a, &b), hash_two(&b, &a));
    }

    #[test]
    fn to_hex_lowercase_and_stable() {
        let d = hash_bytes(b"abc");
        let hex = d.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex
            .bytes()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(Digest::from_hex(&hex), Some(d));
    }
}
