//! RSA signatures over message digests.
//!
//! The data owner signs the root of each authenticated data structure;
//! clients verify roots against the owner's public key (Figure 2 of the
//! paper). The scheme is textbook RSA with deterministic PKCS#1-v1.5
//! style padding of a SHA-256 digest.

use crate::bigint::BigUint;
use crate::digest::Digest;
use crate::prime::random_prime;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Public RSA exponent (F4).
const PUBLIC_EXPONENT: u64 = 65537;

/// Process-wide count of private-key signing operations. Snapshot
/// cold-start tests assert this stays flat across a load (a provider
/// restarting from disk must only *verify*, never re-sign).
static SIGN_OPS: AtomicU64 = AtomicU64::new(0);

/// Number of RSA signing operations performed by this process so far.
pub fn signing_ops() -> u64 {
    SIGN_OPS.load(Ordering::Relaxed)
}

/// Default modulus size in bits. Research-scale: large enough that the
/// arithmetic paths are exercised realistically, small enough that key
/// generation stays sub-second inside test suites.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_bits: usize,
}

/// An RSA key pair (private exponent kept internal).
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

/// A signature: the RSA-encrypted padded digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature(Vec<u8>);

impl RsaSignature {
    /// Signature bytes (big-endian integer, at most modulus size).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Size in bytes, as counted in proof-size experiments.
    pub fn size_bytes(&self) -> usize {
        self.0.len()
    }

    /// Reconstructs a signature from raw bytes (e.g. decoded proofs).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        RsaSignature(bytes)
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with the given modulus size.
    ///
    /// # Panics
    /// Panics if `modulus_bits < 64` (padding would not fit a digest —
    /// such keys are never meaningful here).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        assert!(modulus_bits >= 64, "modulus too small");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = random_prime(rng, modulus_bits / 2);
            let q = random_prime(rng, modulus_bits - modulus_bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&phi) else { continue };
            return RsaKeyPair {
                public: RsaPublicKey {
                    modulus_bits: n.bit_len(),
                    n,
                    e,
                },
                d,
            };
        }
    }

    /// Generates a key pair with [`DEFAULT_MODULUS_BITS`].
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate(rng, DEFAULT_MODULUS_BITS)
    }

    /// The public half of the key pair.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs a digest: `pad(digest)^d mod n`.
    pub fn sign(&self, digest: &Digest) -> RsaSignature {
        SIGN_OPS.fetch_add(1, Ordering::Relaxed);
        let m = pad_digest(digest, self.public.modulus_bits);
        let s = m.modpow(&self.d, &self.public.n);
        RsaSignature(s.to_bytes_be())
    }
}

impl RsaPublicKey {
    /// Verifies that `sig` is a valid signature on `digest`.
    pub fn verify(&self, digest: &Digest, sig: &RsaSignature) -> bool {
        let s = BigUint::from_bytes_be(&sig.0);
        if s.cmp_to(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let m = s.modpow(&self.e, &self.n);
        m == pad_digest(digest, self.modulus_bits)
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.modulus_bits
    }

    /// Canonical encoding for persistence:
    /// `modulus_bits u32 LE ∘ n_len u32 LE ∘ n BE ∘ e_len u32 LE ∘ e BE`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(12 + n.len() + e.len());
        out.extend_from_slice(&(self.modulus_bits as u32).to_le_bytes());
        out.extend_from_slice(&(n.len() as u32).to_le_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_le_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Inverse of [`RsaPublicKey::to_bytes`]. Returns `None` on any
    /// structural mismatch (truncation, trailing bytes, zero modulus).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let take_u32 = |b: &[u8], at: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
        };
        let modulus_bits = take_u32(bytes, 0)? as usize;
        let n_len = take_u32(bytes, 4)? as usize;
        let n_bytes = bytes.get(8..8 + n_len)?;
        let e_at = 8 + n_len;
        let e_len = take_u32(bytes, e_at)? as usize;
        let e_bytes = bytes.get(e_at + 4..e_at + 4 + e_len)?;
        if bytes.len() != e_at + 4 + e_len {
            return None;
        }
        let n = BigUint::from_bytes_be(n_bytes);
        let e = BigUint::from_bytes_be(e_bytes);
        if n.bit_len() != modulus_bits || modulus_bits < 64 {
            return None;
        }
        Some(RsaPublicKey { n, e, modulus_bits })
    }
}

/// Deterministic PKCS#1-v1.5-style padding:
/// `0x00 0x01 0xFF…0xFF 0x00 <digest>`.
///
/// For moduli smaller than 35 bytes the digest is truncated to fit —
/// acceptable for research-scale keys (the truncated prefix is still
/// collision-resistant at the key's own security level).
fn pad_digest(digest: &Digest, modulus_bits: usize) -> BigUint {
    let k = modulus_bits.div_ceil(8); // modulus size in bytes
    let digest_len = (k - 3).min(32); // header is 0x00 0x01 … 0x00
    let mut em = vec![0xFFu8; k];
    em[0] = 0x00;
    em[1] = 0x01;
    let ps_end = k - digest_len - 1;
    em[ps_end] = 0x00;
    em[ps_end + 1..].copy_from_slice(&digest.as_bytes()[..digest_len]);
    BigUint::from_bytes_be(&em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hash_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(&mut rng, 256)
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = keypair(1);
        let d = hash_bytes(b"merkle root");
        let sig = kp.sign(&d);
        assert!(kp.public_key().verify(&d, &sig));
    }

    #[test]
    fn verify_rejects_wrong_digest() {
        let kp = keypair(2);
        let sig = kp.sign(&hash_bytes(b"authentic"));
        assert!(!kp.public_key().verify(&hash_bytes(b"forged"), &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = keypair(3);
        let d = hash_bytes(b"data");
        let sig = kp.sign(&d);
        let mut bad = sig.as_bytes().to_vec();
        bad[0] ^= 0x01;
        assert!(!kp.public_key().verify(&d, &RsaSignature::from_bytes(bad)));
    }

    #[test]
    fn verify_rejects_signature_from_other_key() {
        let kp1 = keypair(4);
        let kp2 = keypair(5);
        let d = hash_bytes(b"data");
        let sig = kp1.sign(&d);
        assert!(!kp2.public_key().verify(&d, &sig));
    }

    #[test]
    fn verify_rejects_oversized_signature_value() {
        let kp = keypair(6);
        let d = hash_bytes(b"data");
        // A "signature" numerically ≥ n must be rejected outright.
        let huge = vec![0xFF; 64];
        assert!(!kp.public_key().verify(&d, &RsaSignature::from_bytes(huge)));
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = keypair(7);
        let d = hash_bytes(b"data");
        assert_eq!(kp.sign(&d), kp.sign(&d));
    }

    #[test]
    fn default_keysize_round_trip() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = RsaKeyPair::generate_default(&mut rng);
        assert!(kp.public_key().modulus_bits() >= DEFAULT_MODULUS_BITS - 1);
        let d = hash_bytes(b"root");
        assert!(kp.public_key().verify(&d, &kp.sign(&d)));
    }

    #[test]
    fn public_key_bytes_round_trip() {
        let kp = keypair(10);
        let pk = kp.public_key();
        let bytes = pk.to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&back, pk);
        let d = hash_bytes(b"root");
        assert!(back.verify(&d, &kp.sign(&d)));
        // Truncation and trailing garbage are rejected.
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RsaPublicKey::from_bytes(&extra).is_none());
        assert!(RsaPublicKey::from_bytes(&[]).is_none());
    }

    #[test]
    fn signing_ops_counter_increments() {
        let kp = keypair(11);
        let before = signing_ops();
        kp.sign(&hash_bytes(b"count me"));
        kp.sign(&hash_bytes(b"me too"));
        assert!(signing_ops() >= before + 2);
        // Verification must not count as signing.
        let d = hash_bytes(b"verify only");
        let sig = kp.sign(&d);
        let after_sign = signing_ops();
        assert!(kp.public_key().verify(&d, &sig));
        assert_eq!(signing_ops(), after_sign);
    }

    #[test]
    fn signature_size_close_to_modulus() {
        let kp = keypair(9);
        let sig = kp.sign(&hash_bytes(b"x"));
        assert!(sig.size_bytes() <= 32); // 256-bit modulus
        assert!(sig.size_bytes() >= 28); // overwhelmingly likely
    }
}
