//! SHA-256 implemented from the FIPS 180-4 specification.
//!
//! The paper's ADS uses SHA-1; we substitute SHA-256 (stronger, same
//! role). The digest width (32 bytes) is a constant factor in all
//! reported proof sizes and is recorded in `EXPERIMENTS.md`.

use crate::digest::Digest;

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and finish with
/// [`Sha256::finalize`]. For one-shot hashing use [`sha256`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        // Fill a partially-occupied buffer first.
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                compress_block(&mut self.state, &self.buf);
                self.buf_len = 0;
            }
        }
        // Whole blocks compressed straight from the borrowed input —
        // no intermediate copy.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let block: &[u8; 64] = block.try_into().expect("split_at(64) yields 64 bytes");
            self.compress(block);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Pad so that total length ≡ 56 (mod 64), then the 8-byte length.
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_count(&pad[..pad_len + 8]);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without advancing the message length counter (used for
    /// the final padding, whose bytes are not part of the message).
    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    /// The SHA-256 compression function applied to one 64-byte block.
    #[inline]
    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// The SHA-256 compression function as a free function, so callers can
/// compress blocks they only hold borrowed (the hasher's own buffer,
/// or a caller's input slice) without copying them first.
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exact_block_boundary() {
        // 64 bytes: padding spills into a second block.
        let msg = vec![0x61u8; 64];
        assert_eq!(
            hex(&sha256(&msg)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_bytes() {
        // 55 bytes is the largest message whose padding fits one block.
        let m55 = vec![b'x'; 55];
        let m56 = vec![b'x'; 56];
        assert_ne!(sha256(&m55), sha256(&m56));
        // Compare against incremental hashing in odd-sized chunks.
        for msg in [&m55, &m56] {
            let mut h = Sha256::new();
            for chunk in msg.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(msg));
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Sanity: no trivial collisions among small inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..1000 {
            assert!(seen.insert(sha256(&i.to_le_bytes())));
        }
    }
}
