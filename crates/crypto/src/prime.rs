//! Probabilistic primality testing and random prime generation for RSA
//! key material.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Number of Miller–Rabin rounds; error probability ≤ 4^-ROUNDS.
const MR_ROUNDS: usize = 24;

/// Returns true iff `n` is (probably) prime.
///
/// Deterministic for `n < 252` via the small-prime table, then trial
/// division, then `MR_ROUNDS` (24) rounds of Miller–Rabin with random
/// bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p as u64);
        match n.cmp_to(&pb) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {}
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases in `[2, n-2]`.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    // n - 1 = d * 2^s with d odd
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2]
        let span = n.sub(&BigUint::from_u64(3));
        let a = BigUint::random_below(rng, &span).add(&two);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size too small for RSA use");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bit_len() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_primes_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 251, 257, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&b(p), &mut rng), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u64, 1, 4, 6, 9, 15, 91, 255, 65535, 1_000_000_008] {
            assert!(!is_probable_prime(&b(c), &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&b(c), &mut rng), "{c} is Carmichael");
        }
    }

    #[test]
    fn agreement_with_sieve_up_to_2000() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sieve = vec![true; 2000];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..2000 {
            if sieve[i] {
                let mut j = i * i;
                while j < 2000 {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        for (n, &expected) in sieve.iter().enumerate() {
            assert_eq!(
                is_probable_prime(&b(n as u64), &mut rng),
                expected,
                "disagreement at {n}"
            );
        }
    }

    #[test]
    fn random_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [16usize, 32, 64] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, &mut rng));
        }
    }

    #[test]
    fn random_prime_128_bits() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = random_prime(&mut rng, 128);
        assert_eq!(p.bit_len(), 128);
        assert!(!p.is_even());
    }

    #[test]
    fn product_of_two_primes_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_prime(&mut rng, 32);
        let q = random_prime(&mut rng, 32);
        let n = p.mul(&q);
        assert!(!is_probable_prime(&n, &mut rng));
    }
}
