//! Backing-store pager traits for lazily materialized trees.
//!
//! A persistent snapshot (see the `spnet-store` crate) stores each tree
//! level as fixed-size pages of digests and each Merkle B-tree's entry
//! array as fixed-size pages of [`crate::mbtree::KeyedEntry`] records.
//! The tree types in this crate stay storage-agnostic: a paged
//! [`crate::merkle::MerkleTree`] or [`crate::mbtree::MerkleBTree`]
//! resolves missing pages through these traits — the merk `Link` idea
//! (resolved node vs. on-disk stub), with the page as the granularity
//! of a fault.
//!
//! Implementations must verify page integrity themselves (the snapshot
//! format checks every page against a signed-into-the-root digest
//! array) and return a typed [`PageError`] instead of panicking on
//! corrupt or truncated input.

use crate::digest::Digest;
use crate::mbtree::KeyedEntry;

/// Errors raised while faulting a page from a backing store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// Underlying I/O failure (message carries the OS error).
    Io(String),
    /// The page bytes did not match their recorded digest, or the
    /// section layout is inconsistent.
    Corrupt(String),
    /// The requested page does not exist in the store.
    OutOfRange {
        /// Tree level of the request (0 for entry pagers).
        level: u32,
        /// Requested page index within the level.
        page: u32,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Io(e) => write!(f, "page io error: {e}"),
            PageError::Corrupt(m) => write!(f, "corrupt page: {m}"),
            PageError::OutOfRange { level, page } => {
                write!(f, "page {page} at level {level} out of range")
            }
        }
    }
}

impl std::error::Error for PageError {}

/// Loads pages of tree-level digests: `level` 0 is the leaf level,
/// increasing towards the root. Every level uses the same page length
/// (digests per page); the last page of a level may be short.
pub trait DigestPager: Send + Sync + std::fmt::Debug {
    /// Faults in one page of digests.
    fn load_page(&self, level: u32, page: u32) -> Result<Vec<Digest>, PageError>;
}

/// Loads pages of sorted [`KeyedEntry`] records backing a
/// [`crate::mbtree::MerkleBTree`]'s entry array. The last page may be
/// short.
pub trait EntryPager: Send + Sync + std::fmt::Debug {
    /// Faults in one page of entries.
    fn load_entries(&self, page: u32) -> Result<Vec<KeyedEntry>, PageError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_error_display() {
        assert!(PageError::Io("gone".into()).to_string().contains("gone"));
        assert!(PageError::Corrupt("bad digest".into())
            .to_string()
            .contains("bad digest"));
        assert!(PageError::OutOfRange { level: 2, page: 9 }
            .to_string()
            .contains("level 2"));
    }
}
