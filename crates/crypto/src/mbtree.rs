//! Keyed Merkle B-tree over sorted `(key, value)` tuples.
//!
//! The FULL method stores all-pairs shortest distances as tuples
//! `⟨vᵢ.id, vⱼ.id, dist(vᵢ,vⱼ)⟩` in a Merkle B-tree keyed by the
//! composite `(vᵢ.id, vⱼ.id)` (Section IV-B); the HYP method uses the
//! same structure for hyper-edge weights (Section V-B).
//!
//! Realisation: entries sorted by key form the leaf level of a
//! [`MerkleTree`] with the requested fanout. Entry digests bind key and
//! value together, so a lookup proof authenticates both; membership of
//! *sets* of keys reuses the multi-leaf Merkle proof machinery.

use crate::cache::{PageCache, PageCacheCfg};
use crate::digest::{hash_bytes, Digest};
use crate::merkle::{MerkleError, MerkleProof, MerkleTree};
use crate::pager::EntryPager;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A `(composite key, f64 value)` tuple as materialized by the owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyedEntry {
    /// Composite key, e.g. `(vᵢ.id << 32) | vⱼ.id`.
    pub key: u64,
    /// Materialized value (a shortest-path distance).
    pub value: f64,
}

impl KeyedEntry {
    /// Canonical 16-byte encoding: key LE ∘ value bits LE.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..].copy_from_slice(&self.value.to_bits().to_le_bytes());
        out
    }

    /// Digest binding key and value.
    pub fn digest(&self) -> Digest {
        hash_bytes(&self.encode())
    }

    /// Inverse of [`KeyedEntry::encode`].
    pub fn decode(bytes: [u8; 16]) -> KeyedEntry {
        let key = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let bits = u64::from_le_bytes(bytes[8..].try_into().unwrap());
        KeyedEntry {
            key,
            value: f64::from_bits(bits),
        }
    }
}

/// Composes a pair of 32-bit node identifiers into one ordered key.
pub fn composite_key(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Splits a composite key back into its halves.
pub fn split_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Errors from Merkle B-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbTreeError {
    /// The tree contains no entries.
    Empty,
    /// Keys passed to `build` were not strictly increasing.
    UnsortedKeys,
    /// A looked-up key does not exist (the owner materializes all pairs,
    /// so this indicates a provider bug or attack).
    KeyNotFound(u64),
    /// A range proof reconstructed a root that differs from the trusted
    /// one.
    RootMismatch,
    /// A range proof's leaf run does not bracket the queried interval,
    /// so completeness is unproven (the message names the failed
    /// boundary).
    RangeIncomplete(&'static str),
    /// Underlying Merkle failure.
    Merkle(MerkleError),
}

impl std::fmt::Display for MbTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MbTreeError::Empty => write!(f, "merkle b-tree has no entries"),
            MbTreeError::UnsortedKeys => {
                write!(f, "entries must be sorted by strictly increasing key")
            }
            MbTreeError::KeyNotFound(k) => write!(f, "key {k:#x} not found"),
            MbTreeError::RootMismatch => {
                write!(f, "range proof root does not match the trusted root")
            }
            MbTreeError::RangeIncomplete(which) => {
                write!(f, "range proof does not certify completeness: {which}")
            }
            MbTreeError::Merkle(e) => write!(f, "merkle error: {e}"),
        }
    }
}

impl std::error::Error for MbTreeError {}

impl From<MerkleError> for MbTreeError {
    fn from(e: MerkleError) -> Self {
        MbTreeError::Merkle(e)
    }
}

/// A membership proof for a set of keyed entries.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedProof {
    /// The proven entries, in key order (the client checks the keys
    /// match what it asked for).
    pub entries: Vec<KeyedEntry>,
    /// Leaf positions of the entries, parallel to `entries`.
    pub positions: Vec<u32>,
    /// Merkle cover digests.
    pub merkle: MerkleProof,
}

impl KeyedProof {
    /// Number of digest items in the proof.
    pub fn num_items(&self) -> usize {
        self.merkle.num_items()
    }

    /// Byte size: entries (16B each) + positions (4B) + Merkle part.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 16 + self.positions.len() * 4 + self.merkle.size_bytes()
    }

    /// Reconstructs the root from the carried entries.
    pub fn reconstruct_root(&self) -> Result<Digest, MbTreeError> {
        let pairs: Vec<(usize, Digest)> = self
            .entries
            .iter()
            .zip(&self.positions)
            .map(|(e, &p)| (p as usize, e.digest()))
            .collect();
        Ok(self.merkle.reconstruct_root(&pairs)?)
    }

    /// Finds the proven value for `key`, if present.
    pub fn value_for(&self, key: u64) -> Option<f64> {
        self.entries
            .binary_search_by_key(&key, |e| e.key)
            .ok()
            .map(|i| self.entries[i].value)
    }
}

/// A completeness proof for a key interval `[lo, hi]`, grovedb-style.
///
/// Carries the *contiguous* leaf run covering every entry whose key
/// falls in the interval, extended by one boundary entry on each side
/// (the predecessor of `lo` and the successor of `hi`, when they
/// exist). Verification reconstructs the signed root from the run and
/// then checks the brackets: if the run does not start at leaf 0, its
/// first key must be `< lo`, and if it does not end at the last leaf,
/// its last key must be `> hi`. Together with the strict key ordering
/// enforced at build time this proves **no entry in `[lo, hi]` was
/// omitted** — including the empty-interval case, which doubles as a
/// non-membership proof.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRangeProof {
    /// The contiguous leaf run, in key order.
    pub entries: Vec<KeyedEntry>,
    /// Global leaf position of `entries[0]`.
    pub first: u32,
    /// Merkle cover digests for the run.
    pub merkle: MerkleProof,
}

impl KeyRangeProof {
    /// Number of digest items in the Merkle part.
    pub fn num_items(&self) -> usize {
        self.merkle.num_items()
    }

    /// Byte size: run entries (16B each) + 4B start position + Merkle.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 16 + 4 + self.merkle.size_bytes()
    }

    /// Total leaf count of the proven tree. The caller must check this
    /// against the signed metadata's leaf count — the proof itself only
    /// binds the run to `root`.
    pub fn leaf_count(&self) -> usize {
        self.merkle.leaf_count as usize
    }

    /// Verifies the run against `root` and the interval brackets, and
    /// returns exactly the entries with key in `[lo, hi]` (possibly
    /// empty — a proven non-membership).
    pub fn verify(&self, root: Digest, lo: u64, hi: u64) -> Result<Vec<KeyedEntry>, MbTreeError> {
        if lo > hi {
            return Err(MbTreeError::RangeIncomplete("interval is empty (lo > hi)"));
        }
        if self.entries.is_empty() {
            return Err(MbTreeError::Empty);
        }
        if self.entries.windows(2).any(|w| w[0].key >= w[1].key) {
            return Err(MbTreeError::UnsortedKeys);
        }
        let pairs: Vec<(usize, Digest)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (self.first as usize + i, e.digest()))
            .collect();
        if self.merkle.reconstruct_root(&pairs)? != root {
            return Err(MbTreeError::RootMismatch);
        }
        let first = self.first as usize;
        let last = first + self.entries.len() - 1;
        if first > 0 && self.entries[0].key >= lo {
            return Err(MbTreeError::RangeIncomplete(
                "left boundary: run does not start at leaf 0 and its first key is not below lo",
            ));
        }
        if last + 1 < self.leaf_count() && self.entries[self.entries.len() - 1].key <= hi {
            return Err(MbTreeError::RangeIncomplete(
                "right boundary: run does not end at the last leaf and its last key is not above hi",
            ));
        }
        Ok(self
            .entries
            .iter()
            .filter(|e| (lo..=hi).contains(&e.key))
            .copied()
            .collect())
    }
}

/// Physical representation of the sorted entry array.
#[derive(Debug, Clone)]
enum EntryRepr {
    /// All entries resident (the historical layout).
    Dense(Vec<KeyedEntry>),
    /// Entries faulted in page-by-page from a backing store. The first
    /// key of each page is kept resident so a lookup binary-searches
    /// the sparse index first and faults exactly one page.
    Paged {
        pager: Arc<dyn EntryPager>,
        len: usize,
        page_entries: usize,
        first_keys: Vec<u64>,
        /// Bounded LRU over resident entry pages, shared across clones.
        cache: Arc<PageCache<Vec<KeyedEntry>>>,
    },
}

/// The Merkle B-tree: sorted entries + Merkle tree over entry digests.
#[derive(Debug, Clone)]
pub struct MerkleBTree {
    entries: EntryRepr,
    tree: MerkleTree,
}

impl MerkleBTree {
    /// Builds the tree over entries sorted by strictly increasing key.
    pub fn build(entries: Vec<KeyedEntry>, fanout: usize) -> Result<Self, MbTreeError> {
        if entries.is_empty() {
            return Err(MbTreeError::Empty);
        }
        if entries.windows(2).any(|w| w[0].key >= w[1].key) {
            return Err(MbTreeError::UnsortedKeys);
        }
        let leaves: Vec<Digest> = entries.iter().map(KeyedEntry::digest).collect();
        let tree = MerkleTree::build(leaves, fanout)?;
        Ok(MerkleBTree {
            entries: EntryRepr::Dense(entries),
            tree,
        })
    }

    /// Opens a read-only tree whose entry array and digest levels live
    /// in a paged backing store. `first_keys[p]` must be the key of the
    /// first entry of page `p` (saved by the snapshot writer — deriving
    /// it here would fault every page and defeat laziness). `tree` is
    /// typically a [`MerkleTree::open_paged`] tree over the entry
    /// digests.
    pub fn open_paged(
        pager: Arc<dyn EntryPager>,
        len: usize,
        page_entries: usize,
        first_keys: Vec<u64>,
        tree: MerkleTree,
    ) -> Result<Self, MbTreeError> {
        Self::open_paged_with_cache(
            pager,
            len,
            page_entries,
            first_keys,
            tree,
            PageCacheCfg::default(),
        )
    }

    /// [`MerkleBTree::open_paged`] with an explicit entry-page cache
    /// bound and optional shared eviction counter.
    pub fn open_paged_with_cache(
        pager: Arc<dyn EntryPager>,
        len: usize,
        page_entries: usize,
        first_keys: Vec<u64>,
        tree: MerkleTree,
        cache_cfg: PageCacheCfg,
    ) -> Result<Self, MbTreeError> {
        if len == 0 {
            return Err(MbTreeError::Empty);
        }
        if page_entries == 0 || first_keys.len() != len.div_ceil(page_entries) {
            return Err(MbTreeError::Merkle(MerkleError::Page(format!(
                "bad page geometry: {len} entries, {page_entries} per page, {} first keys",
                first_keys.len()
            ))));
        }
        if first_keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MbTreeError::UnsortedKeys);
        }
        if tree.leaf_count() != len {
            return Err(MbTreeError::Merkle(MerkleError::Page(format!(
                "digest tree has {} leaves for {len} entries",
                tree.leaf_count()
            ))));
        }
        let cache = Arc::new(PageCache::new(cache_cfg));
        Ok(MerkleBTree {
            entries: EntryRepr::Paged {
                pager,
                len,
                page_entries,
                first_keys,
                cache,
            },
            tree,
        })
    }

    /// The signed root.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Number of materialized entries.
    pub fn len(&self) -> usize {
        match &self.entries {
            EntryRepr::Dense(es) => es.len(),
            EntryRepr::Paged { len, .. } => *len,
        }
    }

    /// True if the tree holds no entries (unreachable post-`build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (for the O(f·log_f |V|) proof-size analysis).
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// The underlying digest tree (its fanout and levels are what the
    /// snapshot writer persists).
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Whether entries resolve lazily from a backing store.
    pub fn is_paged(&self) -> bool {
        matches!(self.entries, EntryRepr::Paged { .. })
    }

    /// The resident entry array — present only for built trees.
    /// Snapshot writers serialize this.
    pub fn dense_entries(&self) -> Option<&[KeyedEntry]> {
        match &self.entries {
            EntryRepr::Dense(es) => Some(es),
            EntryRepr::Paged { .. } => None,
        }
    }

    /// Every entry of the tree, in key order, regardless of physical
    /// representation. On a paged tree this faults every entry page —
    /// use it to densify a read-only tree before mutating it.
    pub fn all_entries(&self) -> Result<Vec<KeyedEntry>, MbTreeError> {
        match &self.entries {
            EntryRepr::Dense(es) => Ok(es.clone()),
            EntryRepr::Paged { .. } => (0..self.len()).map(|i| self.entry_at(i)).collect(),
        }
    }

    /// Replaces the value stored under an existing `key` and patches
    /// the Merkle path of its leaf in place (O(f · log_f n)). Only
    /// dense trees are updatable — paged trees are read-only views and
    /// report the underlying [`MerkleError::ReadOnly`].
    pub fn update_value(&mut self, key: u64, value: f64) -> Result<(), MbTreeError> {
        let (pos, _) = self.locate(key)?;
        match &mut self.entries {
            EntryRepr::Dense(es) => {
                es[pos].value = value;
                Ok(self.tree.update_leaf(pos, es[pos].digest())?)
            }
            EntryRepr::Paged { .. } => Err(MbTreeError::Merkle(MerkleError::ReadOnly)),
        }
    }

    /// Faults in one entry page (paged repr only).
    fn entry_page(
        pager: &Arc<dyn EntryPager>,
        cache: &PageCache<Vec<KeyedEntry>>,
        len: usize,
        page_entries: usize,
        page: usize,
    ) -> Result<Arc<Vec<KeyedEntry>>, MbTreeError> {
        if let Some(run) = cache.get(page as u64) {
            return Ok(run);
        }
        if page >= len.div_ceil(page_entries) {
            return Err(MbTreeError::Merkle(MerkleError::Page(format!(
                "entry page {page} outside the tree shape"
            ))));
        }
        let run = pager
            .load_entries(page as u32)
            .map_err(|e| MbTreeError::Merkle(MerkleError::Page(e.to_string())))?;
        let expected = (len - page * page_entries).min(page_entries);
        if run.len() != expected {
            return Err(MbTreeError::Merkle(MerkleError::Page(format!(
                "entry page {page}: expected {expected} entries, got {}",
                run.len()
            ))));
        }
        Ok(cache.insert(page as u64, Arc::new(run)))
    }

    /// Locates `key`, faulting at most one page: returns the global
    /// position and the entry.
    fn locate(&self, key: u64) -> Result<(usize, KeyedEntry), MbTreeError> {
        match &self.entries {
            EntryRepr::Dense(es) => {
                let idx = es
                    .binary_search_by_key(&key, |e| e.key)
                    .map_err(|_| MbTreeError::KeyNotFound(key))?;
                Ok((idx, es[idx]))
            }
            EntryRepr::Paged {
                pager,
                len,
                page_entries,
                first_keys,
                cache,
            } => {
                // Last page whose first key is ≤ key holds the only
                // possible slot.
                let p = first_keys.partition_point(|&k| k <= key);
                if p == 0 {
                    return Err(MbTreeError::KeyNotFound(key));
                }
                let page = p - 1;
                let run = Self::entry_page(pager, cache, *len, *page_entries, page)?;
                let idx = run
                    .binary_search_by_key(&key, |e| e.key)
                    .map_err(|_| MbTreeError::KeyNotFound(key))?;
                Ok((page * page_entries + idx, run[idx]))
            }
        }
    }

    /// Looks up a single key. On a paged tree, a backing-store fault
    /// failure also reports as `None`; use [`MerkleBTree::prove_keys`]
    /// when the distinction matters.
    pub fn get(&self, key: u64) -> Option<f64> {
        self.locate(key).ok().map(|(_, e)| e.value)
    }

    /// Builds a membership proof for a set of keys. On a paged tree
    /// this faults only the entry pages and digest pages the proof
    /// touches.
    pub fn prove_keys(&self, keys: &[u64]) -> Result<KeyedProof, MbTreeError> {
        let mut found: BTreeMap<usize, KeyedEntry> = BTreeMap::new();
        for &k in keys {
            let (pos, entry) = self.locate(k)?;
            found.insert(pos, entry);
        }
        let merkle = self.tree.prove(found.keys().copied().collect())?;
        Ok(KeyedProof {
            entries: found.values().copied().collect(),
            positions: found.keys().map(|&i| i as u32).collect(),
            merkle,
        })
    }

    /// The entry at global position `idx`; faults at most one page on a
    /// paged tree.
    fn entry_at(&self, idx: usize) -> Result<KeyedEntry, MbTreeError> {
        match &self.entries {
            EntryRepr::Dense(es) => Ok(es[idx]),
            EntryRepr::Paged {
                pager,
                len,
                page_entries,
                cache,
                ..
            } => {
                let run = Self::entry_page(pager, cache, *len, *page_entries, idx / page_entries)?;
                Ok(run[idx % page_entries])
            }
        }
    }

    /// First global position whose key fails `pred`, by binary search.
    /// Faults O(log pages) entry pages on a paged tree.
    fn partition_point_global(&self, pred: impl Fn(u64) -> bool) -> Result<usize, MbTreeError> {
        let (mut left, mut right) = (0usize, self.len());
        while left < right {
            let mid = left + (right - left) / 2;
            if pred(self.entry_at(mid)?.key) {
                left = mid + 1;
            } else {
                right = mid;
            }
        }
        Ok(left)
    }

    /// Builds a completeness proof for the key interval `[lo, hi]`: the
    /// contiguous leaf run holding every in-interval entry plus its
    /// bracketing neighbours. On a paged tree this faults only the run
    /// pages, the O(log n) pages the position search touches, and the
    /// digest pages of the Merkle cover.
    pub fn prove_key_range(&self, lo: u64, hi: u64) -> Result<KeyRangeProof, MbTreeError> {
        if lo > hi {
            return Err(MbTreeError::RangeIncomplete("interval is empty (lo > hi)"));
        }
        let len = self.len();
        let lo_idx = self.partition_point_global(|k| k < lo)?;
        let hi_idx = self.partition_point_global(|k| k <= hi)?;
        let start = lo_idx.saturating_sub(1);
        let end = (hi_idx + 1).min(len); // exclusive
        let entries: Result<Vec<KeyedEntry>, MbTreeError> =
            (start..end).map(|i| self.entry_at(i)).collect();
        let merkle = self.tree.prove((start..end).collect())?;
        Ok(KeyRangeProof {
            entries: entries?,
            first: start as u32,
            merkle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries(n: u32) -> Vec<KeyedEntry> {
        (0..n)
            .map(|i| KeyedEntry {
                key: (i as u64) * 3,
                value: i as f64 * 0.5,
            })
            .collect()
    }

    #[test]
    fn composite_key_round_trip() {
        for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 7), (42, u32::MAX)] {
            assert_eq!(split_key(composite_key(a, b)), (a, b));
        }
    }

    #[test]
    fn composite_key_ordering_groups_by_source() {
        // All keys with source a sort before any key with source a+1.
        assert!(composite_key(1, u32::MAX) < composite_key(2, 0));
    }

    #[test]
    fn build_and_lookup() {
        let t = MerkleBTree::build(sample_entries(100), 4).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(6), Some(1.0));
        assert_eq!(t.get(7), None);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            MerkleBTree::build(vec![], 4),
            Err(MbTreeError::Empty)
        ));
    }

    #[test]
    fn unsorted_rejected() {
        let mut es = sample_entries(10);
        es.swap(2, 3);
        assert!(matches!(
            MerkleBTree::build(es, 4),
            Err(MbTreeError::UnsortedKeys)
        ));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut es = sample_entries(5);
        es[1].key = es[0].key;
        assert!(matches!(
            MerkleBTree::build(es, 4),
            Err(MbTreeError::UnsortedKeys)
        ));
    }

    #[test]
    fn single_key_proof_verifies() {
        let t = MerkleBTree::build(sample_entries(64), 4).unwrap();
        let p = t.prove_keys(&[30]).unwrap();
        assert_eq!(p.reconstruct_root().unwrap(), t.root());
        assert_eq!(p.value_for(30), Some(5.0));
    }

    #[test]
    fn multi_key_proof_verifies() {
        let t = MerkleBTree::build(sample_entries(200), 8).unwrap();
        let keys = [0u64, 3, 297, 300, 597];
        let p = t.prove_keys(&keys).unwrap();
        assert_eq!(p.reconstruct_root().unwrap(), t.root());
        for &k in &keys {
            assert!(p.value_for(k).is_some(), "key {k}");
        }
    }

    #[test]
    fn missing_key_errors() {
        let t = MerkleBTree::build(sample_entries(10), 4).unwrap();
        assert!(matches!(
            t.prove_keys(&[1]),
            Err(MbTreeError::KeyNotFound(1))
        ));
    }

    #[test]
    fn tampered_value_changes_root() {
        let t = MerkleBTree::build(sample_entries(64), 4).unwrap();
        let mut p = t.prove_keys(&[30]).unwrap();
        p.entries[0].value = 999.0; // provider lies about the distance
        assert_ne!(p.reconstruct_root().unwrap(), t.root());
    }

    #[test]
    fn swapped_key_changes_root() {
        // Provider substitutes the tuple of a different pair.
        let t = MerkleBTree::build(sample_entries(64), 4).unwrap();
        let mut p = t.prove_keys(&[30]).unwrap();
        p.entries[0].key = 33;
        assert_ne!(p.reconstruct_root().unwrap(), t.root());
    }

    #[test]
    fn proof_height_is_logarithmic() {
        let t = MerkleBTree::build(sample_entries(10_000), 16).unwrap();
        // ceil(log16(10000)) + 1 = 5 levels
        assert!(t.height() <= 5, "height {}", t.height());
        let p = t.prove_keys(&[0]).unwrap();
        // O(f · log_f n) digest items.
        assert!(p.num_items() <= 16 * 5, "{} items", p.num_items());
    }

    #[test]
    fn entry_digest_binds_key_and_value() {
        let e1 = KeyedEntry { key: 1, value: 2.0 };
        let e2 = KeyedEntry { key: 1, value: 3.0 };
        let e3 = KeyedEntry { key: 2, value: 2.0 };
        assert_ne!(e1.digest(), e2.digest());
        assert_ne!(e1.digest(), e3.digest());
    }

    #[test]
    fn encode_decode_round_trip() {
        for e in sample_entries(20) {
            assert_eq!(KeyedEntry::decode(e.encode()), e);
        }
        let nan = KeyedEntry {
            key: 7,
            value: f64::NAN,
        };
        // Bit-level round trip even for non-finite payloads.
        assert_eq!(KeyedEntry::decode(nan.encode()).encode(), nan.encode());
    }

    /// Test pager over a dense entry array.
    #[derive(Debug)]
    struct VecEntryPager {
        entries: Vec<KeyedEntry>,
        page_entries: usize,
        faults: std::sync::atomic::AtomicU64,
    }

    impl EntryPager for VecEntryPager {
        fn load_entries(&self, page: u32) -> Result<Vec<KeyedEntry>, crate::pager::PageError> {
            let start = page as usize * self.page_entries;
            if start >= self.entries.len() {
                return Err(crate::pager::PageError::OutOfRange { level: 0, page });
            }
            self.faults
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let end = (start + self.page_entries).min(self.entries.len());
            Ok(self.entries[start..end].to_vec())
        }
    }

    fn paged_from_dense(
        dense: &MerkleBTree,
        page_entries: usize,
    ) -> (MerkleBTree, Arc<VecEntryPager>) {
        let entries = dense.dense_entries().unwrap().to_vec();
        let first_keys: Vec<u64> = entries.chunks(page_entries).map(|c| c[0].key).collect();
        let pager = Arc::new(VecEntryPager {
            entries,
            page_entries,
            faults: std::sync::atomic::AtomicU64::new(0),
        });
        // Reuse the dense digest tree: proof bytes must be identical
        // regardless of where entries physically live.
        let paged = MerkleBTree::open_paged(
            Arc::clone(&pager) as Arc<dyn EntryPager>,
            pager.entries.len(),
            page_entries,
            first_keys,
            dense.tree().clone(),
        )
        .unwrap();
        (paged, pager)
    }

    #[test]
    fn paged_btree_matches_dense() {
        let dense = MerkleBTree::build(sample_entries(200), 8).unwrap();
        let (paged, pager) = paged_from_dense(&dense, 16);
        assert!(paged.is_paged());
        assert_eq!(paged.root(), dense.root());
        assert_eq!(paged.len(), dense.len());
        assert_eq!(paged.get(6), dense.get(6));
        assert_eq!(paged.get(7), None);
        assert_eq!(paged.get(597), dense.get(597));
        let keys = [0u64, 3, 297, 300, 597];
        let a = dense.prove_keys(&keys).unwrap();
        let b = paged.prove_keys(&keys).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.reconstruct_root().unwrap(), dense.root());
        // Lookups touched a strict subset of the 13 entry pages.
        let faults = pager.faults.load(std::sync::atomic::Ordering::Relaxed);
        assert!(faults < 13, "faulted {faults} entry pages");
        assert!(matches!(
            paged.prove_keys(&[1]),
            Err(MbTreeError::KeyNotFound(1))
        ));
    }

    #[test]
    fn paged_btree_rejects_bad_geometry() {
        let dense = MerkleBTree::build(sample_entries(20), 4).unwrap();
        let entries = dense.dense_entries().unwrap().to_vec();
        let pager = Arc::new(VecEntryPager {
            entries,
            page_entries: 8,
            faults: std::sync::atomic::AtomicU64::new(0),
        });
        // Wrong first-key count for the geometry.
        let err = MerkleBTree::open_paged(
            Arc::clone(&pager) as Arc<dyn EntryPager>,
            20,
            8,
            vec![0],
            dense.tree().clone(),
        )
        .unwrap_err();
        assert!(matches!(err, MbTreeError::Merkle(MerkleError::Page(_))));
        // Unsorted sparse index.
        let err = MerkleBTree::open_paged(
            Arc::clone(&pager) as Arc<dyn EntryPager>,
            20,
            8,
            vec![9, 3, 50],
            dense.tree().clone(),
        )
        .unwrap_err();
        assert!(matches!(err, MbTreeError::UnsortedKeys));
    }

    #[test]
    fn key_range_proof_round_trip() {
        // Keys 0, 3, 6, ..., 297.
        let t = MerkleBTree::build(sample_entries(100), 4).unwrap();
        for (lo, hi, expected) in [
            (0u64, 297u64, 100usize), // whole keyspace
            (0, u64::MAX, 100),
            (3, 9, 3),     // interior, exact hits
            (4, 8, 1),     // interior, off-key bounds (only key 6)
            (7, 8, 0),     // proven-empty interval
            (298, 500, 0), // past the last key
            (150, 150, 1),
        ] {
            let p = t.prove_key_range(lo, hi).unwrap();
            let got = p.verify(t.root(), lo, hi).unwrap();
            assert_eq!(got.len(), expected, "[{lo}, {hi}]");
            assert!(got.iter().all(|e| (lo..=hi).contains(&e.key)));
            assert_eq!(p.leaf_count(), 100);
        }
    }

    #[test]
    fn key_range_proof_detects_omission() {
        let t = MerkleBTree::build(sample_entries(100), 4).unwrap();
        let p = t.prove_key_range(30, 60).unwrap();
        // Dropping an interior entry breaks the contiguous run → the
        // reconstructed root can no longer match.
        let mut tampered = p.clone();
        tampered.entries.remove(tampered.entries.len() / 2);
        assert!(tampered.verify(t.root(), 30, 60).is_err());
        // Truncating the run's tail hides the right bracket.
        let mut truncated = p.clone();
        truncated.entries.pop();
        let err = truncated.verify(t.root(), 30, 60).unwrap_err();
        assert!(
            matches!(
                err,
                MbTreeError::RootMismatch
                    | MbTreeError::RangeIncomplete(_)
                    | MbTreeError::Merkle(_)
            ),
            "{err:?}"
        );
        // Shifting the run start misaligns every leaf position.
        let mut shifted = p;
        shifted.first += 1;
        assert!(shifted.verify(t.root(), 30, 60).is_err());
    }

    #[test]
    fn key_range_proof_requires_brackets() {
        let t = MerkleBTree::build(sample_entries(100), 4).unwrap();
        // A run of genuine entries that simply stops early: positions
        // and digests are honest, but the last key is ≤ hi while leaves
        // remain to the right — the right-bracket check must fire.
        let entries: Vec<KeyedEntry> = (10..=20).map(|i| t.entry_at(i).unwrap()).collect();
        let merkle = t.tree().prove((10..=20).collect()).unwrap();
        let honest_but_short = KeyRangeProof {
            entries,
            first: 10,
            merkle,
        };
        // Keys at positions 10..=20 are 30..=60; query [30, 100].
        let err = honest_but_short.verify(t.root(), 30, 100).unwrap_err();
        assert!(matches!(err, MbTreeError::RangeIncomplete(_)), "{err:?}");
        // Same on the left: run starts past leaf 0 with first key ≥ lo.
        let entries: Vec<KeyedEntry> = (10..=20).map(|i| t.entry_at(i).unwrap()).collect();
        let merkle = t.tree().prove((10..=20).collect()).unwrap();
        let missing_left = KeyRangeProof {
            entries,
            first: 10,
            merkle,
        };
        let err = missing_left.verify(t.root(), 0, 60).unwrap_err();
        assert!(matches!(err, MbTreeError::RangeIncomplete(_)), "{err:?}");
    }

    #[test]
    fn key_range_proof_paged_matches_dense() {
        let dense = MerkleBTree::build(sample_entries(200), 8).unwrap();
        let (paged, pager) = paged_from_dense(&dense, 16);
        for (lo, hi) in [(0u64, 597u64), (90, 210), (91, 92), (600, 700)] {
            let a = dense.prove_key_range(lo, hi).unwrap();
            let b = paged.prove_key_range(lo, hi).unwrap();
            assert_eq!(a, b, "[{lo}, {hi}]");
            assert_eq!(
                a.verify(dense.root(), lo, hi).unwrap(),
                b.verify(paged.root(), lo, hi).unwrap()
            );
        }
        // A narrow range must not fault every entry page.
        let faults = pager.faults.load(std::sync::atomic::Ordering::Relaxed);
        assert!(faults < 4 * 13, "faulted {faults} entry pages");
    }

    #[test]
    fn paged_btree_entry_cache_is_bounded() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let dense = MerkleBTree::build(sample_entries(200), 8).unwrap();
        let entries = dense.dense_entries().unwrap().to_vec();
        let first_keys: Vec<u64> = entries.chunks(8).map(|c| c[0].key).collect();
        let pager = Arc::new(VecEntryPager {
            entries,
            page_entries: 8,
            faults: AtomicU64::new(0),
        });
        let evictions = Arc::new(AtomicU64::new(0));
        let paged = MerkleBTree::open_paged_with_cache(
            Arc::clone(&pager) as Arc<dyn EntryPager>,
            200,
            8,
            first_keys,
            dense.tree().clone(),
            crate::cache::PageCacheCfg {
                capacity: 3,
                evictions: Some(Arc::clone(&evictions)),
            },
        )
        .unwrap();
        for key in (0..200u64).map(|i| i * 3) {
            assert_eq!(paged.get(key), dense.get(key), "key {key}");
        }
        let faults = pager.faults.load(Ordering::Relaxed);
        let evicted = evictions.load(Ordering::Relaxed);
        assert!(evicted > 0, "sweep must overflow a 3-page cache");
        assert!(faults - evicted <= 3, "resident {}", faults - evicted);
    }

    #[test]
    fn update_value_matches_rebuild() {
        let mut es = sample_entries(100);
        let mut t = MerkleBTree::build(es.clone(), 4).unwrap();
        t.update_value(30, 123.0).unwrap();
        t.update_value(297, -1.5).unwrap();
        es[10].value = 123.0;
        es[99].value = -1.5;
        let fresh = MerkleBTree::build(es, 4).unwrap();
        assert_eq!(t.root(), fresh.root());
        assert_eq!(t.get(30), Some(123.0));
        let p = t.prove_keys(&[30, 297]).unwrap();
        assert_eq!(p, fresh.prove_keys(&[30, 297]).unwrap());
        assert!(matches!(
            t.update_value(31, 0.0),
            Err(MbTreeError::KeyNotFound(31))
        ));
    }

    #[test]
    fn paged_btree_is_read_only_but_densifiable() {
        let dense = MerkleBTree::build(sample_entries(50), 4).unwrap();
        let (mut paged, _) = paged_from_dense(&dense, 8);
        assert!(matches!(
            paged.update_value(0, 9.0),
            Err(MbTreeError::Merkle(MerkleError::ReadOnly))
        ));
        // Densify → mutate → identical to a dense rebuild.
        let entries = paged.all_entries().unwrap();
        assert_eq!(entries, dense.dense_entries().unwrap());
        let mut densified = MerkleBTree::build(entries, 4).unwrap();
        densified.update_value(0, 9.0).unwrap();
        assert_eq!(densified.get(0), Some(9.0));
    }

    #[test]
    fn negative_zero_and_zero_distinct_bits() {
        // f64 bit-encoding: -0.0 and 0.0 differ — encoding is canonical
        // per bit pattern, which is fine because owners never emit -0.0.
        let a = KeyedEntry { key: 1, value: 0.0 };
        let b = KeyedEntry {
            key: 1,
            value: -0.0,
        };
        assert_ne!(a.digest(), b.digest());
    }
}
