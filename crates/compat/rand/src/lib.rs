//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal, deterministic implementation of the `rand` API surface the
//! code actually uses: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits,
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! Determinism is the only hard requirement here (every experiment and
//! test seeds explicitly); the generator is not cryptographic.

/// Low-level generator interface: a source of random words.
pub trait Rng {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32);
impl_standard_uint!(i8 => next_u32, i16 => next_u32, i32 => next_u32);
impl_standard_uint!(u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type with uniform range sampling (mirrors rand's `SampleUniform`
/// so call-site type inference flows backward from the result type).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                // Widening-multiply mapping: bias ≤ 2⁻⁶⁴·span, irrelevant
                // at research scale and fully deterministic.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return <$t as Standard>::sample(rng);
                }
                let span = (high as i128 - low as i128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low < high, "cannot sample empty range");
        let f = <f64 as Standard>::sample(rng);
        let v = low + f * (high - low);
        // Guard against FP rounding landing exactly on `high`.
        if v >= high {
            low
        } else {
            v
        }
    }

    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low <= high, "cannot sample empty range");
        let f = <f64 as Standard>::sample(rng);
        low + f * (high - low)
    }
}

/// A range that can produce uniform values of `T`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A bool that is true with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngExt};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    pub mod index {
        //! Distinct-index sampling.

        use crate::{Rng, RngExt};

        /// A set of distinct indices in `[0, length)`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The `i`-th sampled index.
            pub fn index(&self, i: usize) -> usize {
                self.0[i]
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `[0, length)`
        /// via a partial Fisher–Yates pass.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-0.35..0.35);
            assert!((-0.35..0.35).contains(&f));
            let u = rng.random_range(1..u64::MAX);
            assert!((1..u64::MAX).contains(&u));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = sample(&mut rng, 50, 20);
        let mut v = idx.clone().into_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|&i| i < 50));
        assert_eq!(idx.len(), 20);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn take<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            use super::RngExt as _;
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = take(&mut rng);
    }
}
