//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal property-testing runner with proptest-compatible spelling
//! for the features the test-suite uses: the [`proptest!`] macro with a
//! `#![proptest_config(..)]` header, range strategies
//! (`0u64..5000`), [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros.
//!
//! Cases are generated from a fixed seed (deterministic across runs);
//! there is no shrinking — a failing case panics with its inputs
//! printed, which is enough to reproduce (inputs are also valid seeds
//! for a focused unit test).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!` — try another.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

/// Per-property driver: samples cases and reports failures.
pub struct Runner {
    cfg: ProptestConfig,
    rejects: u32,
}

impl Runner {
    /// A runner for one property.
    pub fn new(cfg: ProptestConfig) -> Self {
        Runner { cfg, rejects: 0 }
    }

    /// Number of cases to attempt.
    pub fn cases(&self) -> u32 {
        self.cfg.cases
    }

    /// The deterministic RNG for case `case`.
    pub fn rng_for(&self, property: &str, case: u32) -> StdRng {
        // Stable per (property, case) so failures reproduce exactly.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Records one case outcome, panicking on failure.
    pub fn handle(
        &mut self,
        property: &str,
        case: u32,
        result: Result<(), TestCaseError>,
        inputs: &[(&str, String)],
    ) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                self.rejects += 1;
                assert!(
                    self.rejects <= self.cfg.cases * 16,
                    "property {property}: too many rejected cases ({})",
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let args: Vec<String> = inputs
                    .iter()
                    .map(|(name, value)| format!("{name} = {value}"))
                    .collect();
                panic!(
                    "property {property} failed at case {case}: {msg}\n  inputs: {}",
                    args.join(", ")
                );
            }
        }
    }
}

/// A source of random values for one parameter.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;
    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

impl<T: Clone + std::fmt::Debug> Strategy for Vec<T> {
    type Value = T;
    /// Uniform choice from a fixed set of values.
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.is_empty(), "cannot sample from an empty choice set");
        self[rng.random_range(0..self.len())].clone()
    }
}

/// Just a value: always produces a clone of itself.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy producing `Vec`s of `element` with length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the runner can report inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?}): {}",
            stringify!($a),
            stringify!($b),
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?}): {}",
            stringify!($a),
            stringify!($b),
            a,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in prop::collection::vec(0usize..9, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::Runner::new(cfg);
                let mut case = 0u32;
                let mut accepted = 0u32;
                while accepted < runner.cases() {
                    let mut rng = runner.rng_for(stringify!($name), case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let inputs: Vec<(&str, String)> =
                        vec![$((stringify!($arg), format!("{:?}", $arg))),*];
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    let rejected = matches!(result, Err($crate::TestCaseError::Reject(_)));
                    runner.handle(stringify!($name), case, result, &inputs);
                    if !rejected {
                        accepted += 1;
                    }
                    case += 1;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u32..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn vec_strategy(v in prop::collection::vec(0usize..7, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 7));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
