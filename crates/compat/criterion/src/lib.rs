//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal harness with criterion-compatible spelling: benches are
//! plain binaries (`harness = false`), register functions via
//! [`criterion_group!`]/[`criterion_main!`], and use
//! [`Criterion::bench_function`] / [`Bencher::iter`].
//!
//! Measurement model: each benchmark is warmed up for
//! [`Criterion::warm_up_ms`], then timed over several samples whose
//! iteration counts target [`Criterion::measure_ms`] of wall clock
//! each; the **median** per-iteration time is reported. Set the
//! environment variable `SPNET_BENCH_FAST=1` to cut both windows for
//! smoke runs.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (API compatibility; the shim
/// always times the routine alone, running setup untimed per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Declared throughput of a benchmark, reported alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name` or bare name).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark context.
pub struct Criterion {
    /// Warmup window per benchmark (milliseconds).
    pub warm_up_ms: u64,
    /// Measurement window per sample (milliseconds).
    pub measure_ms: u64,
    /// Number of timed samples (median is reported).
    pub samples: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("SPNET_BENCH_FAST").is_ok_and(|v| v == "1");
        Criterion {
            warm_up_ms: if fast { 5 } else { 40 },
            measure_ms: if fast { 10 } else { 80 },
            samples: if fast { 3 } else { 7 },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.warm_up_ms, self.measure_ms, self.samples);
        f(&mut b);
        let m = b.finish(id, None);
        report(&m);
        self.results.push(m);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.c.warm_up_ms, self.c.measure_ms, self.c.samples);
        f(&mut b);
        let m = b.finish(id, self.throughput);
        report(&m);
        self.c.results.push(m);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(m: &Measurement) {
    let time = fmt_time(m.median_ns);
    match m.throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / m.median_ns * 1000.0; // ns → MB/s
            println!("bench {:<44} {:>12}/iter  {:>10.1} MB/s", m.id, time, mbps);
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / m.median_ns * 1e9;
            println!("bench {:<44} {:>12}/iter  {:>10.0} elem/s", m.id, time, eps);
        }
        None => println!("bench {:<44} {:>12}/iter", m.id, time),
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    recorded_ns: Vec<f64>,
}

impl Bencher {
    fn new(warm_up_ms: u64, measure_ms: u64, samples: usize) -> Self {
        Bencher {
            warm_up: Duration::from_millis(warm_up_ms),
            measure: Duration::from_millis(measure_ms),
            samples: samples.max(1),
            recorded_ns: Vec::new(),
        }
    }

    /// Benchmarks `routine`, timing it in adaptive batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup while estimating cost per iteration.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / iters_done as f64).max(1.0);
        let batch = ((self.measure.as_nanos() as f64 / est_ns).ceil() as u64).max(1);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.recorded_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        let warm_start = Instant::now();
        let mut timed_ns: f64 = 0.0;
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            timed_ns += t0.elapsed().as_nanos() as f64;
            iters_done += 1;
        }
        let est_ns = (timed_ns / iters_done as f64).max(1.0);
        let batch = ((self.measure.as_nanos() as f64 / est_ns).ceil() as u64).max(1);
        for _ in 0..self.samples {
            let mut sample_ns = 0.0;
            for _ in 0..batch {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                sample_ns += t0.elapsed().as_nanos() as f64;
            }
            self.recorded_ns.push(sample_ns / batch as f64);
        }
    }

    fn finish(mut self, id: String, throughput: Option<Throughput>) -> Measurement {
        assert!(
            !self.recorded_ns.is_empty(),
            "benchmark {id} never called iter/iter_batched"
        );
        self.recorded_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = self.recorded_ns[self.recorded_ns.len() / 2];
        Measurement {
            id,
            median_ns,
            throughput,
        }
    }
}

/// Re-export so `criterion::black_box` spelling works too.
pub use std::hint::black_box;

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            warm_up_ms: 1,
            measure_ms: 2,
            samples: 3,
            results: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns > 0.0);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion {
            warm_up_ms: 1,
            measure_ms: 1,
            samples: 1,
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Bytes(64));
            g.bench_function("x", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.measurements()[0].id, "grp/x");
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut b = Bencher::new(1, 1, 2);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        let m = b.finish("t".into(), None);
        assert!(m.median_ns >= 0.0);
    }
}
