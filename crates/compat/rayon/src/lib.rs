//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal data-parallelism shim with rayon-compatible spelling for
//! the patterns the workspace uses:
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = (0u64..64).collect::<Vec<_>>()
//!     .par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares[9], 81);
//! ```
//!
//! Execution model: the input slice is split into one contiguous chunk
//! per available core and mapped on scoped OS threads
//! (`std::thread::scope`), preserving input order in the output. This
//! is not a work-stealing pool — it is a deliberate, dependency-free
//! fallback with the same observable results.

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a slice: one chunk per thread.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("parallel_map worker filled every slot"))
        .collect()
}

/// A pending parallel iteration over `&[T]`.
pub struct ParIter<'a, T: Sync>(&'a [T]);

/// A pending parallel map stage.
pub struct ParMap<'a, T: Sync, F, R> {
    items: &'a [T],
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel (lazily; runs at
    /// `collect`/`for_each`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F, R>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.0,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _ = parallel_map(self.0, &f);
    }
}

impl<'a, T: Sync, F, R> ParMap<'a, T, F, R>
where
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map in parallel and collects the results in input
    /// order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Rayon-style entry point on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type iterated over.
    type Item: Sync + 'a;
    /// Starts a parallel iteration borrowing the data.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self.as_slice())
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join arm panicked"))
    })
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn for_each_runs_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        items.par_iter().for_each(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 257);
    }
}
