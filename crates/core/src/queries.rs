//! Verified **range queries**: every node within distance `d` of a
//! source, with a completeness certificate.
//!
//! A plain shortest-path proof certifies one distance; a range answer
//! additionally claims a *set* is exhaustive, so omission — not
//! forgery — is the attack to defeat. The certificate here works for
//! **all four methods** through one generic path:
//!
//! * the provider ships the claimed members' extended tuples as a pool
//!   under one Merkle cover (the same ΓT machinery as batches), and
//! * the client re-runs Dijkstra **restricted to the claimed set**,
//!   checking every relaxation that would *escape* the set: if any
//!   claimed member `u` has an authenticated edge to an unclaimed node
//!   `w` with `dist(u) + w(u,w) ≤ d`, the set provably omits a member
//!   ([`VerifyError::RangeIncomplete`]).
//!
//! Soundness: let `m` be an omitted true member of minimal distance.
//! Every node on `m`'s shortest path before `m` has strictly smaller
//! distance, hence is a claimed member (by `m`'s minimality) whose
//! restricted-Dijkstra distance equals its true distance (its own
//! shortest path lies entirely in the claimed set, same argument). The
//! relaxation from `m`'s path predecessor then reaches `m` at its true
//! distance `≤ d` — caught. Tuples are authenticated against the
//! owner-signed root, so the adjacency the escape check walks cannot
//! be trimmed.
//!
//! Hint-backed methods layer their own attestation on top through
//! [`AuthMethod::prove_range_aux`](crate::methods::AuthMethod::prove_range_aux):
//! FULL re-certifies every member distance under its signed distance
//! tree (one pooled row cover), and the signed method code dispatches
//! which aux shape the client accepts — a provider cannot downgrade.

use crate::ads::SignedRoot;
use crate::batch::BatchAux;
use crate::client::Client;
use crate::error::{ProviderError, VerifyError};
use crate::methods::dij::RADIUS_SLACK;
use crate::methods::{MethodParams, PinnedAux, VerifyCtx};
use crate::proof::IntegrityProof;
use crate::provider::ServiceProvider;
use crate::tuple::ExtendedTuple;
use spnet_crypto::digest::Digest;
use spnet_graph::ofloat::OrderedF64;
use spnet_graph::path::close;
use spnet_graph::search::with_thread_workspace;
use spnet_graph::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// A provider's answer to a range query `(source, radius)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeAnswer {
    /// The queried source node (echoed; the client checks it).
    pub source: NodeId,
    /// The queried radius (echoed; the client checks it bit-exactly,
    /// so a shrunk radius is rejected before any set reasoning).
    pub radius: f64,
    /// The claimed result set `{(v, dist(source, v))}`, strictly
    /// ascending by node id.
    pub members: Vec<(NodeId, f64)>,
    /// The members' extended tuples, parallel to `members` (shared
    /// handles into the provider's ADS — no deep copies).
    pub pool: Vec<Arc<ExtendedTuple>>,
    /// One Merkle cover authenticating the whole pool (positions
    /// parallel to `pool`).
    pub integrity: IntegrityProof,
    /// Method-specific attestation (FULL: pooled row proofs under the
    /// signed distance root; others: nothing beyond the pool).
    pub aux: BatchAux,
}

impl RangeAnswer {
    /// Number of claimed members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Serialized size in bytes (members + pool tuples + ΓT + aux) —
    /// the certificate cost PERFORMANCE.md §9 reports.
    pub fn size_bytes(&self) -> usize {
        let mut e = crate::enc::Encoder::new();
        for t in &self.pool {
            t.encode(&mut e);
        }
        self.members.len() * 12 + e.len() + self.integrity.size_bytes() + self.aux.size_bytes()
    }
}

impl ServiceProvider {
    /// Answers a range query: the set `{v : dist(source, v) ≤ radius}`
    /// with its completeness certificate.
    ///
    /// Membership uses the same float slack as the Lemma 1 ball
    /// (`RADIUS_SLACK`, ε = 1e-9): nodes within `radius · (1 + ε)` are
    /// included, so clients summing weights in a different order never
    /// flag an honest boundary node as missing.
    pub fn answer_range(&self, source: NodeId, radius: f64) -> Result<RangeAnswer, ProviderError> {
        let g = &self.package.graph;
        if g.check_node(source).is_err() {
            return Err(ProviderError::UnknownNode(source));
        }
        if !radius.is_finite() || radius < 0.0 {
            return Err(ProviderError::ProofAssembly(
                "range radius must be finite and non-negative".into(),
            ));
        }
        let slack_radius = radius * (1.0 + RADIUS_SLACK);
        let members: Vec<(NodeId, f64)> = with_thread_workspace(|ws| {
            let view = ws.ball(g, source, slack_radius);
            view.settled_nodes()
                .filter(|&v| view.dist(v) <= slack_radius)
                .map(|v| (v, view.dist(v)))
                .collect()
        });
        let method = self.package.hints.method();
        let aux = method.prove_range_aux(&self.package, source, &members)?;
        let nodes: Vec<NodeId> = members.iter().map(|&(v, _)| v).collect();
        let integrity = self.build_integrity(&nodes)?;
        let pool = nodes
            .iter()
            .map(|&v| self.package.ads.tuple_shared(v))
            .collect();
        Ok(RangeAnswer {
            source,
            radius,
            members,
            pool,
            integrity,
            aux,
        })
    }
}

impl Client {
    /// Verifies a range answer: authenticity of every shipped tuple,
    /// the method's aux attestation, exactness of every claimed
    /// distance, and — the range-specific part — **completeness** of
    /// the claimed set. Returns the verified `(node, distance)` list.
    pub fn verify_range(
        &self,
        source: NodeId,
        radius: f64,
        answer: &RangeAnswer,
    ) -> Result<Vec<(NodeId, f64)>, VerifyError> {
        self.verify_range_impl(source, radius, answer, None, None)
    }

    /// Like [`Self::verify_range`] against a session-pinned signed
    /// root (byte equality instead of a per-answer RSA check; see
    /// [`Client::verify_pinned`] for the pinning contract).
    pub fn verify_range_pinned(
        &self,
        source: NodeId,
        radius: f64,
        answer: &RangeAnswer,
        pinned: &SignedRoot,
        pins: Option<&PinnedAux>,
    ) -> Result<Vec<(NodeId, f64)>, VerifyError> {
        self.verify_range_impl(source, radius, answer, Some(pinned), pins)
    }

    fn verify_range_impl(
        &self,
        source: NodeId,
        radius: f64,
        answer: &RangeAnswer,
        pinned: Option<&SignedRoot>,
        pins: Option<&PinnedAux>,
    ) -> Result<Vec<(NodeId, f64)>, VerifyError> {
        // --- the echoed query must be the client's query. --------------
        if answer.source != source {
            return Err(VerifyError::WrongEndpoints {
                expected: (source, source),
                got: (answer.source, answer.source),
            });
        }
        if answer.radius.to_bits() != radius.to_bits() {
            return Err(VerifyError::RangeRadiusMismatch {
                requested: radius,
                answered: answer.radius,
            });
        }
        // --- ΓT: authenticate the pool once. ---------------------------
        match pinned {
            Some(root) => {
                if answer.integrity.signed_root != *root {
                    return Err(VerifyError::MetaMismatch(
                        "signed root differs from pinned session root",
                    ));
                }
            }
            None => {
                if !answer.integrity.signed_root.verify(self.public_key()) {
                    return Err(VerifyError::BadSignature);
                }
            }
        }
        let params = MethodParams::decode(&answer.integrity.signed_root.meta.params)
            .map_err(|_| VerifyError::MetaMismatch("undecodable method params"))?;
        if answer.pool.len() != answer.members.len()
            || answer.pool.len() != answer.integrity.positions.len()
        {
            return Err(VerifyError::MalformedIntegrityProof(
                "members, pool and positions must be parallel".into(),
            ));
        }
        for (t, &(v, _)) in answer.pool.iter().zip(&answer.members) {
            if t.id != v {
                return Err(VerifyError::TupleIdMismatch {
                    expected: v,
                    got: t.id,
                });
            }
        }
        if answer.members.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(VerifyError::MalformedIntegrityProof(
                "range members not strictly ascending".into(),
            ));
        }
        let leaves: Vec<(usize, Digest)> = answer
            .pool
            .iter()
            .zip(&answer.integrity.positions)
            .map(|(t, &p)| (p as usize, t.digest()))
            .collect();
        let root = answer
            .integrity
            .merkle
            .reconstruct_root(&leaves)
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if root != answer.integrity.signed_root.root {
            return Err(VerifyError::RootMismatch);
        }
        // --- method aux (signed-method-dispatched, downgrade-proof). ---
        let method = params.method();
        let ctx = VerifyCtx {
            pk: self.public_key(),
            pins,
        };
        method.verify_range_aux(&ctx, &params, &answer.aux, source, &answer.members)?;
        // --- completeness + distance exactness. ------------------------
        let map: HashMap<NodeId, &ExtendedTuple> =
            answer.pool.iter().map(|t| (t.id, &**t)).collect();
        if !map.contains_key(&source) {
            // dist(source, source) = 0 ≤ radius, so the source itself
            // is always a member of an honest answer.
            return Err(VerifyError::RangeIncomplete {
                node: source,
                dist: 0.0,
                radius,
            });
        }
        let slack_radius = radius * (1.0 + RADIUS_SLACK);
        let recomputed = escape_checked_dijkstra(&map, source, radius)?;
        for &(v, claimed) in &answer.members {
            let Some(&d) = recomputed.get(&v) else {
                // Unreachable within the claimed set: a padded member
                // with no certified path (its claimed distance cannot
                // be trusted).
                return Err(VerifyError::RangeOverclaim {
                    node: v,
                    dist: f64::INFINITY,
                    radius,
                });
            };
            if d > slack_radius {
                return Err(VerifyError::RangeOverclaim {
                    node: v,
                    dist: d,
                    radius,
                });
            }
            if !close(claimed, d) {
                return Err(VerifyError::RangeDistanceMismatch {
                    node: v,
                    claimed,
                    recomputed: d,
                });
            }
        }
        Ok(answer.members.clone())
    }
}

/// Dijkstra restricted to the claimed member set, flagging any
/// relaxation that escapes it within the radius. Distances are final
/// (every popped node is settled), so an escape `dist(u) + w ≤ radius`
/// is a *proof* the unclaimed target belongs to the true range set.
fn escape_checked_dijkstra(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    source: NodeId,
    radius: f64,
) -> Result<HashMap<NodeId, f64>, VerifyError> {
    let mut dist: HashMap<NodeId, f64> = HashMap::with_capacity(tuples.len());
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(Reverse((OrderedF64::new(0.0), source.0)));
    while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
        let v = NodeId(v);
        if d > *dist.get(&v).unwrap_or(&f64::INFINITY) {
            continue; // stale
        }
        let t = tuples[&v]; // only member nodes are ever pushed
        for &(u, w) in &t.adj {
            let nd = d + w;
            if !tuples.contains_key(&u) {
                if nd <= radius {
                    return Err(VerifyError::RangeIncomplete {
                        node: u,
                        dist: nd,
                        radius,
                    });
                }
                continue;
            }
            if nd < *dist.get(&u).unwrap_or(&f64::INFINITY) {
                dist.insert(u, nd);
                heap.push(Reverse((OrderedF64::new(nd), u.0)));
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;
    use spnet_graph::search::with_thread_workspace as ws;
    use spnet_graph::Graph;

    fn deploy(method: MethodConfig, seed: u64) -> (Graph, ServiceProvider, Client) {
        let g = grid_network(10, 10, 1.15, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        (
            g,
            ServiceProvider::new(p.package),
            Client::new(p.public_key),
        )
    }

    fn all_methods() -> Vec<MethodConfig> {
        vec![
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 8,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ]
    }

    /// Unverified reference recomputation: the true range set.
    fn reference_range(g: &Graph, source: NodeId, radius: f64) -> Vec<(NodeId, f64)> {
        ws(|w| {
            let view = w.sssp(g, source);
            (0..g.num_nodes() as u32)
                .map(NodeId)
                .filter(|&v| view.dist(v) <= radius)
                .map(|v| (v, view.dist(v)))
                .collect()
        })
    }

    #[test]
    fn range_matches_reference_for_every_method() {
        for method in all_methods() {
            let (g, provider, client) = deploy(method.clone(), 3100);
            // Grid coordinates span [0..10,000]², so hop weights are
            // ≈ 1,100 — these radii cover a few rings plus the
            // degenerate source-only case.
            for (source, radius) in [
                (NodeId(0), 3_000.0),
                (NodeId(55), 5_500.0),
                (NodeId(99), 0.0),
            ] {
                let answer = provider.answer_range(source, radius).unwrap();
                let verified = client.verify_range(source, radius, &answer).unwrap();
                let truth = reference_range(&g, source, radius);
                assert_eq!(
                    verified.len(),
                    truth.len(),
                    "{}: ({source}, {radius})",
                    method.name()
                );
                for (&(v, d), &(tv, td)) in verified.iter().zip(&truth) {
                    assert_eq!(v, tv, "{}", method.name());
                    assert!(
                        (d - td).abs() <= 1e-9 * td.max(1.0),
                        "{}: {v} claimed {d} vs truth {td}",
                        method.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dropped_member_rejected_for_every_method() {
        for method in all_methods() {
            let (_, provider, client) = deploy(method.clone(), 3101);
            let (source, radius) = (NodeId(0), 4_000.0);
            let honest = provider.answer_range(source, radius).unwrap();
            assert!(honest.members.len() > 2, "need an interior member");
            // Drop one non-source member (keeping members/pool/positions
            // parallel — the strongest attack shape).
            let mut evil = honest.clone();
            let drop_at = evil.members.len() / 2;
            evil.members.remove(drop_at);
            evil.pool.remove(drop_at);
            evil.integrity.positions.remove(drop_at);
            let err = client.verify_range(source, radius, &evil).unwrap_err();
            assert!(
                matches!(
                    err,
                    VerifyError::RangeIncomplete { .. }
                        | VerifyError::MalformedIntegrityProof(_)
                        | VerifyError::RootMismatch
                        | VerifyError::MissingDistanceKey { .. }
                ),
                "{}: {err}",
                method.name()
            );
        }
    }

    #[test]
    fn shrunk_radius_rejected() {
        for method in all_methods() {
            let (_, provider, client) = deploy(method.clone(), 3102);
            let (source, radius) = (NodeId(0), 4_000.0);
            let mut evil = provider.answer_range(source, radius).unwrap();
            evil.radius = radius * 0.5;
            assert!(
                matches!(
                    client.verify_range(source, radius, &evil),
                    Err(VerifyError::RangeRadiusMismatch { .. })
                ),
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn tampered_member_distance_rejected() {
        for method in all_methods() {
            let (_, provider, client) = deploy(method.clone(), 3103);
            let (source, radius) = (NodeId(0), 4_000.0);
            let mut evil = provider.answer_range(source, radius).unwrap();
            let last = evil.members.len() - 1;
            evil.members[last].1 *= 0.5;
            assert!(
                client.verify_range(source, radius, &evil).is_err(),
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn tampered_pool_tuple_rejected() {
        for method in all_methods() {
            let (_, provider, client) = deploy(method.clone(), 3104);
            let (source, radius) = (NodeId(0), 4_000.0);
            let mut evil = provider.answer_range(source, radius).unwrap();
            Arc::make_mut(&mut evil.pool[0]).adj[0].1 *= 0.5;
            assert_eq!(
                client.verify_range(source, radius, &evil),
                Err(VerifyError::RootMismatch),
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn full_subgraph_downgrade_rejected() {
        let (_, provider, client) = deploy(
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            3105,
        );
        let (source, radius) = (NodeId(0), 4_000.0);
        let mut evil = provider.answer_range(source, radius).unwrap();
        evil.aux = BatchAux::Subgraph;
        assert_eq!(
            client.verify_range(source, radius, &evil),
            Err(VerifyError::MetaMismatch(
                "batch proof shape does not match signed method"
            ))
        );
    }

    #[test]
    fn padded_member_rejected() {
        // A provider padding the set with a far-away node (claiming a
        // small distance) must be caught.
        let (_, provider, client) = deploy(MethodConfig::Dij, 3106);
        let (source, radius) = (NodeId(0), 3.0);
        let honest = provider.answer_range(source, radius).unwrap();
        let outside = (0..100u32)
            .map(NodeId)
            .find(|v| !honest.members.iter().any(|&(m, _)| m == *v))
            .expect("some node outside the ball");
        let mut evil = provider.answer_range(source, radius).unwrap();
        let pos = evil.members.iter().position(|&(m, _)| m > outside);
        let tuple = provider.package().ads.tuple_shared(outside);
        let position = provider.package().ads.position(outside);
        match pos {
            Some(i) => {
                evil.members.insert(i, (outside, radius * 0.5));
                evil.pool.insert(i, tuple);
                evil.integrity.positions.insert(i, position);
            }
            None => {
                evil.members.push((outside, radius * 0.5));
                evil.pool.push(tuple);
                evil.integrity.positions.push(position);
            }
        }
        // The forged Merkle cover no longer matches, or (with a
        // correctly extended cover) the distance checks fire; either
        // way the padded set is rejected.
        assert!(client.verify_range(source, radius, &evil).is_err());
    }

    #[test]
    fn wrong_source_and_bad_radius_rejected() {
        let (_, provider, client) = deploy(MethodConfig::Dij, 3107);
        let answer = provider.answer_range(NodeId(0), 3.0).unwrap();
        assert!(matches!(
            client.verify_range(NodeId(1), 3.0, &answer),
            Err(VerifyError::WrongEndpoints { .. })
        ));
        assert!(provider.answer_range(NodeId(0), -1.0).is_err());
        assert!(provider.answer_range(NodeId(0), f64::NAN).is_err());
        assert!(matches!(
            provider.answer_range(NodeId(999), 1.0),
            Err(ProviderError::UnknownNode(_))
        ));
    }

    #[test]
    fn zero_radius_yields_the_source_alone() {
        let (_, provider, client) = deploy(MethodConfig::Dij, 3108);
        let answer = provider.answer_range(NodeId(7), 0.0).unwrap();
        let verified = client.verify_range(NodeId(7), 0.0, &answer).unwrap();
        assert_eq!(verified, vec![(NodeId(7), 0.0)]);
    }
}
