//! Authenticated data structures over the network and signed roots.
//!
//! Section III-B: the data owner fixes a graph-node ordering `O`,
//! builds a Merkle tree over the ordered extended-tuple digests, and
//! signs the root. The signature binds the root *and* its metadata
//! (tag, geometry, method parameters), so a provider can neither swap
//! trees nor lie about parameters like the quantization step λ.

use crate::enc::Encoder;
use crate::tuple::ExtendedTuple;
use spnet_crypto::digest::{hash_bytes, Digest};
use spnet_crypto::merkle::{MerkleError, MerkleProof, MerkleTree};
use spnet_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use spnet_graph::order::NodeOrdering;
use spnet_graph::{Graph, NodeId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a signed root authenticates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdsTag {
    /// The network Merkle tree over extended-tuples.
    Network = 1,
    /// The FULL method's all-pairs distance tree.
    Distance = 2,
    /// The HYP method's hyper-edge weight tree.
    HyperEdges = 3,
    /// The HYP method's cell directory (cell id → node count).
    CellDirectory = 4,
    /// A signed point-of-interest set (node id → POI payload), used by
    /// the verified k-nearest-POI operator in `spnet-queries`.
    Poi = 5,
}

impl AdsTag {
    fn code(self) -> u8 {
        self as u8
    }
}

/// Metadata bound into a root signature.
#[derive(Debug, Clone, PartialEq)]
pub struct AdsMeta {
    /// Which structure this is.
    pub tag: AdsTag,
    /// Leaf count of the tree.
    pub leaf_count: u64,
    /// Tree fanout.
    pub fanout: u32,
    /// Method parameters the client must trust (e.g. λ for LDM),
    /// canonical-encoded by the method module.
    pub params: Vec<u8>,
}

impl AdsMeta {
    /// The signature pre-image `H(root ∘ meta)`.
    pub fn signing_digest(&self, root: Digest) -> Digest {
        let mut e = Encoder::new();
        e.put_raw(root.as_bytes());
        e.put_u8(self.tag.code());
        e.put_u64(self.leaf_count);
        e.put_u32(self.fanout);
        e.put_bytes(&self.params);
        hash_bytes(e.bytes())
    }
}

/// An owner-signed ADS root: root digest + metadata + RSA signature.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedRoot {
    /// The Merkle root being signed.
    pub root: Digest,
    /// The metadata bound into the signature.
    pub meta: AdsMeta,
    /// RSA signature over [`AdsMeta::signing_digest`].
    pub signature: RsaSignature,
}

impl SignedRoot {
    /// Owner-side: signs `root` with `meta`.
    pub fn sign(keypair: &RsaKeyPair, root: Digest, meta: AdsMeta) -> Self {
        let signature = keypair.sign(&meta.signing_digest(root));
        SignedRoot {
            root,
            meta,
            signature,
        }
    }

    /// Client-side: checks the signature against the owner's key.
    pub fn verify(&self, pk: &RsaPublicKey) -> bool {
        pk.verify(&self.meta.signing_digest(self.root), &self.signature)
    }

    /// Byte size of the signed root when shipped in a proof.
    pub fn size_bytes(&self) -> usize {
        32 + 1 + 8 + 4 + 4 + self.meta.params.len() + self.signature.size_bytes()
    }
}

/// The network ADS: ordering + Merkle tree + per-node tuples.
///
/// Held by the service provider; the owner only needs it long enough to
/// sign the root.
#[derive(Debug, Clone)]
pub struct NetworkAds {
    /// Leaf position → node id.
    order: Vec<NodeId>,
    /// Node id → leaf position.
    position: Vec<u32>,
    /// Tuples indexed by node id, reference-counted so proofs share
    /// them instead of deep-cloning adjacency lists per query.
    tuples: Vec<Arc<ExtendedTuple>>,
    /// Merkle tree over ordered tuple digests.
    tree: MerkleTree,
}

impl NetworkAds {
    /// Builds the ADS from per-node tuples (indexed by node id).
    ///
    /// # Panics
    /// Panics if `tuples.len() != g.num_nodes()` or the graph is empty.
    pub fn build(
        g: &Graph,
        tuples: Vec<ExtendedTuple>,
        ordering: NodeOrdering,
        fanout: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(tuples.len(), g.num_nodes(), "one tuple per node");
        let order = ordering.order(g, seed);
        let mut position = vec![0u32; order.len()];
        for (i, v) in order.iter().enumerate() {
            position[v.index()] = i as u32;
        }
        let leaves: Vec<Digest> = order.iter().map(|v| tuples[v.index()].digest()).collect();
        let tree = MerkleTree::build(leaves, fanout).expect("non-empty network");
        NetworkAds {
            order,
            position,
            tuples: tuples.into_iter().map(Arc::new).collect(),
            tree,
        }
    }

    /// Reassembles an ADS from persisted parts (snapshot load): the
    /// leaf ordering, the per-node tuples, and the Merkle tree itself.
    /// Returns `None` when the parts are structurally inconsistent
    /// (length mismatch, or `order` is not a permutation of the node
    /// ids) — the caller maps that to a typed snapshot error.
    pub(crate) fn from_parts(
        order: Vec<NodeId>,
        tuples: Vec<Arc<ExtendedTuple>>,
        tree: MerkleTree,
    ) -> Option<Self> {
        let n = tuples.len();
        if order.len() != n || tree.leaf_count() != n || n == 0 {
            return None;
        }
        let mut position = vec![u32::MAX; n];
        for (i, v) in order.iter().enumerate() {
            let slot = position.get_mut(v.index())?;
            if *slot != u32::MAX {
                return None; // duplicate node in the ordering
            }
            *slot = i as u32;
        }
        Some(NetworkAds {
            order,
            position,
            tuples,
            tree,
        })
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Leaf position → node id (the owner's fixed ordering `O`).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The underlying Merkle tree (read-only; snapshot save walks its
    /// dense levels).
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Number of leaves (= |V|).
    pub fn leaf_count(&self) -> usize {
        self.order.len()
    }

    /// Tree fanout.
    pub fn fanout(&self) -> usize {
        self.tree.fanout()
    }

    /// The extended-tuple of node `v`.
    pub fn tuple(&self, v: NodeId) -> &ExtendedTuple {
        &self.tuples[v.index()]
    }

    /// A shared handle to node `v`'s tuple — what proofs ship. Cloning
    /// the handle is a reference-count bump, not a deep copy of the
    /// adjacency list.
    pub fn tuple_shared(&self, v: NodeId) -> Arc<ExtendedTuple> {
        Arc::clone(&self.tuples[v.index()])
    }

    /// Leaf position of node `v` under the ordering.
    pub fn position(&self, v: NodeId) -> u32 {
        self.position[v.index()]
    }

    /// Replaces a node's tuple and patches its Merkle path in place
    /// (dynamic updates; see `spnet_core::update`).
    pub fn replace_tuple(&mut self, v: NodeId, tuple: ExtendedTuple) -> Result<(), MerkleError> {
        let pos = self.position(v) as usize;
        let digest = tuple.digest();
        self.tuples[v.index()] = Arc::new(tuple);
        self.tree.update_leaf(pos, digest)
    }

    /// Builds the Merkle cover proof for a set of nodes.
    pub fn prove_nodes(
        &self,
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> Result<MerkleProof, MerkleError> {
        let idx: BTreeSet<usize> = nodes
            .into_iter()
            .map(|v| self.position[v.index()] as usize)
            .collect();
        self.tree.prove(idx)
    }

    /// Total digests stored — the ADS storage-overhead metric.
    pub fn storage_digests(&self) -> usize {
        self.tree.total_digests()
    }

    /// The signed-meta skeleton for this tree (params filled by the
    /// method module).
    pub fn meta(&self, params: Vec<u8>) -> AdsMeta {
        AdsMeta {
            tag: AdsTag::Network,
            leaf_count: self.leaf_count() as u64,
            fanout: self.fanout() as u32,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn ads(fanout: usize, ordering: NodeOrdering) -> (Graph, NetworkAds) {
        let g = grid_network(8, 8, 1.15, 200);
        let tuples: Vec<ExtendedTuple> = g.nodes().map(|v| ExtendedTuple::base(&g, v)).collect();
        let a = NetworkAds::build(&g, tuples, ordering, fanout, 201);
        (g, a)
    }

    #[test]
    fn positions_invert_order() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        for v in 0..a.leaf_count() as u32 {
            let pos = a.position(NodeId(v));
            assert_eq!(a.order[pos as usize], NodeId(v));
        }
    }

    #[test]
    fn proof_round_trip_through_positions() {
        let (g, a) = ads(3, NodeOrdering::Dfs);
        let nodes: Vec<NodeId> = g.nodes().take(5).collect();
        let proof = a.prove_nodes(nodes.clone()).unwrap();
        let leaves: Vec<(usize, Digest)> = nodes
            .iter()
            .map(|&v| (a.position(v) as usize, a.tuple(v).digest()))
            .collect();
        assert_eq!(proof.reconstruct_root(&leaves).unwrap(), a.root());
    }

    #[test]
    fn signed_root_verifies() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        let mut rng = StdRng::seed_from_u64(202);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let signed = SignedRoot::sign(&kp, a.root(), a.meta(vec![1, 2, 3]));
        assert!(signed.verify(kp.public_key()));
    }

    #[test]
    fn signature_binds_params() {
        // Changing method params (e.g. λ) must invalidate the signature.
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        let mut rng = StdRng::seed_from_u64(203);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let mut signed = SignedRoot::sign(&kp, a.root(), a.meta(vec![1, 2, 3]));
        signed.meta.params = vec![9, 9, 9];
        assert!(!signed.verify(kp.public_key()));
    }

    #[test]
    fn signature_binds_geometry() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        let mut rng = StdRng::seed_from_u64(204);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let mut signed = SignedRoot::sign(&kp, a.root(), a.meta(vec![]));
        signed.meta.fanout = 16;
        assert!(!signed.verify(kp.public_key()));
        let mut signed2 = SignedRoot::sign(&kp, a.root(), a.meta(vec![]));
        signed2.meta.leaf_count += 1;
        assert!(!signed2.verify(kp.public_key()));
    }

    #[test]
    fn signature_binds_tag() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        let mut rng = StdRng::seed_from_u64(205);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let mut signed = SignedRoot::sign(&kp, a.root(), a.meta(vec![]));
        signed.meta.tag = AdsTag::Distance;
        assert!(!signed.verify(kp.public_key()));
    }

    #[test]
    fn different_orderings_different_roots() {
        let (_, a1) = ads(2, NodeOrdering::Hilbert);
        let (_, a2) = ads(2, NodeOrdering::Bfs);
        assert_ne!(a1.root(), a2.root());
    }

    #[test]
    fn different_fanouts_different_roots() {
        let (_, a1) = ads(2, NodeOrdering::Hilbert);
        let (_, a2) = ads(4, NodeOrdering::Hilbert);
        assert_ne!(a1.root(), a2.root());
    }

    #[test]
    fn tampered_tuple_breaks_reconstruction() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        let v = NodeId(10);
        let proof = a.prove_nodes([v]).unwrap();
        let mut evil = a.tuple(v).clone();
        evil.adj[0].1 *= 0.5; // halve a road length
        let root = proof
            .reconstruct_root(&[(a.position(v) as usize, evil.digest())])
            .unwrap();
        assert_ne!(root, a.root());
    }

    #[test]
    fn storage_accounting() {
        let (_, a) = ads(2, NodeOrdering::Hilbert);
        // 64 leaves binary: 64+32+16+8+4+2+1 = 127 digests.
        assert_eq!(a.storage_digests(), 127);
    }
}
