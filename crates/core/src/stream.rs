//! Streaming batch serving: pooled chunks, verified incrementally.
//!
//! `answer_batch` amortizes beautifully but is all-or-nothing: the
//! client sees no verified answer until the whole batch arrived. For
//! heavy interactive traffic (the ROADMAP's north star) a provider
//! wants to **stream**: prove pooled chunks of the query list and ship
//! each as soon as it is ready, while the client verifies and releases
//! answers incrementally. This module supplies both halves:
//!
//! * [`AnswerStream`] — a lazy provider-side iterator over encoded
//!   [`StreamFrame`]s (`Header`, `Chunk`…, `End`), each chunk a
//!   [`BatchAnswer`](crate::batch::BatchAnswer) over the next slice of
//!   queries;
//! * [`StreamVerifier`] — a client-side state machine fed one frame at
//!   a time, yielding the verified answers of each chunk and enforcing
//!   the framing protocol (header first, contiguous in-order chunks,
//!   an `End` frame binding the chunk count, full coverage of the
//!   query list). Truncated, reordered, duplicated or tampered streams
//!   fail with typed [`StreamError`]s.
//!
//! The [`crate::service::Session`] facade couples the two in-process
//! (through the actual wire encoding, so the bytes path is exercised
//! end to end); a networked deployment ships the frames instead.

use crate::ads::SignedRoot;
use crate::client::Client;
use crate::enc::DecodeError;
use crate::error::{ProviderError, VerifyError};
use crate::methods::PinnedAux;
use crate::provider::ServiceProvider;
use crate::wire::{decode_frame, encode_frame, StreamFrame};
use spnet_graph::{NodeId, Path};

/// Default queries per pooled chunk ([`ServiceProvider::answer_stream`]
/// callers can override).
pub const DEFAULT_CHUNK_LEN: usize = 16;

/// Why a stream was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A frame failed to decode (truncation, version mismatch, bad
    /// tag).
    Decode(DecodeError),
    /// A chunk's batch answer failed cryptographic verification.
    Verify(VerifyError),
    /// The framing protocol was violated (out-of-order chunk, missing
    /// header, duplicate header, frame after end, …).
    Protocol(&'static str),
    /// The stream ended before covering every query.
    Truncated {
        /// Queries verified before the stream ended.
        verified: usize,
        /// Queries the stream promised to answer.
        expected: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Decode(e) => write!(f, "stream frame decode failed: {e}"),
            StreamError::Verify(e) => write!(f, "stream chunk rejected: {e}"),
            StreamError::Protocol(m) => write!(f, "stream protocol violation: {m}"),
            StreamError::Truncated { verified, expected } => {
                write!(
                    f,
                    "stream truncated: {verified} of {expected} queries verified"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

impl From<VerifyError> for StreamError {
    fn from(e: VerifyError) -> Self {
        StreamError::Verify(e)
    }
}

/// Provider-side stage of a stream.
enum ProduceStage {
    Header,
    Chunks,
    End,
    Done,
}

/// A lazy iterator of encoded stream frames: chunk `i` is proven only
/// when the consumer pulls it, so the first verified answers leave the
/// provider after one chunk's work instead of the whole batch's.
///
/// NOTE: `service::SessionStream` drives the same Header → Chunks →
/// End framing with per-chunk epoch re-checks; a framing change here
/// (new frame kind, header field, chunking rule) must be mirrored
/// there, and [`StreamVerifier`] enforces the result for both.
pub struct AnswerStream<'a> {
    provider: &'a ServiceProvider,
    queries: &'a [(NodeId, NodeId)],
    chunk_len: usize,
    next: usize,
    chunks_emitted: u32,
    stage: ProduceStage,
}

impl ServiceProvider {
    /// Serves `queries` as a lazy stream of encoded frames: a header,
    /// one pooled [`BatchAnswer`](crate::batch::BatchAnswer) chunk per
    /// `chunk_len` queries (the last chunk may be smaller), and an end
    /// frame. `chunk_len` is clamped to at least 1.
    pub fn answer_stream<'a>(
        &'a self,
        queries: &'a [(NodeId, NodeId)],
        chunk_len: usize,
    ) -> AnswerStream<'a> {
        AnswerStream {
            provider: self,
            queries,
            chunk_len: chunk_len.max(1),
            next: 0,
            chunks_emitted: 0,
            stage: ProduceStage::Header,
        }
    }
}

impl Iterator for AnswerStream<'_> {
    type Item = Result<Vec<u8>, ProviderError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.stage {
            ProduceStage::Header => {
                self.stage = if self.queries.is_empty() {
                    ProduceStage::End
                } else {
                    ProduceStage::Chunks
                };
                Some(Ok(encode_frame(&StreamFrame::Header {
                    total_queries: self.queries.len() as u32,
                    chunk_len: self.chunk_len as u32,
                    method_code: self.provider.package().hints.method().params_code(),
                })))
            }
            ProduceStage::Chunks => {
                let start = self.next;
                let end = (start + self.chunk_len).min(self.queries.len());
                let batch = match self.provider.answer_batch_impl(&self.queries[start..end]) {
                    Ok(b) => b,
                    Err(e) => {
                        self.stage = ProduceStage::Done;
                        return Some(Err(e));
                    }
                };
                self.next = end;
                self.chunks_emitted += 1;
                if end == self.queries.len() {
                    self.stage = ProduceStage::End;
                }
                Some(Ok(encode_frame(&StreamFrame::Chunk {
                    start: start as u32,
                    batch: Box::new(batch),
                })))
            }
            ProduceStage::End => {
                self.stage = ProduceStage::Done;
                Some(Ok(encode_frame(&StreamFrame::End {
                    total_chunks: self.chunks_emitted,
                })))
            }
            ProduceStage::Done => None,
        }
    }
}

/// One verified answer released by a stream chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedItem {
    /// Index of the query in the submitted query list.
    pub index: usize,
    /// The provider's reported shortest path.
    pub path: Path,
    /// The proven optimal distance.
    pub distance: f64,
}

/// Client-side incremental stream verification.
///
/// Feed frames in arrival order with [`Self::feed`]; each chunk frame
/// returns its queries' verified answers. Call [`Self::finish`] (or
/// check [`Self::finished`]) after the transport closes: a stream that
/// never delivered its `End` frame — or whose `End` arrived before
/// every query was covered — is **truncated**, not complete.
pub struct StreamVerifier<'a> {
    client: &'a Client,
    queries: &'a [(NodeId, NodeId)],
    /// Session-pinned epoch root (verify signature once at open).
    pinned: Option<&'a SignedRoot>,
    /// Session-pinned auxiliary roots (FULL distance tree, HYP
    /// hyper-edge and cell-directory trees), RSA-verified at open.
    pins: Option<&'a PinnedAux>,
    /// From the header frame: (method wire code, declared chunk size).
    header: Option<(u8, usize)>,
    next_start: usize,
    chunks_seen: u32,
    done: bool,
}

impl<'a> StreamVerifier<'a> {
    /// A verifier for `queries`, authenticating every chunk's signed
    /// roots from scratch.
    pub fn new(client: &'a Client, queries: &'a [(NodeId, NodeId)]) -> Self {
        StreamVerifier {
            client,
            queries,
            pinned: None,
            pins: None,
            header: None,
            next_start: 0,
            chunks_seen: 0,
            done: false,
        }
    }

    /// A verifier pinned to an already RSA-verified network root (the
    /// session facade's path): chunks signed for any other epoch are
    /// rejected without a signature check.
    pub fn with_pinned_root(
        client: &'a Client,
        queries: &'a [(NodeId, NodeId)],
        root: &'a SignedRoot,
    ) -> Self {
        StreamVerifier {
            pinned: Some(root),
            ..Self::new(client, queries)
        }
    }

    /// [`Self::with_pinned_root`] plus the session's pinned auxiliary
    /// roots: chunks of FULL/HYP sessions skip the per-chunk RSA check
    /// on aux roots whose bytes match a pin (Merkle reconstructions
    /// still run). This is the [`crate::service::Session`] stream path.
    pub fn with_session_pins(
        client: &'a Client,
        queries: &'a [(NodeId, NodeId)],
        root: &'a SignedRoot,
        pins: &'a PinnedAux,
    ) -> Self {
        StreamVerifier {
            pinned: Some(root),
            pins: Some(pins),
            ..Self::new(client, queries)
        }
    }

    /// Processes one encoded frame, returning the verified answers it
    /// released (empty for header/end frames).
    pub fn feed(&mut self, frame: &[u8]) -> Result<Vec<VerifiedItem>, StreamError> {
        if self.done {
            return Err(StreamError::Protocol("frame after end of stream"));
        }
        match decode_frame(frame)? {
            StreamFrame::Header {
                total_queries,
                chunk_len,
                method_code,
            } => {
                if self.header.is_some() {
                    return Err(StreamError::Protocol("duplicate header frame"));
                }
                if total_queries as usize != self.queries.len() {
                    return Err(StreamError::Protocol(
                        "header query count does not match submitted queries",
                    ));
                }
                if chunk_len == 0 && !self.queries.is_empty() {
                    return Err(StreamError::Protocol("header declares zero chunk size"));
                }
                self.header = Some((method_code, chunk_len as usize));
                Ok(Vec::new())
            }
            StreamFrame::Chunk { start, batch } => {
                let Some((method_code, chunk_len)) = self.header else {
                    return Err(StreamError::Protocol("chunk before header"));
                };
                if start as usize != self.next_start {
                    return Err(StreamError::Protocol(
                        "chunk out of order (start does not continue the stream)",
                    ));
                }
                if self.next_start == self.queries.len() {
                    return Err(StreamError::Protocol("chunk after all queries covered"));
                }
                // The header's declared chunking is binding: every
                // chunk carries exactly chunk_len queries except a
                // smaller final remainder.
                let k = batch.queries.len();
                let expected = chunk_len.min(self.queries.len() - self.next_start);
                if k != expected {
                    return Err(StreamError::Protocol(
                        "chunk size differs from header's declared chunking",
                    ));
                }
                let end = self.next_start + k;
                // Cheap protocol checks precede the expensive batch
                // verification: the signed params' method must be the
                // one the header announced (a header lie is caught on
                // the first chunk, before any RSA/Merkle work).
                let params =
                    crate::methods::MethodParams::decode(&batch.integrity.signed_root.meta.params)
                        .map_err(|_| VerifyError::MetaMismatch("undecodable method params"))?;
                if params.code() != method_code {
                    return Err(StreamError::Protocol(
                        "chunk method differs from stream header",
                    ));
                }
                let slice = &self.queries[self.next_start..end];
                let distances =
                    self.client
                        .verify_batch_impl(slice, &batch, self.pinned, self.pins)?;
                let items = batch
                    .queries
                    .iter()
                    .zip(distances)
                    .enumerate()
                    .map(|(i, (q, distance))| VerifiedItem {
                        index: self.next_start + i,
                        path: q.path.clone(),
                        distance,
                    })
                    .collect();
                self.next_start = end;
                self.chunks_seen += 1;
                Ok(items)
            }
            StreamFrame::End { total_chunks } => {
                if self.header.is_none() {
                    return Err(StreamError::Protocol("end before header"));
                }
                if total_chunks != self.chunks_seen {
                    return Err(StreamError::Protocol(
                        "end frame chunk count does not match received chunks",
                    ));
                }
                if self.next_start != self.queries.len() {
                    return Err(StreamError::Truncated {
                        verified: self.next_start,
                        expected: self.queries.len(),
                    });
                }
                self.done = true;
                Ok(Vec::new())
            }
        }
    }

    /// True once the `End` frame was accepted (every query verified).
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Number of queries verified so far.
    pub fn verified_count(&self) -> usize {
        self.next_start
    }

    /// Consumes the verifier; errors unless the stream completed.
    pub fn finish(self) -> Result<(), StreamError> {
        if self.done {
            Ok(())
        } else {
            Err(StreamError::Truncated {
                verified: self.next_start,
                expected: self.queries.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn deploy(method: MethodConfig) -> (ServiceProvider, Client) {
        let g = grid_network(9, 9, 1.15, 2100);
        let mut rng = StdRng::seed_from_u64(2101);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        (ServiceProvider::new(p.package), Client::new(p.public_key))
    }

    fn all_methods() -> Vec<MethodConfig> {
        vec![
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ]
    }

    fn queries() -> Vec<(NodeId, NodeId)> {
        vec![
            (NodeId(0), NodeId(80)),
            (NodeId(1), NodeId(79)),
            (NodeId(0), NodeId(40)),
            (NodeId(9), NodeId(71)),
            (NodeId(4), NodeId(76)),
        ]
    }

    fn collect_frames(
        provider: &ServiceProvider,
        qs: &[(NodeId, NodeId)],
        chunk: usize,
    ) -> Vec<Vec<u8>> {
        provider
            .answer_stream(qs, chunk)
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    #[test]
    fn stream_verifies_incrementally_for_every_method() {
        for method in all_methods() {
            let (provider, client) = deploy(method.clone());
            let qs = queries();
            let frames = collect_frames(&provider, &qs, 2);
            // 5 queries at chunk 2 → header + 3 chunks + end.
            assert_eq!(frames.len(), 5, "{}", method.name());
            let mut verifier = StreamVerifier::new(&client, &qs);
            let mut got = Vec::new();
            for f in &frames {
                got.extend(verifier.feed(f).unwrap());
            }
            assert!(verifier.finished());
            verifier.finish().unwrap();
            assert_eq!(got.len(), qs.len(), "{}", method.name());
            for (i, item) in got.iter().enumerate() {
                assert_eq!(item.index, i);
                assert!(item.distance.is_finite());
            }
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let (provider, client) = deploy(MethodConfig::Dij);
        let qs = queries();
        let frames = collect_frames(&provider, &qs, 2);
        // Dropping the end frame: finish() reports truncation.
        let mut v = StreamVerifier::new(&client, &qs);
        for f in &frames[..frames.len() - 1] {
            v.feed(f).unwrap();
        }
        assert!(!v.finished());
        assert_eq!(
            v.finish(),
            Err(StreamError::Truncated {
                verified: 5,
                expected: 5
            }),
            "all chunks arrived but the end frame never did"
        );
        // Dropping a chunk *and* forging a consistent end frame: the
        // end frame's coverage check fires.
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        v.feed(&frames[1]).unwrap();
        let end = encode_frame(&StreamFrame::End { total_chunks: 1 });
        assert_eq!(
            v.feed(&end),
            Err(StreamError::Truncated {
                verified: 2,
                expected: 5
            })
        );
        // Byte-truncating a chunk frame: typed decode error.
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        let cut = &frames[1][..frames[1].len() / 2];
        assert!(matches!(v.feed(cut), Err(StreamError::Decode(_))));
    }

    #[test]
    fn tampered_chunk_rejected() {
        let (provider, client) = deploy(MethodConfig::Dij);
        let qs = queries();
        let frames = collect_frames(&provider, &qs, 2);
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        // Flip a byte inside the chunk's pooled tuples: either the
        // decode or the Merkle reconstruction must fail.
        let mut evil = frames[1].clone();
        let mid = evil.len() / 2;
        evil[mid] ^= 0x01;
        assert!(v.feed(&evil).is_err());
    }

    #[test]
    fn protocol_violations_rejected() {
        let (provider, client) = deploy(MethodConfig::Dij);
        let qs = queries();
        let frames = collect_frames(&provider, &qs, 2);
        // Chunk before header.
        let mut v = StreamVerifier::new(&client, &qs);
        assert!(matches!(
            v.feed(&frames[1]),
            Err(StreamError::Protocol("chunk before header"))
        ));
        // Duplicate header.
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        assert!(matches!(
            v.feed(&frames[0]),
            Err(StreamError::Protocol("duplicate header frame"))
        ));
        // Replayed (out-of-order) chunk.
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        v.feed(&frames[1]).unwrap();
        assert!(matches!(v.feed(&frames[1]), Err(StreamError::Protocol(_))));
        // Frame after end.
        let mut v = StreamVerifier::new(&client, &qs);
        for f in &frames {
            v.feed(f).unwrap();
        }
        assert!(matches!(
            v.feed(&frames[0]),
            Err(StreamError::Protocol("frame after end of stream"))
        ));
        // Header for a different query count.
        let short = &qs[..3];
        let mut v = StreamVerifier::new(&client, short);
        assert!(matches!(v.feed(&frames[0]), Err(StreamError::Protocol(_))));
        // A chunk violating the header's declared chunking: header
        // says 2 queries per chunk, the provider ships one of 1.
        let smaller = collect_frames(&provider, &qs, 1);
        let mut v = StreamVerifier::new(&client, &qs);
        v.feed(&frames[0]).unwrap();
        assert!(matches!(
            v.feed(&smaller[1]),
            Err(StreamError::Protocol(
                "chunk size differs from header's declared chunking"
            ))
        ));
    }

    #[test]
    fn empty_stream_completes_with_no_items() {
        let (provider, client) = deploy(MethodConfig::Dij);
        let qs: Vec<(NodeId, NodeId)> = Vec::new();
        let frames = collect_frames(&provider, &qs, 4);
        assert_eq!(frames.len(), 2, "header + end only");
        let mut v = StreamVerifier::new(&client, &qs);
        for f in &frames {
            assert!(v.feed(f).unwrap().is_empty());
        }
        v.finish().unwrap();
    }
}
