//! Authenticated shortest-path verification — the core library.
//!
//! This crate implements the contribution of *Efficient Verification of
//! Shortest Path Search via Authenticated Hints* (Yiu, Lin, Mouratidis,
//! ICDE 2010): a three-party protocol in which a **data owner** signs
//! authenticated data structures over a road network, a **service
//! provider** answers shortest-path queries with proofs, and a
//! **client** verifies that each reported path (i) exists untampered in
//! the owner's graph and (ii) is genuinely the shortest.
//!
//! # The four verification methods
//!
//! | method | hints | ΓS | trade-off |
//! |--------|-------|----|-----------|
//! | [`methods::dij`]  | none | Dijkstra-ball subgraph (Lemma 1) | zero construction, huge proofs |
//! | [`methods::full`] | all-pairs distances | Merkle B-tree lookup | tiny proofs, O(V³)/O(V²) construction |
//! | [`methods::ldm`]  | quantized+compressed landmark vectors | A\* cone subgraph (Lemma 2) | small proofs, moderate construction |
//! | [`methods::hyp`]  | HiTi hyper-graph border distances | coarse subgraph + distance proof | small proofs, moderate construction |
//!
//! # Quickstart
//!
//! The [`service::SpService`] facade is the front door: a session
//! authenticates the published epoch once, then serves verified
//! answers — one at a time, batched, or streamed.
//!
//! ```
//! use spnet_core::prelude::*;
//! use spnet_graph::gen::grid_network;
//! use spnet_graph::NodeId;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // The data owner publishes an authenticated package.
//! let graph = grid_network(8, 8, 1.1, 7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let cfg = SetupConfig::default();
//! let published = DataOwner::publish(&graph, &MethodConfig::Dij, &cfg, &mut rng);
//!
//! // The (untrusted) provider serves through the session facade.
//! let service = SpService::new(published.package);
//! let session = service
//!     .open_session(Client::new(published.public_key))
//!     .expect("signed epoch authenticates");
//!
//! // Single verified query…
//! let answer = session.query(NodeId(0), NodeId(63)).unwrap();
//! assert!(answer.distance > 0.0);
//!
//! // …and a streamed batch, verified chunk by chunk.
//! let queries = [(NodeId(0), NodeId(63)), (NodeId(1), NodeId(62))];
//! let verified: Vec<_> = session
//!     .query_stream(&queries)
//!     .collect::<Result<Vec<_>, _>>()
//!     .unwrap()
//!     .into_iter()
//!     .flatten()
//!     .collect();
//! assert_eq!(verified.len(), queries.len());
//! ```
//!
//! The lower-level role APIs ([`DataOwner`], [`ServiceProvider`],
//! [`Client`]) remain available; all of them — and the facade — serve
//! every method through its [`methods::AuthMethod`] trait object.

pub mod ads;
pub mod batch;
pub mod chain;
pub mod client;
pub mod enc;
pub mod error;
pub mod methods;
pub mod owner;
pub mod par;
pub mod proof;
pub mod provider;
pub mod queries;
pub mod service;
pub mod snapshot;
pub mod stream;
pub mod tamper;
pub mod tuple;
pub mod update;
pub mod wire;

/// True when this build includes the parallel batch-serving and
/// hint-construction paths (the default `parallel` feature).
pub const PARALLEL_ENABLED: bool = cfg!(feature = "parallel");

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::client::{Client, Verified};
    pub use crate::error::VerifyError;
    pub use crate::methods::{AuthMethod, LdmConfig, MethodConfig, PinnedAux, VerifyCtx};
    pub use crate::owner::{DataOwner, Published, SetupConfig};
    pub use crate::par::Scheduler;
    pub use crate::proof::{Answer, ProofStats};
    pub use crate::provider::ServiceProvider;
    pub use crate::queries::RangeAnswer;
    pub use crate::service::{
        RoutingPolicy, Session, SessionAnswer, SessionError, SpService, SpServiceBuilder,
    };
    pub use crate::snapshot::{load_package, save_package, LoadedSnapshot, SnapshotError};
    pub use crate::stream::{StreamError, StreamVerifier, VerifiedItem};
    pub use spnet_store::StoreBackend;
}

pub use prelude::*;
