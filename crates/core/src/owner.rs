//! The data owner: builds and signs the authenticated structures
//! (Figure 2, left).

use crate::ads::{NetworkAds, SignedRoot};
use crate::methods::full::{DistanceAds, FullBuildStats};
use crate::methods::hyp::HypHints;
use crate::methods::ldm::LdmHints;
use crate::methods::{dij, full, hyp, ldm, AuthMethod, MethodConfig};
use crate::tuple::ExtendedTuple;
use rand::Rng;
use spnet_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use spnet_graph::order::NodeOrdering;
use spnet_graph::Graph;

/// Owner-side setup parameters common to all methods.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupConfig {
    /// Graph-node ordering of the Merkle leaves (paper default: hbt).
    pub ordering: NodeOrdering,
    /// Merkle tree fanout (paper default: 2).
    pub fanout: usize,
    /// Seed for ordering/landmark randomness.
    pub seed: u64,
    /// RSA modulus size in bits.
    pub rsa_bits: usize,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            ordering: NodeOrdering::Hilbert,
            fanout: 2,
            seed: 0,
            rsa_bits: 256, // research-scale; see crate security note
        }
    }
}

/// Everything the service provider receives from the owner.
#[derive(Debug, Clone)]
pub struct ProviderPackage {
    /// The road network itself.
    pub graph: Graph,
    /// The network ADS (ordered tuples + Merkle tree).
    pub ads: NetworkAds,
    /// The owner-signed network root (with method params in its meta).
    pub network_root: SignedRoot,
    /// Per-method hints and auxiliary signed structures.
    pub hints: MethodHints,
}

/// Method-specific authenticated hints held by the provider.
///
/// One instance lives per shard for the lifetime of the provider, so
/// the size spread between the empty `Dij` variant and the hint-heavy
/// ones is irrelevant in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MethodHints {
    /// DIJ needs none.
    Dij,
    /// FULL: the distance ADS and its signed root.
    Full {
        /// The two-level all-pairs distance tree.
        ads: DistanceAds,
        /// Owner signature on its root.
        signed_root: SignedRoot,
        /// Construction statistics.
        stats: FullBuildStats,
    },
    /// LDM: compressed landmark vectors (also baked into tuples).
    Ldm(LdmHints),
    /// HYP: partition, hyper-edge tree and cell directory with signed
    /// roots.
    Hyp {
        /// Partition, hyper-edge tree, cell directory.
        hints: HypHints,
        /// Owner signature on the hyper-edge tree root.
        hyper_signed: SignedRoot,
        /// Owner signature on the cell-directory root.
        cell_dir_signed: SignedRoot,
    },
}

impl MethodHints {
    /// The method's lifecycle implementation — how a provider holding
    /// these hints dispatches proof assembly.
    pub fn method(&self) -> &'static dyn AuthMethod {
        match self {
            MethodHints::Dij => &dij::DijMethod,
            MethodHints::Full { .. } => &full::FullMethod,
            MethodHints::Ldm(_) => &ldm::LdmMethod,
            MethodHints::Hyp { .. } => &hyp::HypMethod,
        }
    }

    /// The auxiliary signed roots this method's proofs reference beyond
    /// the network root: FULL's distance-tree root, HYP's hyper-edge
    /// and cell-directory roots. A session RSA-verifies these once at
    /// open and pins them, so per-chunk verification replaces the
    /// repeated signature checks with byte equality.
    pub fn aux_roots(&self) -> Vec<&SignedRoot> {
        match self {
            MethodHints::Dij | MethodHints::Ldm(_) => Vec::new(),
            MethodHints::Full { signed_root, .. } => vec![signed_root],
            MethodHints::Hyp {
                hyper_signed,
                cell_dir_signed,
                ..
            } => vec![hyper_signed, cell_dir_signed],
        }
    }
}

/// Result of `DataOwner::publish`.
#[derive(Debug, Clone)]
pub struct Published {
    /// Hand this to the service provider.
    pub package: ProviderPackage,
    /// Distribute this to clients.
    pub public_key: RsaPublicKey,
    /// Offline construction time of the authenticated hints, in seconds
    /// (the Figures 8c / 9b / 12b / 13b metric; excludes key
    /// generation, includes ADS hashing and all hint computation).
    pub construction_seconds: f64,
}

impl Published {
    /// Persists this epoch into `dir` (see [`crate::snapshot`]): one
    /// page-aligned snapshot file holding the graph, the owner public
    /// key, every signed root, the tuples, the Merkle levels and the
    /// method hints. Signs nothing — the publish-time signatures are
    /// persisted as bytes. Returns the snapshot file's path.
    pub fn save_snapshot(
        &self,
        dir: &std::path::Path,
    ) -> Result<std::path::PathBuf, crate::snapshot::SnapshotError> {
        crate::snapshot::save_package(self, dir)
    }
}

impl ProviderPackage {
    /// Cold-starts a provider package from a snapshot directory
    /// written by [`Published::save_snapshot`] — **zero RSA signing**;
    /// every persisted signed root is re-verified against the
    /// persisted owner key. See [`crate::snapshot::load_package`].
    pub fn load_snapshot(
        dir: &std::path::Path,
        backend: spnet_store::StoreBackend,
    ) -> Result<crate::snapshot::LoadedSnapshot, crate::snapshot::SnapshotError> {
        crate::snapshot::load_package(dir, backend)
    }
}

/// The data owner role.
pub struct DataOwner;

impl DataOwner {
    /// Builds, signs and packages everything for `method`, generating a
    /// fresh owner keypair. Owners that will publish **updates** later
    /// should retain their keypair and use [`Self::publish_with_key`].
    pub fn publish<R: Rng + ?Sized>(
        graph: &Graph,
        method: &MethodConfig,
        cfg: &SetupConfig,
        rng: &mut R,
    ) -> Published {
        let keypair = RsaKeyPair::generate(rng, cfg.rsa_bits);
        Self::publish_with_key(graph, method, cfg, &keypair)
    }

    /// Builds, signs and packages everything for `method` with a
    /// caller-retained keypair, so the owner can later re-sign epoch
    /// bumps ([`crate::update::update_edge_weight`],
    /// [`crate::service::SpService::update_edge_weight`]).
    ///
    /// All method-specific work — hint construction, auxiliary-root
    /// signing, per-node tuple payloads — dispatches through the
    /// method's [`AuthMethod`] implementation.
    pub fn publish_with_key(
        graph: &Graph,
        method: &MethodConfig,
        cfg: &SetupConfig,
        keypair: &RsaKeyPair,
    ) -> Published {
        let start = std::time::Instant::now();
        let method_impl = method.method();

        // Method-specific hints first (tuples may embed them).
        let (hints, params) = method_impl.build_hints(graph, method, cfg, keypair);
        let tuples: Vec<ExtendedTuple> = graph
            .nodes()
            .map(|v| method_impl.make_tuple(graph, v, &hints))
            .collect();

        let ads = NetworkAds::build(graph, tuples, cfg.ordering, cfg.fanout, cfg.seed);
        let network_root = SignedRoot::sign(keypair, ads.root(), ads.meta(params.encode()));
        let construction_seconds = start.elapsed().as_secs_f64();

        Published {
            package: ProviderPackage {
                graph: graph.clone(),
                ads,
                network_root,
                hints,
            },
            public_key: keypair.public_key().clone(),
            construction_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::LdmConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn publish(method: MethodConfig) -> Published {
        let g = grid_network(8, 8, 1.15, 700);
        let mut rng = StdRng::seed_from_u64(701);
        DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng)
    }

    #[test]
    fn all_methods_publish_signed_roots() {
        for method in [
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ] {
            let p = publish(method.clone());
            assert!(
                p.package.network_root.verify(&p.public_key),
                "{} network root",
                method.name()
            );
            match &p.package.hints {
                MethodHints::Full { signed_root, .. } => {
                    assert!(signed_root.verify(&p.public_key));
                }
                MethodHints::Hyp {
                    hyper_signed,
                    cell_dir_signed,
                    ..
                } => {
                    assert!(hyper_signed.verify(&p.public_key));
                    assert!(cell_dir_signed.verify(&p.public_key));
                }
                _ => {}
            }
            assert!(p.construction_seconds >= 0.0);
        }
    }

    #[test]
    fn method_params_bound_into_network_meta() {
        let p = publish(MethodConfig::Ldm(LdmConfig {
            landmarks: 6,
            ..LdmConfig::default()
        }));
        let params =
            crate::methods::MethodParams::decode(&p.package.network_root.meta.params).unwrap();
        assert!(matches!(params, crate::methods::MethodParams::Ldm { lambda } if lambda > 0.0));
    }

    #[test]
    fn dij_has_no_hints() {
        let p = publish(MethodConfig::Dij);
        assert!(matches!(p.package.hints, MethodHints::Dij));
    }

    #[test]
    fn different_keys_per_publish() {
        let g = grid_network(4, 4, 1.1, 702);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let p1 = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut r1);
        let p2 = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut r2);
        assert_ne!(p1.public_key, p2.public_key);
        // Same tree roots though — the ADS is deterministic.
        assert_eq!(p1.package.network_root.root, p2.package.network_root.root);
    }
}
