//! Dynamic updates: edge-weight changes without full rebuilds.
//!
//! Road networks change (construction, congestion-based weights). The
//! paper's structures are static; this module makes owner updates
//! first-class for **all four methods**:
//!
//! 1. the owner patches the weight in place on the CSR
//!    ([`spnet_graph::Graph::set_edge_weight`], O(log deg)),
//! 2. dispatches [`AuthMethod::repair_hints`] so the method repairs
//!    exactly the hint entries the change can have invalidated (FULL:
//!    dirty distance rows, LDM: affected landmark vectors, HYP: dirty
//!    border-pair hyper-edges) and re-signs the affected aux roots,
//! 3. rebuilds the dirty extended-tuples and their O(log |V|) Merkle
//!    paths, and
//! 4. re-signs the network root.
//!
//! The dirty set is bounded by a tightness test on four single-source
//! shortest-path trees (from both endpoints, on the pre- and
//! post-update graph): a materialized distance `d(s, t)` can only
//! change if some shortest `s`-tree branch crosses the updated edge,
//! i.e. `|d(s,u) − d(s,v)|` is within ε of the edge weight, before or
//! after the change. Everything outside that set is left bit-identical
//! — re-verified structures and signatures are byte-for-byte the ones
//! a fresh publish of the final graph would produce.

use crate::ads::SignedRoot;
use crate::methods::{ChangeDists, DirtySet, EdgeChange};
use crate::owner::ProviderPackage;
use spnet_crypto::merkle::MerkleTree;
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::search::with_thread_workspace;
use spnet_graph::NodeId;

/// Slack for the dirty-set tightness test. Errs toward *more* dirty
/// rows: a false positive recomputes an unchanged value (harmless and
/// bit-identical), a false negative would leave a stale one.
pub const DIRTY_EPS: f64 = 1e-9;

/// Errors from dynamic updates.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// The edge does not exist.
    NoSuchEdge { u: NodeId, v: NodeId },
    /// The new weight is invalid (negative / non-finite).
    BadWeight(f64),
    /// Internal rebuild failure.
    Rebuild(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NoSuchEdge { u, v } => write!(f, "no edge ({u}, {v})"),
            UpdateError::BadWeight(w) => write!(f, "invalid weight {w}"),
            UpdateError::Rebuild(m) => write!(f, "rebuild failed: {m}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Whether the shortest-path tree rooted at a node with distance
/// vectors `du`/`dv` to the changed edge's endpoints can route through
/// an edge `(u, v)` of weight `w` — the sufficient "dirty" condition.
pub(crate) fn edge_is_tight(du: f64, dv: f64, w: f64) -> bool {
    du.is_finite() && dv.is_finite() && (du - dv).abs() >= w - DIRTY_EPS
}

/// Re-densifies the network tree of a snapshot-loaded package: paged
/// Merkle levels are read-only views, so before the first in-place
/// tuple patch the tree is rebuilt from the resident tuples (the same
/// leaves the `Mem` backend rebuilds at load — bit-identical root).
fn densify_network(package: &mut ProviderPackage) -> Result<(), UpdateError> {
    if package.ads.tree().dense_levels().is_some() {
        return Ok(());
    }
    let order = package.ads.order().to_vec();
    let fanout = package.ads.fanout();
    let leaves: Vec<_> = order
        .iter()
        .map(|&n| package.ads.tuple(n).digest())
        .collect();
    let tree =
        MerkleTree::build(leaves, fanout).map_err(|e| UpdateError::Rebuild(e.to_string()))?;
    let tuples = (0..order.len() as u32)
        .map(|i| package.ads.tuple_shared(NodeId(i)))
        .collect();
    package.ads = crate::ads::NetworkAds::from_parts(order, tuples, tree)
        .ok_or_else(|| UpdateError::Rebuild("inconsistent network ADS parts".into()))?;
    Ok(())
}

/// Owner-side: changes the weight of edge `(u, v)` inside a package of
/// **any** method, repairing hints incrementally and re-signing only
/// the affected roots. Returns the [`DirtySet`] describing what was
/// touched (tuples rebuilt, aux entries recomputed, aux roots
/// re-signed; the network re-sign itself is always exactly one more).
///
/// The resulting package is indistinguishable from a fresh publish of
/// the updated graph: unchanged tuples, tree nodes and signatures keep
/// their exact bytes, and repaired ones carry the bytes a rebuild
/// would produce.
pub fn update_edge_weight(
    package: &mut ProviderPackage,
    keypair: &RsaKeyPair,
    u: NodeId,
    v: NodeId,
    new_weight: f64,
) -> Result<DirtySet, UpdateError> {
    let method = package.hints.method();
    if !new_weight.is_finite() || new_weight < 0.0 {
        return Err(UpdateError::BadWeight(new_weight));
    }
    let old_weight = package
        .graph
        .edge_weight(u, v)
        .ok_or(UpdateError::NoSuchEdge { u, v })?;

    // Pre-update endpoint distance trees, if the method's dirty-set
    // bound needs them — computed before the CSR patch below.
    let old_dists = if method.wants_change_dists() {
        Some(ChangeDists {
            from_u: with_thread_workspace(|ws| ws.sssp(&package.graph, u).dist_vec()),
            from_v: with_thread_workspace(|ws| ws.sssp(&package.graph, v).dist_vec()),
        })
    } else {
        None
    };

    package
        .graph
        .set_edge_weight(u, v, new_weight)
        .ok_or(UpdateError::NoSuchEdge { u, v })?;
    let change = EdgeChange {
        u,
        v,
        old_weight,
        new_weight,
        old_dists,
    };

    let mut dirty = method.repair_hints(&package.graph, &change, &mut package.hints, keypair)?;

    // The endpoint tuples always change (their adjacency lists carry
    // the weight); methods add the nodes whose hint payloads moved.
    dirty.tuples.push(u);
    dirty.tuples.push(v);
    dirty.tuples.sort_unstable();
    dirty.tuples.dedup();

    densify_network(package)?;
    for &node in &dirty.tuples {
        let tuple = method.make_tuple(&package.graph, node, &package.hints);
        package
            .ads
            .replace_tuple(node, tuple)
            .map_err(|e| UpdateError::Rebuild(e.to_string()))?;
    }
    // Re-sign the network root. Metadata is normally unchanged
    // (geometry and params survive a weight patch); a repair that moved
    // a signed parameter (LDM's λ follows Dmax) hands back the
    // replacement, which takes the params slot a fresh publish of the
    // updated graph would sign.
    let meta = match &dirty.new_params {
        Some(p) => package.ads.meta(p.encode()),
        None => package.network_root.meta.clone(),
    };
    package.network_root = SignedRoot::sign(keypair, package.ads.root(), meta);
    Ok(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodConfig;
    use crate::owner::{DataOwner, SetupConfig};
    use crate::provider::ServiceProvider;
    use crate::tuple::ExtendedTuple;
    use crate::Client;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn setup() -> (ProviderPackage, RsaKeyPair, Client) {
        let g = grid_network(8, 8, 1.2, 1800);
        let mut rng = StdRng::seed_from_u64(1801);
        // Publish re-generates a key; for updates the owner must keep
        // its keypair, so replicate publish with a retained key.
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let p = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
        // Re-sign with the retained key so we control future updates.
        let mut package = p.package;
        let meta = package.network_root.meta.clone();
        package.network_root = SignedRoot::sign(&kp, package.ads.root(), meta);
        let client = Client::new(kp.public_key().clone());
        (package, kp, client)
    }

    #[test]
    fn update_preserves_verifiability_with_new_distances() {
        let (mut package, kp, client) = setup();
        let (s, t) = (NodeId(0), NodeId(63));
        let before = dijkstra_path(&package.graph, s, t).unwrap();
        // Make the first edge of the shortest path very expensive.
        let (u, v) = (before.nodes[0], before.nodes[1]);
        update_edge_weight(&mut package, &kp, u, v, 1e6).unwrap();
        let after_truth = dijkstra_path(&package.graph, s, t).unwrap().distance;
        assert!(after_truth > before.distance || (after_truth - before.distance).abs() < 1e-9);
        let provider = ServiceProvider::new(package);
        let answer = provider.answer(s, t).unwrap();
        let verified = client.verify(s, t, &answer).unwrap();
        assert!((verified.distance - after_truth).abs() <= 1e-6 * after_truth.max(1.0));
    }

    #[test]
    fn stale_proofs_fail_after_update() {
        let (package, kp, client) = setup();
        let (s, t) = (NodeId(0), NodeId(63));
        let mut fresh = package.clone();
        let provider_old = ServiceProvider::new(package);
        let stale = provider_old.answer(s, t).unwrap();
        client
            .verify(s, t, &stale)
            .expect("pre-update answer valid");
        // Owner updates some edge elsewhere; new root, new signature.
        let (u, v, _) = fresh.graph.edges().next().unwrap();
        update_edge_weight(&mut fresh, &kp, u, v, 123.456).unwrap();
        let new_client = client.clone();
        // The stale answer's signed root is the OLD root; a client that
        // has learned the new root epoch... in this model both roots
        // verify (same key). Replay protection across epochs requires
        // versioned metadata; what MUST fail is mixing stale tuples
        // with the new signed root.
        let provider_new = ServiceProvider::new(fresh);
        let mut franken = stale.clone();
        franken.integrity.signed_root = provider_new
            .answer(s, t)
            .unwrap()
            .integrity
            .signed_root
            .clone();
        assert!(new_client.verify(s, t, &franken).is_err());
    }

    #[test]
    fn update_rejects_bad_inputs() {
        let (mut package, kp, _) = setup();
        assert!(matches!(
            update_edge_weight(&mut package, &kp, NodeId(0), NodeId(63), 1.0),
            Err(UpdateError::NoSuchEdge { .. })
        ));
        let (u, v, _) = package.graph.edges().next().unwrap();
        assert!(matches!(
            update_edge_weight(&mut package, &kp, u, v, -1.0),
            Err(UpdateError::BadWeight(_))
        ));
        assert!(matches!(
            update_edge_weight(&mut package, &kp, u, v, f64::NAN),
            Err(UpdateError::BadWeight(_))
        ));
    }

    /// Every method — including the hint-carrying ones that used to be
    /// rejected outright — accepts an in-place update and keeps
    /// serving verifiable answers with the new distances.
    #[test]
    fn all_methods_update_in_place() {
        let g = grid_network(6, 6, 1.2, 1802);
        for method in [
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(crate::methods::LdmConfig {
                landmarks: 6,
                ..Default::default()
            }),
            MethodConfig::Hyp { cells: 4 },
        ] {
            let mut rng2 = StdRng::seed_from_u64(1804);
            let kp = RsaKeyPair::generate(&mut rng2, 256);
            let p = DataOwner::publish_with_key(&g, &method, &SetupConfig::default(), &kp);
            let mut package = p.package;
            let (s, t) = (NodeId(0), NodeId(35));
            let (u, v) = {
                let path = dijkstra_path(&package.graph, s, t).unwrap();
                (path.nodes[0], path.nodes[1])
            };
            let dirty = update_edge_weight(&mut package, &kp, u, v, 500.0).unwrap();
            assert!(
                dirty.tuples.contains(&u) && dirty.tuples.contains(&v),
                "{}: endpoints must be dirty",
                method.name()
            );
            let truth = dijkstra_path(&package.graph, s, t).unwrap().distance;
            let client = Client::new(p.public_key.clone());
            let provider = ServiceProvider::new(package);
            let answer = provider.answer(s, t).unwrap();
            let verified = client
                .verify(s, t, &answer)
                .unwrap_or_else(|e| panic!("{} fails post-update: {e}", method.name()));
            assert!(
                (verified.distance - truth).abs() <= 1e-6 * truth.max(1.0),
                "{}: distance drift",
                method.name()
            );
        }
    }

    #[test]
    fn incremental_root_matches_full_rebuild() {
        let (mut package, kp, _) = setup();
        let (u, v, _) = package.graph.edges().next().unwrap();
        update_edge_weight(&mut package, &kp, u, v, 77.7).unwrap();
        // Rebuild the ADS from scratch on the updated graph.
        let tuples: Vec<ExtendedTuple> = package
            .graph
            .nodes()
            .map(|n| ExtendedTuple::base(&package.graph, n))
            .collect();
        let rebuilt = crate::ads::NetworkAds::build(
            &package.graph,
            tuples,
            spnet_graph::order::NodeOrdering::Hilbert,
            2,
            0, // SetupConfig::default seed
        );
        assert_eq!(package.ads.root(), rebuilt.root());
    }
}
