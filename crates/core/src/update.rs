//! Dynamic updates: edge-weight changes without full rebuilds.
//!
//! Road networks change (construction, congestion-based weights). The
//! paper's structures are static; this module adds the natural
//! incremental path for the **DIJ** deployment, whose only
//! authenticated state is the network Merkle tree:
//!
//! 1. the owner updates the weight in its graph,
//! 2. rebuilds the two incident extended-tuples,
//! 3. recomputes the two O(log |V|) Merkle paths, and
//! 4. re-signs the root.
//!
//! Hint-carrying methods (FULL/LDM/HYP) materialize global distance
//! information that a single weight change can invalidate everywhere,
//! so they require hint reconstruction — the owner API makes that
//! explicit by only accepting DIJ packages.

use crate::ads::SignedRoot;
use crate::error::ProviderError;
use crate::owner::ProviderPackage;
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::{GraphBuilder, NodeId};

/// Errors from dynamic updates.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// Only DIJ packages support in-place updates.
    MethodHasHints,
    /// The edge does not exist.
    NoSuchEdge { u: NodeId, v: NodeId },
    /// The new weight is invalid (negative / non-finite).
    BadWeight(f64),
    /// Internal rebuild failure.
    Rebuild(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::MethodHasHints => {
                write!(
                    f,
                    "hint-based methods require hint reconstruction, not in-place update"
                )
            }
            UpdateError::NoSuchEdge { u, v } => write!(f, "no edge ({u}, {v})"),
            UpdateError::BadWeight(w) => write!(f, "invalid weight {w}"),
            UpdateError::Rebuild(m) => write!(f, "rebuild failed: {m}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<UpdateError> for ProviderError {
    fn from(e: UpdateError) -> Self {
        ProviderError::ProofAssembly(e.to_string())
    }
}

/// Owner-side: changes the weight of edge `(u, v)` inside a DIJ
/// package, updating the two incident tuples, their Merkle paths, and
/// the root signature.
///
/// The graph is rebuilt (CSR is immutable) but the Merkle tree is
/// patched incrementally — O(|E|) for the graph + O(log |V|) hashing,
/// versus O(|V| log |V|) hashing for a full ADS rebuild.
pub fn update_edge_weight(
    package: &mut ProviderPackage,
    keypair: &RsaKeyPair,
    u: NodeId,
    v: NodeId,
    new_weight: f64,
) -> Result<(), UpdateError> {
    // Dispatch through the method's lifecycle trait: only methods
    // whose sole authenticated state is the network tree can patch.
    let method = package.hints.method();
    if !method.supports_incremental_update() {
        return Err(UpdateError::MethodHasHints);
    }
    if !new_weight.is_finite() || new_weight < 0.0 {
        return Err(UpdateError::BadWeight(new_weight));
    }
    if package.graph.edge_weight(u, v).is_none() {
        return Err(UpdateError::NoSuchEdge { u, v });
    }
    // Rebuild the graph with the new weight.
    let g = &package.graph;
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for n in g.nodes() {
        let (x, y) = g.coords(n);
        b.add_node(x, y);
    }
    for (a, c, w) in g.edges() {
        let w = if (a, c) == (u.min(v), u.max(v)) {
            new_weight
        } else {
            w
        };
        b.add_edge(a, c, w)
            .map_err(|e| UpdateError::Rebuild(e.to_string()))?;
    }
    let new_graph = b
        .try_build()
        .map_err(|e| UpdateError::Rebuild(e.to_string()))?;

    // Patch the two incident tuples and their Merkle paths.
    for node in [u, v] {
        let tuple = method.make_tuple(&new_graph, node, &package.hints);
        package
            .ads
            .replace_tuple(node, tuple)
            .map_err(|e| UpdateError::Rebuild(e.to_string()))?;
    }
    package.graph = new_graph;
    // Re-sign with the same metadata (geometry and params unchanged).
    let meta = package.network_root.meta.clone();
    package.network_root = SignedRoot::sign(keypair, package.ads.root(), meta);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodConfig;
    use crate::owner::{DataOwner, SetupConfig};
    use crate::provider::ServiceProvider;
    use crate::tuple::ExtendedTuple;
    use crate::Client;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn setup() -> (ProviderPackage, RsaKeyPair, Client) {
        let g = grid_network(8, 8, 1.2, 1800);
        let mut rng = StdRng::seed_from_u64(1801);
        // Publish re-generates a key; for updates the owner must keep
        // its keypair, so replicate publish with a retained key.
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let p = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
        // Re-sign with the retained key so we control future updates.
        let mut package = p.package;
        let meta = package.network_root.meta.clone();
        package.network_root = SignedRoot::sign(&kp, package.ads.root(), meta);
        let client = Client::new(kp.public_key().clone());
        (package, kp, client)
    }

    #[test]
    fn update_preserves_verifiability_with_new_distances() {
        let (mut package, kp, client) = setup();
        let (s, t) = (NodeId(0), NodeId(63));
        let before = dijkstra_path(&package.graph, s, t).unwrap();
        // Make the first edge of the shortest path very expensive.
        let (u, v) = (before.nodes[0], before.nodes[1]);
        update_edge_weight(&mut package, &kp, u, v, 1e6).unwrap();
        let after_truth = dijkstra_path(&package.graph, s, t).unwrap().distance;
        assert!(after_truth > before.distance || (after_truth - before.distance).abs() < 1e-9);
        let provider = ServiceProvider::new(package);
        let answer = provider.answer(s, t).unwrap();
        let verified = client.verify(s, t, &answer).unwrap();
        assert!((verified.distance - after_truth).abs() <= 1e-6 * after_truth.max(1.0));
    }

    #[test]
    fn stale_proofs_fail_after_update() {
        let (package, kp, client) = setup();
        let (s, t) = (NodeId(0), NodeId(63));
        let mut fresh = package.clone();
        let provider_old = ServiceProvider::new(package);
        let stale = provider_old.answer(s, t).unwrap();
        client
            .verify(s, t, &stale)
            .expect("pre-update answer valid");
        // Owner updates some edge elsewhere; new root, new signature.
        let (u, v, _) = fresh.graph.edges().next().unwrap();
        update_edge_weight(&mut fresh, &kp, u, v, 123.456).unwrap();
        let new_client = client.clone();
        // The stale answer's signed root is the OLD root; a client that
        // has learned the new root epoch... in this model both roots
        // verify (same key). Replay protection across epochs requires
        // versioned metadata; what MUST fail is mixing stale tuples
        // with the new signed root.
        let provider_new = ServiceProvider::new(fresh);
        let mut franken = stale.clone();
        franken.integrity.signed_root = provider_new
            .answer(s, t)
            .unwrap()
            .integrity
            .signed_root
            .clone();
        assert!(new_client.verify(s, t, &franken).is_err());
    }

    #[test]
    fn update_rejects_bad_inputs() {
        let (mut package, kp, _) = setup();
        assert!(matches!(
            update_edge_weight(&mut package, &kp, NodeId(0), NodeId(63), 1.0),
            Err(UpdateError::NoSuchEdge { .. })
        ));
        let (u, v, _) = package.graph.edges().next().unwrap();
        assert!(matches!(
            update_edge_weight(&mut package, &kp, u, v, -1.0),
            Err(UpdateError::BadWeight(_))
        ));
        assert!(matches!(
            update_edge_weight(&mut package, &kp, u, v, f64::NAN),
            Err(UpdateError::BadWeight(_))
        ));
    }

    #[test]
    fn hint_methods_refuse_in_place_update() {
        let g = grid_network(6, 6, 1.2, 1802);
        let mut rng = StdRng::seed_from_u64(1803);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        for method in [
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Hyp { cells: 4 },
        ] {
            let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
            let mut package = p.package;
            let (u, v, _) = package.graph.edges().next().unwrap();
            assert_eq!(
                update_edge_weight(&mut package, &kp, u, v, 5.0),
                Err(UpdateError::MethodHasHints)
            );
        }
    }

    #[test]
    fn incremental_root_matches_full_rebuild() {
        let (mut package, kp, _) = setup();
        let (u, v, _) = package.graph.edges().next().unwrap();
        update_edge_weight(&mut package, &kp, u, v, 77.7).unwrap();
        // Rebuild the ADS from scratch on the updated graph.
        let tuples: Vec<ExtendedTuple> = package
            .graph
            .nodes()
            .map(|n| ExtendedTuple::base(&package.graph, n))
            .collect();
        let rebuilt = crate::ads::NetworkAds::build(
            &package.graph,
            tuples,
            spnet_graph::order::NodeOrdering::Hilbert,
            2,
            0, // SetupConfig::default seed
        );
        assert_eq!(package.ads.root(), rebuilt.root());
    }
}
