//! Query proofs: the shortest-path proof ΓS and integrity proof ΓT.
//!
//! Algorithm 1 of the paper returns, for every query, the result path
//! `P_rslt` plus the pair `(ΓS, ΓT)`. This module defines the concrete
//! proof payloads for all four methods and the size/item accounting the
//! experiments report (Figures 8a/8b).

use crate::ads::SignedRoot;
use crate::enc::Encoder;
use crate::methods::full::FullDistanceProof;
use crate::tuple::ExtendedTuple;
use spnet_crypto::mbtree::KeyedProof;
use spnet_crypto::merkle::MerkleProof;
use spnet_graph::Path;
use std::sync::Arc;

/// The integrity proof ΓT: Merkle cover digests plus the leaf position
/// of every tuple shipped in ΓS (positions are bound by reconstruction
/// — lying about one changes the root).
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityProof {
    /// Leaf positions, parallel to the tuple list of the ΓS payload.
    pub positions: Vec<u32>,
    /// Merkle cover digests per Merkle's rule.
    pub merkle: MerkleProof,
    /// The owner-signed network root this proof verifies against.
    pub signed_root: SignedRoot,
}

impl IntegrityProof {
    /// Number of digest items — the paper's "T-prf" item count.
    pub fn num_items(&self) -> usize {
        self.merkle.num_items()
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.positions.len() * 4 + self.merkle.size_bytes() + self.signed_root.size_bytes()
    }
}

/// The shortest-path proof ΓS, per method.
///
/// Tuples are shipped as shared [`Arc`] handles into the provider's
/// ADS tuple table: assembling a proof bumps reference counts instead
/// of deep-cloning adjacency lists (the seed cloned every tuple into
/// every proof). Equality and the wire encoding see through the `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpProof {
    /// DIJ / LDM: a subgraph proof — the extended tuples of Lemma 1 /
    /// Lemma 2.
    Subgraph {
        /// The tuples, in the order matched by
        /// [`IntegrityProof::positions`].
        tuples: Vec<Arc<ExtendedTuple>>,
    },
    /// FULL: a distance proof — one materialized tuple with its Merkle
    /// path in the distance tree.
    Distance {
        /// Membership proof of `⟨vs, vt, dist⟩` in the distance ADS.
        full: FullDistanceProof,
        /// The owner-signed distance-tree root.
        signed_root: SignedRoot,
        /// The path-node tuples whose integrity ΓT proves.
        path_tuples: Vec<Arc<ExtendedTuple>>,
    },
    /// HYP: coarse subgraph proof + hyper-edge distance proof + fine
    /// path tuples (Section V-B; shipped combined, as the paper notes).
    Hyp {
        /// All tuples of the source and target cells.
        cell_tuples: Vec<Arc<ExtendedTuple>>,
        /// Tuples of reported-path nodes outside those cells.
        path_tuples: Vec<Arc<ExtendedTuple>>,
        /// Membership proof for every (source-border, target-border)
        /// hyper-edge.
        hyper: KeyedProof,
        /// The owner-signed hyper-edge tree root.
        hyper_signed_root: SignedRoot,
        /// Membership proof of the two cells' population counts in the
        /// signed cell directory (completeness of the coarse proof).
        cell_dir: KeyedProof,
        /// The owner-signed cell-directory root.
        cell_dir_signed_root: SignedRoot,
    },
}

impl SpProof {
    /// All tuples shipped in ΓS, in position order (the order the
    /// integrity proof's `positions` refers to).
    pub fn tuples(&self) -> &[Arc<ExtendedTuple>] {
        match self {
            SpProof::Subgraph { tuples } => tuples,
            SpProof::Distance { path_tuples, .. } => path_tuples,
            SpProof::Hyp { cell_tuples, .. } => cell_tuples,
        }
    }

    /// Mutable access to the primary tuple list — what shape-generic
    /// consumers (e.g. the tamper simulator) mutate without matching on
    /// the method.
    pub fn tuples_mut(&mut self) -> &mut Vec<Arc<ExtendedTuple>> {
        match self {
            SpProof::Subgraph { tuples } => tuples,
            SpProof::Distance { path_tuples, .. } => path_tuples,
            SpProof::Hyp { cell_tuples, .. } => cell_tuples,
        }
    }

    /// HYP ships two tuple lists; this returns the second (path tuples
    /// outside the cells), empty for other methods.
    pub fn extra_tuples(&self) -> &[Arc<ExtendedTuple>] {
        match self {
            SpProof::Hyp { path_tuples, .. } => path_tuples,
            _ => &[],
        }
    }

    /// Number of ΓS items — tuples plus materialized entries plus
    /// auxiliary digests (the paper's "S-prf" count).
    pub fn num_items(&self) -> usize {
        match self {
            SpProof::Subgraph { tuples } => tuples.len(),
            SpProof::Distance { full, .. } => full.num_items(),
            SpProof::Hyp {
                cell_tuples,
                path_tuples,
                hyper,
                cell_dir,
                ..
            } => {
                cell_tuples.len()
                    + path_tuples.len()
                    + hyper.entries.len()
                    + hyper.num_items()
                    + cell_dir.entries.len()
                    + cell_dir.num_items()
            }
        }
    }

    /// Serialized ΓS size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            SpProof::Subgraph { tuples } => tuple_bytes(tuples),
            SpProof::Distance {
                full,
                signed_root,
                path_tuples,
            } => full.size_bytes() + signed_root.size_bytes() + tuple_bytes(path_tuples),
            SpProof::Hyp {
                cell_tuples,
                path_tuples,
                hyper,
                hyper_signed_root,
                cell_dir,
                cell_dir_signed_root,
            } => {
                tuple_bytes(cell_tuples)
                    + tuple_bytes(path_tuples)
                    + hyper.size_bytes()
                    + hyper_signed_root.size_bytes()
                    + cell_dir.size_bytes()
                    + cell_dir_signed_root.size_bytes()
            }
        }
    }
}

fn tuple_bytes(tuples: &[Arc<ExtendedTuple>]) -> usize {
    let mut e = Encoder::new();
    for t in tuples {
        t.encode(&mut e);
    }
    e.len()
}

/// A complete provider answer: the result path and both proofs.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The reported shortest path `P_rslt`.
    pub path: Path,
    /// The shortest-path proof ΓS.
    pub sp: SpProof,
    /// The integrity proof ΓT (covers every tuple in ΓS).
    pub integrity: IntegrityProof,
}

impl Answer {
    /// Proof-size statistics, the metrics of Figures 8–13.
    pub fn stats(&self) -> ProofStats {
        ProofStats {
            s_items: self.sp.num_items(),
            t_items: self.integrity.num_items(),
            s_bytes: self.sp.size_bytes(),
            t_bytes: self.integrity.size_bytes(),
            path_bytes: self.path.nodes.len() * 4 + 8,
        }
    }
}

/// Communication-overhead accounting for one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProofStats {
    /// Items in ΓS (tuples + materialized entries + digests).
    pub s_items: usize,
    /// Digest items in ΓT.
    pub t_items: usize,
    /// ΓS bytes.
    pub s_bytes: usize,
    /// ΓT bytes.
    pub t_bytes: usize,
    /// Bytes of the reported path itself.
    pub path_bytes: usize,
}

impl ProofStats {
    /// Total communication overhead in bytes (ΓS + ΓT + path).
    pub fn total_bytes(&self) -> usize {
        self.s_bytes + self.t_bytes + self.path_bytes
    }

    /// Total in KBytes, as the figures plot.
    pub fn total_kbytes(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Element-wise accumulation (for workload averaging).
    pub fn add(&mut self, other: &ProofStats) {
        self.s_items += other.s_items;
        self.t_items += other.t_items;
        self.s_bytes += other.s_bytes;
        self.t_bytes += other.t_bytes;
        self.path_bytes += other.path_bytes;
    }

    /// Divides all counters by `n` (workload averaging).
    pub fn scale_down(&self, n: usize) -> ProofStats {
        assert!(n > 0);
        ProofStats {
            s_items: self.s_items / n,
            t_items: self.t_items / n,
            s_bytes: self.s_bytes / n,
            t_bytes: self.t_bytes / n,
            path_bytes: self.path_bytes / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_arithmetic() {
        let mut a = ProofStats {
            s_items: 10,
            t_items: 20,
            s_bytes: 1000,
            t_bytes: 2000,
            path_bytes: 48,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.s_items, 20);
        assert_eq!(a.total_bytes(), 2 * 3048);
        let avg = a.scale_down(2);
        assert_eq!(avg.s_bytes, 1000);
        assert!((b.total_kbytes() - 3048.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn scale_down_zero_panics() {
        let s = ProofStats::default();
        let _ = s.scale_down(0);
    }
}
