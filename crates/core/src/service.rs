//! `SpService` — the front door: epoch-bound client sessions over a
//! served provider package.
//!
//! The raw role APIs ([`ServiceProvider`], [`Client`]) wire one query
//! at a time and re-verify the owner's signature on every answer; they
//! also accept any correctly-signed root, so a client can silently
//! keep verifying against a *stale* epoch after the owner published an
//! update. This facade fixes both:
//!
//! * [`SpService::open_session`] authenticates the published epoch
//!   **once** — signed network root + method params — and returns a
//!   [`Session`] bound to it. Every subsequent answer is checked
//!   against that exact pinned root (byte equality, no per-answer RSA).
//! * [`SpService::update_edge_weight`] applies an owner edge update
//!   and bumps the epoch. Open sessions observe the bump as an
//!   explicit [`SessionError::EpochInvalidated`] on their next query —
//!   never a silently-accepted stale root — and simply reopen.
//! * [`Session::query_stream`] serves large query lists as pooled
//!   chunks through the versioned stream wire format, yielding
//!   verified answers incrementally (see [`crate::stream`]).
//!
//! Every method is served through its
//! [`AuthMethod`](crate::methods::AuthMethod) trait object — the
//! facade itself is method-agnostic, and later extensions (sharding,
//! async backends, multi-method providers) plug in behind it.
//!
//! ```
//! use spnet_core::prelude::*;
//! use spnet_graph::{gen::grid_network, NodeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let graph = grid_network(6, 6, 1.1, 7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let published = DataOwner::publish(&graph, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
//!
//! let service = SpService::new(published.package);
//! let session = service
//!     .open_session(Client::new(published.public_key))
//!     .expect("authentic epoch");
//! let answer = session.query(NodeId(0), NodeId(35)).expect("verified");
//! assert!(answer.distance > 0.0);
//! ```

use crate::ads::SignedRoot;
use crate::client::Client;
use crate::error::{ProviderError, VerifyError};
use crate::methods::MethodParams;
use crate::provider::{AlgoSp, ServiceProvider};
use crate::stream::{StreamError, StreamVerifier, DEFAULT_CHUNK_LEN};
use crate::update::{self, UpdateError};
use crate::wire::{encode_frame, StreamFrame};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::{NodeId, Path};
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The service's epoch advanced past the one this session bound at
    /// open (an owner update re-signed the root). Reopen to continue.
    EpochInvalidated {
        /// The epoch the session was opened against.
        opened: u64,
        /// The service's current epoch.
        current: u64,
    },
    /// The published epoch failed authentication at open (bad owner
    /// signature or undecodable method params).
    OpenRejected(VerifyError),
    /// The provider could not answer (unknown node, unreachable pair).
    Provider(ProviderError),
    /// A provider answer failed verification.
    Verify(VerifyError),
    /// A streamed chunk failed framing or verification.
    Stream(StreamError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::EpochInvalidated { opened, current } => write!(
                f,
                "session epoch {opened} invalidated by owner update (current epoch {current}); reopen the session"
            ),
            SessionError::OpenRejected(e) => write!(f, "epoch authentication failed: {e}"),
            SessionError::Provider(e) => write!(f, "provider error: {e}"),
            SessionError::Verify(e) => write!(f, "verification failed: {e}"),
            SessionError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ProviderError> for SessionError {
    fn from(e: ProviderError) -> Self {
        SessionError::Provider(e)
    }
}

impl From<VerifyError> for SessionError {
    fn from(e: VerifyError) -> Self {
        SessionError::Verify(e)
    }
}

impl From<StreamError> for SessionError {
    fn from(e: StreamError) -> Self {
        SessionError::Stream(e)
    }
}

struct ServiceState {
    provider: ServiceProvider,
    epoch: u64,
}

/// The serving facade: one provider package, an epoch counter, and
/// session handout. Cheap to clone and share across serving threads.
#[derive(Clone)]
pub struct SpService {
    state: Arc<RwLock<ServiceState>>,
}

impl SpService {
    /// Wraps an owner-published package for serving.
    pub fn new(package: crate::owner::ProviderPackage) -> Self {
        Self::with_provider(ServiceProvider::new(package))
    }

    /// Wraps a pre-configured provider (e.g. a different `algosp`).
    pub fn with_provider(provider: ServiceProvider) -> Self {
        SpService {
            state: Arc::new(RwLock::new(ServiceState { provider, epoch: 0 })),
        }
    }

    /// Selects a different shortest-path algorithm for future answers.
    pub fn set_algorithm(&self, algo: AlgoSp) {
        self.write().provider.set_algorithm(algo);
    }

    /// The current epoch (starts at 0, +1 per owner update).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// The serving method's display name.
    pub fn method_name(&self) -> &'static str {
        self.read().provider.package().hints.method().name()
    }

    /// Opens a session for `client`: authenticates the current epoch's
    /// signed network root and method params **once**, then binds the
    /// session to that root. All session queries verify against the
    /// pinned root without further RSA signature checks.
    pub fn open_session(&self, client: Client) -> Result<Session, SessionError> {
        let st = self.read();
        let root = st.provider.package().network_root.clone();
        if !root.verify(client.public_key()) {
            return Err(SessionError::OpenRejected(VerifyError::BadSignature));
        }
        let params = MethodParams::decode(&root.meta.params).map_err(|_| {
            SessionError::OpenRejected(VerifyError::MetaMismatch("undecodable method params"))
        })?;
        Ok(Session {
            state: Arc::clone(&self.state),
            client,
            epoch: st.epoch,
            root,
            params,
        })
    }

    /// Owner-side: applies an edge-weight update with the owner's
    /// retained keypair and **bumps the epoch**, invalidating every
    /// open session (their next query returns
    /// [`SessionError::EpochInvalidated`]). Returns the new epoch.
    pub fn update_edge_weight(
        &self,
        keypair: &RsaKeyPair,
        u: NodeId,
        v: NodeId,
        new_weight: f64,
    ) -> Result<u64, UpdateError> {
        let mut st = self.write();
        update::update_edge_weight(&mut st.provider.package, keypair, u, v, new_weight)?;
        st.epoch += 1;
        Ok(st.epoch)
    }

    fn read(&self) -> RwLockReadGuard<'_, ServiceState> {
        self.state.read().expect("service lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, ServiceState> {
        self.state.write().expect("service lock poisoned")
    }
}

/// A verified session answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAnswer {
    /// The provider's reported shortest path (endpoint- and
    /// edge-authenticated).
    pub path: Path,
    /// The proven optimal distance.
    pub distance: f64,
}

/// A client session bound to one published epoch.
///
/// Obtained from [`SpService::open_session`]. Holds the epoch's
/// RSA-verified signed root; every query's answer must carry exactly
/// that root. When the owner updates the network, queries fail with
/// [`SessionError::EpochInvalidated`] — reopen to bind the new epoch.
pub struct Session {
    state: Arc<RwLock<ServiceState>>,
    client: Client,
    epoch: u64,
    root: SignedRoot,
    params: MethodParams,
}

impl Session {
    /// The epoch this session is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The serving method's display name (from the authenticated
    /// params, not provider claims).
    pub fn method_name(&self) -> &'static str {
        self.params.method().name()
    }

    /// The authenticated method parameters this session verified at
    /// open.
    pub fn params(&self) -> &MethodParams {
        &self.params
    }

    fn guard(&self) -> Result<RwLockReadGuard<'_, ServiceState>, SessionError> {
        let st = self.state.read().expect("service lock poisoned");
        if st.epoch != self.epoch {
            return Err(SessionError::EpochInvalidated {
                opened: self.epoch,
                current: st.epoch,
            });
        }
        Ok(st)
    }

    /// Answers and verifies one query against the pinned epoch root.
    pub fn query(&self, vs: NodeId, vt: NodeId) -> Result<SessionAnswer, SessionError> {
        let answer = {
            let st = self.guard()?;
            st.provider.answer(vs, vt)?
        };
        let v = self.client.verify_pinned(vs, vt, &answer, &self.root)?;
        Ok(SessionAnswer {
            path: answer.path,
            distance: v.distance,
        })
    }

    /// Answers and verifies a batch with one pooled proof (shared
    /// tuples, one Merkle cover, aux signatures once per batch).
    pub fn query_batch(
        &self,
        queries: &[(NodeId, NodeId)],
    ) -> Result<Vec<SessionAnswer>, SessionError> {
        let batch = {
            let st = self.guard()?;
            st.provider.answer_batch_impl(queries)?
        };
        let distances = self
            .client
            .verify_batch_impl(queries, &batch, Some(&self.root))?;
        Ok(batch
            .queries
            .into_iter()
            .zip(distances)
            .map(|(q, distance)| SessionAnswer {
                path: q.path,
                distance,
            })
            .collect())
    }

    /// Serves `queries` as a verified stream with the default chunk
    /// size: an iterator yielding each pooled chunk's verified answers
    /// as the provider produces it.
    pub fn query_stream<'s>(&'s self, queries: &'s [(NodeId, NodeId)]) -> SessionStream<'s> {
        self.query_stream_chunked(queries, DEFAULT_CHUNK_LEN)
    }

    /// [`Self::query_stream`] with an explicit chunk size (clamped to
    /// at least 1).
    ///
    /// Chunks are proven lazily: an epoch bump mid-stream surfaces as
    /// [`SessionError::EpochInvalidated`] on the next chunk instead of
    /// serving stale roots. Every chunk round-trips through the
    /// versioned stream wire frames and the full batched verification,
    /// so the bytes path of a networked deployment is exercised
    /// end to end.
    pub fn query_stream_chunked<'s>(
        &'s self,
        queries: &'s [(NodeId, NodeId)],
        chunk_len: usize,
    ) -> SessionStream<'s> {
        SessionStream {
            session: self,
            queries,
            chunk_len: chunk_len.max(1),
            verifier: StreamVerifier::with_pinned_root(&self.client, queries, &self.root),
            next: 0,
            chunks_emitted: 0,
            stage: StreamStage::Header,
        }
    }
}

enum StreamStage {
    Header,
    Chunks,
    End,
    Done,
}

/// A lazy, incrementally verified query stream over a session (see
/// [`Session::query_stream`]). Each `next()` proves, ships and
/// verifies one pooled chunk, yielding its [`SessionAnswer`]s.
///
/// NOTE: this drives the same Header → Chunks → End framing as the
/// raw provider-side [`crate::stream::AnswerStream`], differing only
/// in the per-chunk epoch guard; framing changes must be mirrored in
/// both, and the shared [`StreamVerifier`] enforces the result.
pub struct SessionStream<'s> {
    session: &'s Session,
    queries: &'s [(NodeId, NodeId)],
    chunk_len: usize,
    verifier: StreamVerifier<'s>,
    next: usize,
    chunks_emitted: u32,
    stage: StreamStage,
}

impl SessionStream<'_> {
    /// Feeds one frame through the client-side verifier, translating
    /// stream errors.
    fn feed(&mut self, frame: Vec<u8>) -> Result<Vec<SessionAnswer>, SessionError> {
        let items = self.verifier.feed(&frame)?;
        Ok(items
            .into_iter()
            .map(|it| SessionAnswer {
                path: it.path,
                distance: it.distance,
            })
            .collect())
    }
}

impl Iterator for SessionStream<'_> {
    /// One verified chunk of answers per step.
    type Item = Result<Vec<SessionAnswer>, SessionError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.stage {
                StreamStage::Header => {
                    self.stage = if self.queries.is_empty() {
                        StreamStage::End
                    } else {
                        StreamStage::Chunks
                    };
                    let frame = encode_frame(&StreamFrame::Header {
                        total_queries: self.queries.len() as u32,
                        chunk_len: self.chunk_len as u32,
                        method_code: self.session.params.code(),
                    });
                    match self.feed(frame) {
                        Ok(_) => continue,
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            return Some(Err(e));
                        }
                    }
                }
                StreamStage::Chunks => {
                    let start = self.next;
                    let end = (start + self.chunk_len).min(self.queries.len());
                    // Prove the chunk at the *current* epoch: a bump
                    // since open is surfaced, never silently served.
                    let produced = (|| -> Result<Vec<u8>, SessionError> {
                        let st = self.session.guard()?;
                        let batch = st.provider.answer_batch_impl(&self.queries[start..end])?;
                        Ok(encode_frame(&StreamFrame::Chunk {
                            start: start as u32,
                            batch: Box::new(batch),
                        }))
                    })();
                    let frame = match produced {
                        Ok(f) => f,
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            return Some(Err(e));
                        }
                    };
                    self.next = end;
                    self.chunks_emitted += 1;
                    if end == self.queries.len() {
                        self.stage = StreamStage::End;
                    }
                    return match self.feed(frame) {
                        Ok(items) => Some(Ok(items)),
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            Some(Err(e))
                        }
                    };
                }
                StreamStage::End => {
                    self.stage = StreamStage::Done;
                    let frame = encode_frame(&StreamFrame::End {
                        total_chunks: self.chunks_emitted,
                    });
                    match self.feed(frame) {
                        Ok(_) => {
                            debug_assert!(self.verifier.finished());
                            return None;
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
                StreamStage::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;
    use spnet_graph::Graph;

    fn deploy(method: MethodConfig) -> (Graph, SpService, Client, RsaKeyPair) {
        let g = grid_network(9, 9, 1.15, 2200);
        let mut rng = StdRng::seed_from_u64(2201);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let p = DataOwner::publish_with_key(&g, &method, &SetupConfig::default(), &kp);
        let client = Client::new(p.public_key);
        (g, SpService::new(p.package), client, kp)
    }

    fn all_methods() -> Vec<MethodConfig> {
        vec![
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ]
    }

    const QUERIES: [(u32, u32); 5] = [(0, 80), (4, 76), (40, 41), (80, 0), (9, 71)];

    fn as_nodes(qs: &[(u32, u32)]) -> Vec<(NodeId, NodeId)> {
        qs.iter().map(|&(s, t)| (NodeId(s), NodeId(t))).collect()
    }

    #[test]
    fn sessions_serve_all_methods_through_one_facade() {
        for method in all_methods() {
            let (g, service, client, _) = deploy(method.clone());
            assert_eq!(service.method_name(), method.name());
            let session = service.open_session(client).unwrap();
            assert_eq!(session.method_name(), method.name());
            for &(s, t) in &QUERIES {
                let (s, t) = (NodeId(s), NodeId(t));
                let a = session.query(s, t).unwrap();
                let truth = dijkstra_path(&g, s, t).unwrap().distance;
                assert!(
                    (a.distance - truth).abs() <= 1e-6 * truth.max(1.0),
                    "{}: ({s},{t})",
                    method.name()
                );
                assert_eq!(a.path.source(), s);
                assert_eq!(a.path.target(), t);
            }
            // Batch and stream agree with single queries.
            let qs = as_nodes(&QUERIES);
            let batch = session.query_batch(&qs).unwrap();
            let streamed: Vec<SessionAnswer> = session
                .query_stream_chunked(&qs, 2)
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(batch.len(), qs.len());
            assert_eq!(streamed.len(), qs.len());
            for ((b, s_), &(vs, vt)) in batch.iter().zip(&streamed).zip(&qs) {
                let single = session.query(vs, vt).unwrap();
                assert_eq!(
                    b.distance.to_bits(),
                    single.distance.to_bits(),
                    "{}: batch ≡ sequential",
                    method.name()
                );
                assert_eq!(
                    s_.distance.to_bits(),
                    single.distance.to_bits(),
                    "{}: stream ≡ sequential",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn wrong_owner_key_rejected_at_open() {
        let (_, service, _, _) = deploy(MethodConfig::Dij);
        let mut rng = StdRng::seed_from_u64(2202);
        let other = RsaKeyPair::generate(&mut rng, 256);
        let err = service
            .open_session(Client::new(other.public_key().clone()))
            .err()
            .unwrap();
        assert_eq!(err, SessionError::OpenRejected(VerifyError::BadSignature));
    }

    #[test]
    fn epoch_bump_invalidates_open_sessions() {
        let (g, service, client, kp) = deploy(MethodConfig::Dij);
        let session = service.open_session(client.clone()).unwrap();
        session.query(NodeId(0), NodeId(80)).unwrap();
        // Owner updates an edge: epoch bumps.
        let (u, v, w) = g.edges().next().unwrap();
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.update_edge_weight(&kp, u, v, w * 2.0).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        // The stale session fails loudly...
        assert_eq!(
            session.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated {
                opened: 0,
                current: 1
            })
        );
        assert!(matches!(
            session.query_batch(&as_nodes(&QUERIES)),
            Err(SessionError::EpochInvalidated { .. })
        ));
        // ...and a reopened session serves the updated network.
        let fresh = service.open_session(client).unwrap();
        assert_eq!(fresh.epoch(), 1);
        let a = fresh.query(NodeId(0), NodeId(80)).unwrap();
        let st = service.read();
        let truth = dijkstra_path(&st.provider.package().graph, NodeId(0), NodeId(80))
            .unwrap()
            .distance;
        assert!((a.distance - truth).abs() <= 1e-6 * truth.max(1.0));
    }

    #[test]
    fn epoch_bump_mid_stream_surfaces_as_invalidation() {
        let (g, service, client, kp) = deploy(MethodConfig::Dij);
        let session = service.open_session(client).unwrap();
        let qs = as_nodes(&QUERIES);
        let mut stream = session.query_stream_chunked(&qs, 2);
        // First chunk verifies fine.
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        // Owner updates between chunks.
        let (u, v, w) = g.edges().next().unwrap();
        service.update_edge_weight(&kp, u, v, w * 3.0).unwrap();
        // The next chunk is refused — never silently stale.
        assert!(matches!(
            stream.next().unwrap(),
            Err(SessionError::EpochInvalidated { .. })
        ));
        assert!(stream.next().is_none(), "stream ends after the error");
    }

    #[test]
    fn update_requires_updatable_method() {
        let (g, service, _, kp) = deploy(MethodConfig::Hyp { cells: 9 });
        let (u, v, w) = g.edges().next().unwrap();
        assert_eq!(
            service.update_edge_weight(&kp, u, v, w * 2.0),
            Err(UpdateError::MethodHasHints)
        );
        assert_eq!(service.epoch(), 0, "failed update must not bump the epoch");
    }

    #[test]
    fn service_clones_share_state() {
        let (g, service, client, kp) = deploy(MethodConfig::Dij);
        let clone = service.clone();
        let session = clone.open_session(client).unwrap();
        let (u, v, w) = g.edges().next().unwrap();
        service.update_edge_weight(&kp, u, v, w * 2.0).unwrap();
        assert_eq!(clone.epoch(), 1);
        assert!(matches!(
            session.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated { .. })
        ));
    }
}
