//! `SpService` — the front door: epoch-bound client sessions over one
//! or **several** served provider packages.
//!
//! The raw role APIs ([`ServiceProvider`], [`Client`]) wire one query
//! at a time and re-verify the owner's signature on every answer; they
//! also accept any correctly-signed root, so a client can silently
//! keep verifying against a *stale* epoch after the owner published an
//! update. This facade fixes both, and adds the concurrent serving
//! layer:
//!
//! * [`SpService::open_session`] authenticates the published epoch
//!   **once** — signed network root, method params, and the method's
//!   auxiliary signed roots (FULL's distance tree, HYP's hyper-edge
//!   and cell-directory trees) — and returns a [`Session`] bound to
//!   it. Every subsequent answer is checked against those exact pinned
//!   roots (byte equality, no per-answer RSA).
//! * [`SpService::update_edge_weight`] applies an owner edge update,
//!   **routed** to the shards whose key range can contain the edge,
//!   and publishes the repaired package as a new epoch in each
//!   targeted shard's MVCC ring. Sessions pinned to a retained epoch
//!   keep draining on their original root
//!   ([`SpServiceBuilder::retain_epochs`] sets the horizon); only a
//!   session whose epoch was evicted observes an explicit
//!   [`SessionError::EpochInvalidated`] — never a silently-accepted
//!   stale root — and simply reopens.
//! * [`Session::query_stream`] serves large query lists as pooled
//!   chunks through the versioned stream wire format, yielding
//!   verified answers incrementally (see [`crate::stream`]). When the
//!   service has a scheduler (the default), chunks are **double
//!   buffered**: the provider proves chunk *k+1* on a pool worker
//!   while the client verifies chunk *k*.
//! * A service built through [`SpServiceBuilder`] holds several
//!   **shards** — one provider package per method and/or per node-id
//!   key range — behind a routing table
//!   ([`SpService::open_session_for`],
//!   [`SpService::open_session_routed`]), all sharing one
//!   work-stealing [`Scheduler`] so thousands of concurrent sessions
//!   divide a fixed provider thread pool fairly.
//!
//! Every method is served through its
//! [`AuthMethod`](crate::methods::AuthMethod) trait object — the
//! facade itself is method-agnostic.
//!
//! ```
//! use spnet_core::prelude::*;
//! use spnet_graph::{gen::grid_network, NodeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let graph = grid_network(6, 6, 1.1, 7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let published = DataOwner::publish(&graph, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
//!
//! let service = SpService::new(published.package);
//! let session = service
//!     .open_session(Client::new(published.public_key))
//!     .expect("authentic epoch");
//! let answer = session.query(NodeId(0), NodeId(35)).expect("verified");
//! assert!(answer.distance > 0.0);
//! ```

use crate::ads::SignedRoot;
use crate::batch::BatchAnswer;
use crate::client::Client;
use crate::error::{ProviderError, VerifyError};
use crate::methods::{MethodParams, PinnedAux};
use crate::par::Scheduler;
use crate::provider::{AlgoSp, ServiceProvider};
use crate::stream::{StreamError, StreamVerifier, DEFAULT_CHUNK_LEN};
use crate::update::{self, UpdateError};
use crate::wire::{encode_frame, StreamFrame};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::{NodeId, Path};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock, RwLock, RwLockReadGuard};

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The epoch this session bound at open was evicted from the
    /// shard's retention ring (enough owner updates re-signed the root
    /// to push it past the [`SpServiceBuilder::retain_epochs`]
    /// horizon). Reopen to continue on the current epoch.
    EpochInvalidated {
        /// The epoch the session was opened against.
        opened: u64,
        /// The service's current epoch.
        current: u64,
    },
    /// The published epoch failed authentication at open (bad owner
    /// signature — on the network root or an auxiliary root — or
    /// undecodable method params), or no shard serves the requested
    /// method.
    OpenRejected(VerifyError),
    /// The provider could not answer (unknown node, unreachable pair).
    Provider(ProviderError),
    /// A provider answer failed verification.
    Verify(VerifyError),
    /// A streamed chunk failed framing or verification.
    Stream(StreamError),
    /// A scheduled prefetch worker disappeared without delivering its
    /// chunk (worker panic) — never seen in honest operation, since a
    /// submitted job always runs before the pool shuts down.
    Scheduler(&'static str),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::EpochInvalidated { opened, current } => write!(
                f,
                "session epoch {opened} invalidated by owner update (current epoch {current}); reopen the session"
            ),
            SessionError::OpenRejected(e) => write!(f, "epoch authentication failed: {e}"),
            SessionError::Provider(e) => write!(f, "provider error: {e}"),
            SessionError::Verify(e) => write!(f, "verification failed: {e}"),
            SessionError::Stream(e) => write!(f, "{e}"),
            SessionError::Scheduler(m) => write!(f, "scheduler failure: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ProviderError> for SessionError {
    fn from(e: ProviderError) -> Self {
        SessionError::Provider(e)
    }
}

impl From<VerifyError> for SessionError {
    fn from(e: VerifyError) -> Self {
        SessionError::Verify(e)
    }
}

impl From<StreamError> for SessionError {
    fn from(e: StreamError) -> Self {
        SessionError::Stream(e)
    }
}

/// How [`SpService::open_session_for`] / [`SpService::open_session_routed`]
/// pick a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Shards serving the requested method, narrowed by the query key's
    /// node-id range when one is registered; ties (several matching
    /// shards, or no key) break round-robin. The default.
    #[default]
    MethodThenKey,
    /// Ignore method and key: plain round-robin over every shard.
    /// Useful for replicated single-method deployments.
    RoundRobin,
}

/// Default number of epochs each shard retains for draining sessions
/// (see [`SpServiceBuilder::retain_epochs`]).
pub const DEFAULT_RETAIN_EPOCHS: usize = 4;

/// One retained epoch: the counter value and the provider state that
/// serves it.
struct EpochEntry {
    epoch: u64,
    provider: ServiceProvider,
}

/// A shard's MVCC epoch ring: up to `retain` provider snapshots,
/// oldest first, the back being the serving epoch. Open sessions drain
/// on their pinned entry while new sessions bind the back; an owner
/// update pushes a new entry and evicts whatever falls past the
/// retention horizon.
struct ServiceState {
    epochs: VecDeque<EpochEntry>,
    retain: usize,
}

impl ServiceState {
    fn new(provider: ServiceProvider, retain: usize) -> Self {
        let retain = retain.max(1);
        let mut epochs = VecDeque::with_capacity(retain);
        epochs.push_back(EpochEntry { epoch: 0, provider });
        ServiceState { epochs, retain }
    }

    /// The serving (latest) epoch entry.
    fn latest(&self) -> &EpochEntry {
        self.epochs.back().expect("epoch ring is never empty")
    }

    fn current_epoch(&self) -> u64 {
        self.latest().epoch
    }

    /// The provider still pinned at `epoch`, or the invalidation error
    /// when that entry was evicted.
    fn resolve(&self, epoch: u64) -> Result<&ServiceProvider, SessionError> {
        self.epochs
            .iter()
            .find(|e| e.epoch == epoch)
            .map(|e| &e.provider)
            .ok_or(SessionError::EpochInvalidated {
                opened: epoch,
                current: self.current_epoch(),
            })
    }

    /// Publishes `provider` as the next epoch, evicting entries past
    /// the retention horizon. Returns the new epoch.
    fn push(&mut self, provider: ServiceProvider) -> u64 {
        let epoch = self.current_epoch() + 1;
        self.epochs.push_back(EpochEntry { epoch, provider });
        while self.epochs.len() > self.retain {
            self.epochs.pop_front();
        }
        epoch
    }
}

/// One served provider package: its lock-guarded state, the method it
/// serves, and an optional node-id key range for routed opens.
struct Shard {
    state: Arc<RwLock<ServiceState>>,
    code: u8,
    key_range: Option<(u32, u32)>,
    /// The snapshot file backing this shard, when it was registered
    /// through [`SpServiceBuilder::snapshot`] /
    /// [`SpServiceBuilder::snapshot_chunks`] — the source for
    /// [`SpService::export_chunks`].
    snapshot_path: Option<std::path::PathBuf>,
}

struct ServiceInner {
    shards: Vec<Shard>,
    policy: RoutingPolicy,
    /// Worker count for the shared scheduler; 0 disables it (sessions
    /// prove stream chunks inline).
    threads: usize,
    /// Created lazily on the first session open that wants it, so
    /// services that never stream spawn no threads.
    scheduler: OnceLock<Arc<Scheduler>>,
    /// Round-robin cursor for shard routing.
    rr: AtomicUsize,
}

/// Builds an [`SpService`] serving one or more provider packages
/// behind a routing table and a shared work-stealing scheduler.
///
/// ```
/// use spnet_core::prelude::*;
/// use spnet_graph::gen::grid_network;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let g = grid_network(6, 6, 1.1, 11);
/// let mut rng = StdRng::seed_from_u64(11);
/// let dij = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
/// let full = DataOwner::publish(&g, &MethodConfig::Full { use_floyd_warshall: false },
///                               &SetupConfig::default(), &mut rng);
///
/// let service = SpService::builder()
///     .package(dij.package)
///     .package(full.package)
///     .threads(2)
///     .build();
/// assert_eq!(service.shard_count(), 2);
/// let session = service
///     .open_session_for(Client::new(full.public_key), 2 /* FULL */)
///     .unwrap();
/// assert_eq!(session.method_name(), "FULL");
/// ```
#[derive(Default)]
pub struct SpServiceBuilder {
    shards: Vec<PendingShard>,
    policy: RoutingPolicy,
    threads: Option<usize>,
    retain: Option<usize>,
}

/// A shard registered with the builder, before the retention depth is
/// known (`build()` turns these into [`Shard`]s).
struct PendingShard {
    provider: ServiceProvider,
    key_range: Option<(u32, u32)>,
    snapshot_path: Option<std::path::PathBuf>,
}

impl SpServiceBuilder {
    /// An empty builder ([`SpService::builder`] is the usual entry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a package as a shard with no key range.
    pub fn package(self, package: crate::owner::ProviderPackage) -> Self {
        self.provider(ServiceProvider::new(package))
    }

    /// Registers a pre-configured provider (e.g. a different `algosp`)
    /// as a shard with no key range.
    pub fn provider(mut self, provider: ServiceProvider) -> Self {
        self.shards.push(PendingShard {
            provider,
            key_range: None,
            snapshot_path: None,
        });
        self
    }

    /// Registers a shard **cold-started from a snapshot directory**
    /// written by [`crate::owner::Published::save_snapshot`]. Loading
    /// performs zero RSA signing; every persisted signed root is
    /// re-verified against the persisted owner key. The shard remembers
    /// its snapshot file, so [`SpService::export_chunks`] can stream it
    /// to a booting replica.
    pub fn snapshot(
        mut self,
        dir: &std::path::Path,
        backend: spnet_store::StoreBackend,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let loaded = crate::snapshot::load_package(dir, backend)?;
        self = self.package(loaded.package);
        self.shards.last_mut().expect("just pushed").snapshot_path =
            Some(dir.join(crate::snapshot::SNAPSHOT_FILE));
        Ok(self)
    }

    /// Registers a shard bootstrapped from **chunked snapshot frames**
    /// exported by a live provider ([`SpService::export_chunks`]): the
    /// frames are reassembled into `dir` (ordering and whole-file
    /// checksum enforced), then loaded exactly like
    /// [`Self::snapshot`].
    pub fn snapshot_chunks(
        self,
        frames: &[Vec<u8>],
        dir: &std::path::Path,
        backend: spnet_store::StoreBackend,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let mut asm = spnet_store::ChunkAssembler::new(dir.join(crate::snapshot::SNAPSHOT_FILE));
        for frame in frames {
            asm.feed(frame)
                .map_err(crate::snapshot::SnapshotError::Store)?;
        }
        if !asm.is_done() {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "chunk transfer ended before the End frame verified",
            ));
        }
        self.snapshot(dir, backend)
    }

    /// Registers a package as a shard owning the **inclusive** node-id
    /// range `key_range` — [`SpService::open_session_routed`] prefers
    /// it for keys inside the range.
    pub fn shard(mut self, package: crate::owner::ProviderPackage, key_range: (u32, u32)) -> Self {
        self = self.package(package);
        self.shards.last_mut().expect("just pushed").key_range = Some(key_range);
        self
    }

    /// Worker-thread count of the shared scheduler. `0` disables it:
    /// sessions prove stream chunks inline on the calling thread.
    /// Default: one worker per available core.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the shard-routing policy (default
    /// [`RoutingPolicy::MethodThenKey`]).
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of epochs each shard retains for open sessions (MVCC).
    /// An owner update publishes a new epoch while up to `k − 1` prior
    /// epochs stay pinned, so sessions opened against them drain to
    /// completion on their original signed root instead of failing.
    /// Only a session whose epoch was evicted past the horizon
    /// observes [`SessionError::EpochInvalidated`]. Clamped to at
    /// least 1 — `retain_epochs(1)` restores invalidate-on-every-
    /// update semantics. Default: [`DEFAULT_RETAIN_EPOCHS`].
    pub fn retain_epochs(mut self, k: usize) -> Self {
        self.retain = Some(k);
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// If no package/provider/shard was registered.
    pub fn build(self) -> SpService {
        assert!(
            !self.shards.is_empty(),
            "SpServiceBuilder: register at least one package before build()"
        );
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let retain = self.retain.unwrap_or(DEFAULT_RETAIN_EPOCHS).max(1);
        let shards = self
            .shards
            .into_iter()
            .map(|p| Shard {
                code: p.provider.method_code(),
                state: Arc::new(RwLock::new(ServiceState::new(p.provider, retain))),
                key_range: p.key_range,
                snapshot_path: p.snapshot_path,
            })
            .collect();
        SpService {
            inner: Arc::new(ServiceInner {
                shards,
                policy: self.policy,
                threads,
                scheduler: OnceLock::new(),
                rr: AtomicUsize::new(0),
            }),
        }
    }
}

/// The serving facade: one or more provider shards, per-shard epoch
/// counters, a shared work-stealing scheduler, and session handout.
/// Cheap to clone and share across serving threads.
#[derive(Clone)]
pub struct SpService {
    inner: Arc<ServiceInner>,
}

impl SpService {
    /// Wraps a single owner-published package for serving.
    ///
    /// Equivalent to `SpService::builder().package(package).build()` —
    /// reach for [`Self::builder`] to serve several methods, shard by
    /// key range, or control the scheduler.
    pub fn new(package: crate::owner::ProviderPackage) -> Self {
        Self::builder().package(package).build()
    }

    /// Wraps a single pre-configured provider (e.g. a different
    /// `algosp`).
    ///
    /// Equivalent to `SpService::builder().provider(provider).build()`.
    pub fn with_provider(provider: ServiceProvider) -> Self {
        Self::builder().provider(provider).build()
    }

    /// Starts a [`SpServiceBuilder`].
    pub fn builder() -> SpServiceBuilder {
        SpServiceBuilder::new()
    }

    /// Number of registered shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Exports shard `shard`'s backing snapshot as encoded
    /// [`spnet_store::StoreChunk`] frames of `chunk_len` payload bytes,
    /// ready to ship to a replica
    /// ([`SpServiceBuilder::snapshot_chunks`]). Only shards registered
    /// from a snapshot can export; errors typed otherwise.
    pub fn export_chunks(
        &self,
        shard: usize,
        chunk_len: usize,
    ) -> Result<Vec<Vec<u8>>, crate::snapshot::SnapshotError> {
        let s = self
            .inner
            .shards
            .get(shard)
            .ok_or(crate::snapshot::SnapshotError::Corrupt("no such shard"))?;
        let path = s
            .snapshot_path
            .as_ref()
            .ok_or(crate::snapshot::SnapshotError::Corrupt(
                "shard is not snapshot-backed",
            ))?;
        Ok(spnet_store::chunk_file(path, chunk_len)?)
    }

    /// Selects a different shortest-path algorithm for future answers
    /// (applied to every retained epoch of every shard, so draining
    /// sessions switch too).
    pub fn set_algorithm(&self, algo: AlgoSp) {
        for shard in &self.inner.shards {
            let mut st = shard.state.write().expect("service lock poisoned");
            for e in &mut st.epochs {
                e.provider.set_algorithm(algo);
            }
        }
    }

    /// The current epoch of the first shard (starts at 0, +1 per owner
    /// update that targets it; [`Self::update_edge_weight`] routes by
    /// key range, so shards advance independently).
    pub fn epoch(&self) -> u64 {
        self.read().current_epoch()
    }

    /// The first shard's method display name.
    pub fn method_name(&self) -> &'static str {
        self.read()
            .latest()
            .provider
            .package()
            .hints
            .method()
            .name()
    }

    /// `(executed, stolen)` job counters of the shared scheduler, if it
    /// has started. A non-zero `stolen` is direct evidence the pool
    /// balanced session load across workers.
    pub fn scheduler_stats(&self) -> Option<(u64, u64)> {
        self.inner
            .scheduler
            .get()
            .map(|s| (s.executed(), s.stolen()))
    }

    /// Opens a session on the **first** shard — the whole service for
    /// the common single-package case.
    pub fn open_session(&self, client: Client) -> Result<Session, SessionError> {
        self.open_session_on(0, client)
    }

    /// Opens a session on a shard serving the method with wire code
    /// `method_code` (1 = DIJ, 2 = FULL, 3 = LDM, 4 = HYP), picked by
    /// the service's [`RoutingPolicy`]. Fails with
    /// [`SessionError::OpenRejected`] when no shard serves the method.
    pub fn open_session_for(
        &self,
        client: Client,
        method_code: u8,
    ) -> Result<Session, SessionError> {
        let idx = self.route(method_code, None)?;
        self.open_session_on(idx, client)
    }

    /// Like [`Self::open_session_for`], with a query key: a shard
    /// whose registered key range contains `key` is preferred, so
    /// key-partitioned deployments route sessions to the shard that
    /// owns their data.
    pub fn open_session_routed(
        &self,
        client: Client,
        method_code: u8,
        key: NodeId,
    ) -> Result<Session, SessionError> {
        let idx = self.route(method_code, Some(key))?;
        self.open_session_on(idx, client)
    }

    fn route(&self, code: u8, key: Option<NodeId>) -> Result<usize, SessionError> {
        let inner = &self.inner;
        match inner.policy {
            RoutingPolicy::RoundRobin => {
                Ok(inner.rr.fetch_add(1, Ordering::Relaxed) % inner.shards.len())
            }
            RoutingPolicy::MethodThenKey => {
                let matching: Vec<usize> = inner
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.code == code)
                    .map(|(i, _)| i)
                    .collect();
                if matching.is_empty() {
                    return Err(SessionError::OpenRejected(VerifyError::MetaMismatch(
                        "no shard serves the requested method",
                    )));
                }
                if let Some(k) = key {
                    if let Some(&i) = matching.iter().find(|&&i| {
                        inner.shards[i]
                            .key_range
                            .is_some_and(|(lo, hi)| lo <= k.0 && k.0 <= hi)
                    }) {
                        return Ok(i);
                    }
                }
                Ok(matching[inner.rr.fetch_add(1, Ordering::Relaxed) % matching.len()])
            }
        }
    }

    /// Opens a session on shard `idx`: authenticates that shard's
    /// signed network root and method params **once**, RSA-verifies
    /// and pins the method's auxiliary signed roots, and binds the
    /// session to the shard's current epoch.
    fn open_session_on(&self, idx: usize, client: Client) -> Result<Session, SessionError> {
        let shard = &self.inner.shards[idx];
        let st = shard.state.read().expect("service lock poisoned");
        let entry = st.latest();
        let root = entry.provider.package().network_root.clone();
        if !root.verify(client.public_key()) {
            return Err(SessionError::OpenRejected(VerifyError::BadSignature));
        }
        let params = MethodParams::decode(&root.meta.params).map_err(|_| {
            SessionError::OpenRejected(VerifyError::MetaMismatch("undecodable method params"))
        })?;
        // Pin the auxiliary roots now (one RSA verification each, for
        // the whole session) so per-chunk verification replaces their
        // repeated signature checks with byte equality.
        let mut aux: Vec<SignedRoot> = Vec::new();
        for r in entry.provider.package().hints.aux_roots() {
            if !r.verify(client.public_key()) {
                return Err(SessionError::OpenRejected(VerifyError::BadSignature));
            }
            aux.push(r.clone());
        }
        Ok(Session {
            state: Arc::clone(&shard.state),
            scheduler: self.scheduler(),
            client,
            epoch: entry.epoch,
            root,
            params,
            pins: PinnedAux::new(aux),
        })
    }

    /// Owner-side: applies an edge-weight update with the owner's
    /// retained keypair, **routed by key range**: only shards whose
    /// registered range can contain an endpoint are touched (a shard
    /// with no range serves the whole network and is always a target),
    /// so a key-partitioned deployment leaves unrelated shards — their
    /// epochs, locks, and open sessions — completely alone.
    ///
    /// Every targeted shard repairs a **clone** of its serving package
    /// ([`crate::update::update_edge_weight`]) and publishes it as a
    /// new epoch in its MVCC ring: sessions pinned to retained epochs
    /// keep draining on their original signed root; a session whose
    /// epoch falls past the [`SpServiceBuilder::retain_epochs`]
    /// horizon observes [`SessionError::EpochInvalidated`]; new
    /// sessions bind the fresh epoch. All-or-nothing across targets:
    /// repairs are staged aside and nothing is published unless every
    /// one succeeds. Returns the last targeted shard's new epoch.
    pub fn update_edge_weight(
        &self,
        keypair: &RsaKeyPair,
        u: NodeId,
        v: NodeId,
        new_weight: f64,
    ) -> Result<u64, UpdateError> {
        let targets: Vec<&Shard> = self
            .inner
            .shards
            .iter()
            .filter(|s| match s.key_range {
                None => true,
                Some((lo, hi)) => (lo <= u.0 && u.0 <= hi) || (lo <= v.0 && v.0 <= hi),
            })
            .collect();
        if targets.is_empty() {
            return Err(UpdateError::NoSuchEdge { u, v });
        }
        // Write-lock the targets in registration order (consistent
        // order, no deadlock) so sessions observe the update as one
        // atomic step across every shard that holds the edge.
        let mut guards: Vec<_> = targets
            .iter()
            .map(|s| s.state.write().expect("service lock poisoned"))
            .collect();
        let mut staged = Vec::with_capacity(guards.len());
        for st in &guards {
            let mut provider = st.latest().provider.clone();
            update::update_edge_weight(&mut provider.package, keypair, u, v, new_weight)?;
            staged.push(provider);
        }
        let mut epoch = 0;
        for (st, provider) in guards.iter_mut().zip(staged) {
            epoch = st.push(provider);
        }
        Ok(epoch)
    }

    /// Owner-side: persists shard `shard`'s **latest** epoch back into
    /// its snapshot file, rewriting only the dirty sections and pages
    /// in place ([`crate::snapshot::update_snapshot`]) — after an
    /// [`Self::update_edge_weight`], a restart picks up the updated
    /// network without any republish. Only snapshot-backed shards
    /// (registered through [`SpServiceBuilder::snapshot`] with the
    /// `Mem` backend, whose trees are resident) can refresh; errors
    /// are typed otherwise.
    pub fn refresh_shard_snapshot(
        &self,
        shard: usize,
        public_key: &spnet_crypto::rsa::RsaPublicKey,
    ) -> Result<crate::snapshot::SnapshotRefresh, crate::snapshot::SnapshotError> {
        let s = self
            .inner
            .shards
            .get(shard)
            .ok_or(crate::snapshot::SnapshotError::Corrupt("no such shard"))?;
        let path = s
            .snapshot_path
            .as_ref()
            .ok_or(crate::snapshot::SnapshotError::Corrupt(
                "shard is not snapshot-backed",
            ))?;
        let dir = path
            .parent()
            .ok_or(crate::snapshot::SnapshotError::Corrupt(
                "snapshot path has no parent directory",
            ))?
            .to_path_buf();
        let st = s.state.read().expect("service lock poisoned");
        crate::snapshot::update_snapshot(st.latest().provider.package(), public_key, &dir)
    }

    fn scheduler(&self) -> Option<Arc<Scheduler>> {
        if self.inner.threads == 0 {
            return None;
        }
        Some(Arc::clone(self.inner.scheduler.get_or_init(|| {
            Arc::new(Scheduler::new(self.inner.threads))
        })))
    }

    fn read(&self) -> RwLockReadGuard<'_, ServiceState> {
        self.inner.shards[0]
            .state
            .read()
            .expect("service lock poisoned")
    }
}

/// A verified session answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAnswer {
    /// The provider's reported shortest path (endpoint- and
    /// edge-authenticated).
    pub path: Path,
    /// The proven optimal distance.
    pub distance: f64,
}

/// A client session bound to one shard's published epoch.
///
/// Obtained from [`SpService::open_session`] (or the routed variants).
/// Holds the epoch's RSA-verified signed root plus the method's pinned
/// auxiliary roots; every query's answer must carry exactly those
/// roots. An owner update publishes a *new* epoch while this session's
/// stays pinned in the shard's MVCC ring, so in-flight queries and
/// streams drain against their original root; only when enough
/// updates evict the pinned epoch do queries fail with
/// [`SessionError::EpochInvalidated`] — reopen to bind the current
/// epoch.
pub struct Session {
    state: Arc<RwLock<ServiceState>>,
    scheduler: Option<Arc<Scheduler>>,
    client: Client,
    epoch: u64,
    root: SignedRoot,
    params: MethodParams,
    pins: PinnedAux,
}

impl Session {
    /// The epoch this session is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The serving method's display name (from the authenticated
    /// params, not provider claims).
    pub fn method_name(&self) -> &'static str {
        self.params.method().name()
    }

    /// The authenticated method parameters this session verified at
    /// open.
    pub fn params(&self) -> &MethodParams {
        &self.params
    }

    /// The auxiliary signed roots pinned (RSA-verified once) at open:
    /// one for FULL, two for HYP, none for DIJ/LDM.
    pub fn pins(&self) -> &PinnedAux {
        &self.pins
    }

    /// Read-locks the shard and checks this session's epoch is still
    /// retained; call sites resolve the pinned provider out of the
    /// returned guard.
    fn guard(&self) -> Result<RwLockReadGuard<'_, ServiceState>, SessionError> {
        let st = self.state.read().expect("service lock poisoned");
        st.resolve(self.epoch)?;
        Ok(st)
    }

    /// Answers and verifies one query against the pinned epoch root.
    pub fn query(&self, vs: NodeId, vt: NodeId) -> Result<SessionAnswer, SessionError> {
        let answer = {
            let st = self.state.read().expect("service lock poisoned");
            st.resolve(self.epoch)?.answer(vs, vt)?
        };
        let v = self
            .client
            .verify_pinned(vs, vt, &answer, &self.root, Some(&self.pins))?;
        Ok(SessionAnswer {
            path: answer.path,
            distance: v.distance,
        })
    }

    /// Provider half of a batched query: proves `queries` against the
    /// session's epoch (one pooled proof — shared tuples, one Merkle
    /// cover, aux once per batch). Fails with
    /// [`SessionError::EpochInvalidated`] only once the epoch has been
    /// evicted from the shard's retention ring.
    ///
    /// Split from [`Self::verify_batch`] so benches and tests can
    /// measure, serialize, or tamper with the proof between the two
    /// halves; [`Self::query_batch`] composes them.
    pub fn answer_batch(&self, queries: &[(NodeId, NodeId)]) -> Result<BatchAnswer, SessionError> {
        let st = self.guard()?;
        Ok(st.resolve(self.epoch)?.answer_batch_impl(queries)?)
    }

    /// Client half of a batched query: verifies a batch against the
    /// session's pinned roots, returning the proven optimum per query.
    pub fn verify_batch(
        &self,
        queries: &[(NodeId, NodeId)],
        batch: &BatchAnswer,
    ) -> Result<Vec<f64>, SessionError> {
        Ok(self
            .client
            .verify_batch_impl(queries, batch, Some(&self.root), Some(&self.pins))?)
    }

    /// Answers and verifies a batch with one pooled proof.
    pub fn query_batch(
        &self,
        queries: &[(NodeId, NodeId)],
    ) -> Result<Vec<SessionAnswer>, SessionError> {
        let batch = self.answer_batch(queries)?;
        let distances = self.verify_batch(queries, &batch)?;
        Ok(batch
            .queries
            .into_iter()
            .zip(distances)
            .map(|(q, distance)| SessionAnswer {
                path: q.path,
                distance,
            })
            .collect())
    }

    /// The owner public key this session's client trusts — what
    /// higher-level verified operators (e.g. `spnet-queries`' POI
    /// directory) authenticate additional owner-signed roots against.
    pub fn owner_key(&self) -> &spnet_crypto::rsa::RsaPublicKey {
        self.client.public_key()
    }

    /// Provider half of a verified range query: the claimed member
    /// set with its completeness certificate, proven against the
    /// session's epoch.
    pub fn answer_range(
        &self,
        source: NodeId,
        radius: f64,
    ) -> Result<crate::queries::RangeAnswer, SessionError> {
        let st = self.guard()?;
        Ok(st.resolve(self.epoch)?.answer_range(source, radius)?)
    }

    /// Client half of a verified range query, against the session's
    /// pinned roots.
    pub fn verify_range(
        &self,
        source: NodeId,
        radius: f64,
        answer: &crate::queries::RangeAnswer,
    ) -> Result<Vec<(NodeId, f64)>, SessionError> {
        Ok(self
            .client
            .verify_range_pinned(source, radius, answer, &self.root, Some(&self.pins))?)
    }

    /// Answers and verifies a range query — every node within
    /// `radius` of `source`, certified **complete**: omitting any
    /// in-range node (or shrinking the radius) fails verification
    /// with a typed [`crate::error::VerifyError`].
    pub fn query_range(
        &self,
        source: NodeId,
        radius: f64,
    ) -> Result<Vec<(NodeId, f64)>, SessionError> {
        let answer = self.answer_range(source, radius)?;
        self.verify_range(source, radius, &answer)
    }

    /// Serves `queries` as a verified stream with the default chunk
    /// size: an iterator yielding each pooled chunk's verified answers
    /// as the provider produces it.
    pub fn query_stream<'s>(&'s self, queries: &'s [(NodeId, NodeId)]) -> SessionStream<'s> {
        self.query_stream_chunked(queries, DEFAULT_CHUNK_LEN)
    }

    /// [`Self::query_stream`] with an explicit chunk size (clamped to
    /// at least 1).
    ///
    /// With the service scheduler on (the default), chunks are double
    /// buffered: chunk *k+1* is proven on a pool worker while this
    /// thread verifies chunk *k*. The proofs are bit-identical to
    /// inline serving — `answer_batch` is deterministic and each chunk
    /// is proven under the same epoch guard.
    ///
    /// An owner update mid-stream does **not** interrupt the stream:
    /// the session's epoch stays pinned in the shard's MVCC ring, so
    /// remaining chunks keep proving against the original root. Only
    /// when the pinned epoch is evicted (more updates than the
    /// retention horizon) does the next emitted chunk surface
    /// [`SessionError::EpochInvalidated`] — prefetched chunks proven
    /// before the eviction are discarded, never served. Every chunk
    /// round-trips through the versioned stream
    /// wire frames and the full batched verification, so the bytes
    /// path of a networked deployment is exercised end to end.
    pub fn query_stream_chunked<'s>(
        &'s self,
        queries: &'s [(NodeId, NodeId)],
        chunk_len: usize,
    ) -> SessionStream<'s> {
        SessionStream {
            session: self,
            queries,
            chunk_len: chunk_len.max(1),
            verifier: StreamVerifier::with_session_pins(
                &self.client,
                queries,
                &self.root,
                &self.pins,
            ),
            next: 0,
            chunks_emitted: 0,
            stage: StreamStage::Header,
            pending: None,
        }
    }
}

enum StreamStage {
    Header,
    Chunks,
    End,
    Done,
}

/// A lazy, incrementally verified query stream over a session (see
/// [`Session::query_stream`]). Each `next()` ships and verifies one
/// pooled chunk, yielding its [`SessionAnswer`]s; with a scheduler the
/// following chunk is already being proven on a pool worker.
///
/// NOTE: this drives the same Header → Chunks → End framing as the
/// raw provider-side [`crate::stream::AnswerStream`], differing only
/// in the per-chunk epoch guards and prefetching; framing changes must
/// be mirrored in both, and the shared [`StreamVerifier`] enforces the
/// result.
pub struct SessionStream<'s> {
    session: &'s Session,
    queries: &'s [(NodeId, NodeId)],
    chunk_len: usize,
    verifier: StreamVerifier<'s>,
    next: usize,
    chunks_emitted: u32,
    stage: StreamStage,
    /// The in-flight prefetch of the chunk starting at `next`, if the
    /// session has a scheduler.
    pending: Option<mpsc::Receiver<Result<Vec<u8>, SessionError>>>,
}

impl SessionStream<'_> {
    /// Feeds one frame through the client-side verifier, translating
    /// stream errors.
    fn feed(&mut self, frame: Vec<u8>) -> Result<Vec<SessionAnswer>, SessionError> {
        let items = self.verifier.feed(&frame)?;
        Ok(items
            .into_iter()
            .map(|it| SessionAnswer {
                path: it.path,
                distance: it.distance,
            })
            .collect())
    }

    /// Submits the proving of `queries[start..end]` to the scheduler;
    /// the returned channel delivers the encoded chunk frame. The job
    /// resolves the session's pinned epoch **under the shard read
    /// lock** before proving, so every chunk is proven against exactly
    /// the epoch the session opened on (or fails if it was evicted).
    fn schedule(&self, start: usize, end: usize) -> mpsc::Receiver<Result<Vec<u8>, SessionError>> {
        let sched = self.session.scheduler.as_ref().expect("scheduler present");
        let (tx, rx) = mpsc::channel();
        let state = Arc::clone(&self.session.state);
        let epoch = self.session.epoch;
        let chunk: Vec<(NodeId, NodeId)> = self.queries[start..end].to_vec();
        sched.spawn(move || {
            let result = (|| -> Result<Vec<u8>, SessionError> {
                let st = state.read().expect("service lock poisoned");
                let batch = st.resolve(epoch)?.answer_batch_impl(&chunk)?;
                Ok(encode_frame(&StreamFrame::Chunk {
                    start: start as u32,
                    batch: Box::new(batch),
                }))
            })();
            // The consumer may have bailed (stream dropped or errored);
            // a dead receiver is fine.
            let _ = tx.send(result);
        });
        rx
    }

    /// Proves `queries[start..end]` on the calling thread (no
    /// scheduler), holding the epoch guard across the proving so the
    /// chunk is consistent with the epoch.
    fn prove_inline(&self, start: usize, end: usize) -> Result<Vec<u8>, SessionError> {
        let st = self.session.guard()?;
        let batch = st
            .resolve(self.session.epoch)?
            .answer_batch_impl(&self.queries[start..end])?;
        Ok(encode_frame(&StreamFrame::Chunk {
            start: start as u32,
            batch: Box::new(batch),
        }))
    }
}

impl Iterator for SessionStream<'_> {
    /// One verified chunk of answers per step.
    type Item = Result<Vec<SessionAnswer>, SessionError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.stage {
                StreamStage::Header => {
                    self.stage = if self.queries.is_empty() {
                        StreamStage::End
                    } else {
                        StreamStage::Chunks
                    };
                    let frame = encode_frame(&StreamFrame::Header {
                        total_queries: self.queries.len() as u32,
                        chunk_len: self.chunk_len as u32,
                        method_code: self.session.params.code(),
                    });
                    match self.feed(frame) {
                        Ok(_) => continue,
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            return Some(Err(e));
                        }
                    }
                }
                StreamStage::Chunks => {
                    let start = self.next;
                    let end = (start + self.chunk_len).min(self.queries.len());
                    let produced = if self.session.scheduler.is_some() {
                        // Double buffering: receive this chunk's proof,
                        // then immediately schedule the next chunk so a
                        // worker proves it while we verify this one.
                        let rx = match self.pending.take() {
                            Some(rx) => rx,
                            None => self.schedule(start, end),
                        };
                        let received = rx
                            .recv()
                            .unwrap_or(Err(SessionError::Scheduler("prefetch worker lost")));
                        if end < self.queries.len() {
                            let nend = (end + self.chunk_len).min(self.queries.len());
                            self.pending = Some(self.schedule(end, nend));
                        }
                        received
                    } else {
                        self.prove_inline(start, end)
                    };
                    // Emission-time epoch check: a bump after the
                    // prefetch proved this chunk discards it here, so
                    // an invalidated stream never emits another chunk.
                    let frame = match produced.and_then(|f| self.session.guard().map(|_| f)) {
                        Ok(f) => f,
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            return Some(Err(e));
                        }
                    };
                    self.next = end;
                    self.chunks_emitted += 1;
                    if end == self.queries.len() {
                        self.stage = StreamStage::End;
                    }
                    return match self.feed(frame) {
                        Ok(items) => Some(Ok(items)),
                        Err(e) => {
                            self.stage = StreamStage::Done;
                            Some(Err(e))
                        }
                    };
                }
                StreamStage::End => {
                    self.stage = StreamStage::Done;
                    let frame = encode_frame(&StreamFrame::End {
                        total_chunks: self.chunks_emitted,
                    });
                    match self.feed(frame) {
                        Ok(_) => {
                            debug_assert!(self.verifier.finished());
                            return None;
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
                StreamStage::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;
    use spnet_graph::Graph;

    fn deploy(method: MethodConfig) -> (Graph, SpService, Client, RsaKeyPair) {
        let g = grid_network(9, 9, 1.15, 2200);
        let mut rng = StdRng::seed_from_u64(2201);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let p = DataOwner::publish_with_key(&g, &method, &SetupConfig::default(), &kp);
        let client = Client::new(p.public_key);
        (g, SpService::new(p.package), client, kp)
    }

    /// [`deploy`] with an explicit MVCC retention horizon (builder
    /// path, inline scheduler).
    fn deploy_retain(
        method: MethodConfig,
        retain: usize,
    ) -> (Graph, SpService, Client, RsaKeyPair) {
        let g = grid_network(9, 9, 1.15, 2200);
        let mut rng = StdRng::seed_from_u64(2201);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let p = DataOwner::publish_with_key(&g, &method, &SetupConfig::default(), &kp);
        let client = Client::new(p.public_key);
        let service = SpService::builder()
            .package(p.package)
            .threads(0)
            .retain_epochs(retain)
            .build();
        (g, service, client, kp)
    }

    /// The graph with one edge re-weighted — the post-update truth.
    fn reweighted(g: &Graph, u: NodeId, v: NodeId, w: f64) -> Graph {
        let mut g2 = g.clone();
        g2.set_edge_weight(u, v, w).expect("edge exists");
        g2
    }

    fn all_methods() -> Vec<MethodConfig> {
        vec![
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ]
    }

    const QUERIES: [(u32, u32); 5] = [(0, 80), (4, 76), (40, 41), (80, 0), (9, 71)];

    fn as_nodes(qs: &[(u32, u32)]) -> Vec<(NodeId, NodeId)> {
        qs.iter().map(|&(s, t)| (NodeId(s), NodeId(t))).collect()
    }

    #[test]
    fn sessions_serve_all_methods_through_one_facade() {
        for method in all_methods() {
            let (g, service, client, _) = deploy(method.clone());
            assert_eq!(service.method_name(), method.name());
            let session = service.open_session(client).unwrap();
            assert_eq!(session.method_name(), method.name());
            for &(s, t) in &QUERIES {
                let (s, t) = (NodeId(s), NodeId(t));
                let a = session.query(s, t).unwrap();
                let truth = dijkstra_path(&g, s, t).unwrap().distance;
                assert!(
                    (a.distance - truth).abs() <= 1e-6 * truth.max(1.0),
                    "{}: ({s},{t})",
                    method.name()
                );
                assert_eq!(a.path.source(), s);
                assert_eq!(a.path.target(), t);
            }
            // Batch and stream agree with single queries.
            let qs = as_nodes(&QUERIES);
            let batch = session.query_batch(&qs).unwrap();
            let streamed: Vec<SessionAnswer> = session
                .query_stream_chunked(&qs, 2)
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(batch.len(), qs.len());
            assert_eq!(streamed.len(), qs.len());
            for ((b, s_), &(vs, vt)) in batch.iter().zip(&streamed).zip(&qs) {
                let single = session.query(vs, vt).unwrap();
                assert_eq!(
                    b.distance.to_bits(),
                    single.distance.to_bits(),
                    "{}: batch ≡ sequential",
                    method.name()
                );
                assert_eq!(
                    s_.distance.to_bits(),
                    single.distance.to_bits(),
                    "{}: stream ≡ sequential",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn sessions_pin_the_methods_aux_roots() {
        for (method, expected) in [
            (MethodConfig::Dij, 0usize),
            (
                MethodConfig::Full {
                    use_floyd_warshall: false,
                },
                1,
            ),
            (
                MethodConfig::Ldm(LdmConfig {
                    landmarks: 6,
                    ..LdmConfig::default()
                }),
                0,
            ),
            (MethodConfig::Hyp { cells: 9 }, 2),
        ] {
            let (_, service, client, _) = deploy(method.clone());
            let session = service.open_session(client).unwrap();
            assert_eq!(
                session.pins().len(),
                expected,
                "{}: pinned aux roots",
                method.name()
            );
        }
    }

    #[test]
    fn builder_routes_sessions_across_methods() {
        let g = grid_network(9, 9, 1.15, 2210);
        let mut rng = StdRng::seed_from_u64(2211);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let mut builder = SpService::builder().threads(0);
        for method in all_methods() {
            let p = DataOwner::publish_with_key(&g, &method, &SetupConfig::default(), &kp);
            builder = builder.package(p.package);
        }
        let service = builder.build();
        assert_eq!(service.shard_count(), 4);
        let client = Client::new(kp.public_key().clone());
        for (code, name) in [(1u8, "DIJ"), (2, "FULL"), (3, "LDM"), (4, "HYP")] {
            let session = service.open_session_for(client.clone(), code).unwrap();
            assert_eq!(session.method_name(), name);
            let truth = dijkstra_path(&g, NodeId(0), NodeId(80)).unwrap().distance;
            let a = session.query(NodeId(0), NodeId(80)).unwrap();
            assert!(
                (a.distance - truth).abs() <= 1e-6 * truth.max(1.0),
                "{name}"
            );
        }
        // A method nobody serves is rejected at open.
        assert_eq!(
            service.open_session_for(client, 9).err().unwrap(),
            SessionError::OpenRejected(VerifyError::MetaMismatch(
                "no shard serves the requested method"
            ))
        );
    }

    #[test]
    fn key_ranges_route_to_the_owning_shard() {
        // Two DIJ shards over *different* networks: the key decides
        // which network answers, observable through the distances.
        let ga = grid_network(9, 9, 1.15, 2220);
        let gb = grid_network(9, 9, 1.45, 2221);
        let mut rng = StdRng::seed_from_u64(2222);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let pa = DataOwner::publish_with_key(&ga, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let pb = DataOwner::publish_with_key(&gb, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let service = SpService::builder()
            .shard(pa.package, (0, 40))
            .shard(pb.package, (41, 80))
            .threads(0)
            .build();
        let client = Client::new(kp.public_key().clone());
        let ta = dijkstra_path(&ga, NodeId(0), NodeId(80)).unwrap().distance;
        let tb = dijkstra_path(&gb, NodeId(0), NodeId(80)).unwrap().distance;
        assert!((ta - tb).abs() > 1e-9, "networks must differ for this test");
        let sa = service
            .open_session_routed(client.clone(), 1, NodeId(7))
            .unwrap();
        assert_eq!(
            sa.query(NodeId(0), NodeId(80)).unwrap().distance.to_bits(),
            ta.to_bits(),
            "key 7 routes to the (0,40) shard"
        );
        let sb = service.open_session_routed(client, 1, NodeId(55)).unwrap();
        assert_eq!(
            sb.query(NodeId(0), NodeId(80)).unwrap().distance.to_bits(),
            tb.to_bits(),
            "key 55 routes to the (41,80) shard"
        );
    }

    #[test]
    fn scheduled_streams_match_inline_serving() {
        // The double-buffered (scheduler) stream must produce answers
        // bit-identical to inline proving.
        let g = grid_network(9, 9, 1.15, 2230);
        let mut rng = StdRng::seed_from_u64(2231);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let client = Client::new(kp.public_key().clone());
        let collect = |service: &SpService| -> Vec<u64> {
            let session = service.open_session(client.clone()).unwrap();
            session
                .query_stream_chunked(&as_nodes(&QUERIES), 2)
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .flatten()
                .map(|a| a.distance.to_bits())
                .collect()
        };
        let publish =
            || DataOwner::publish_with_key(&g, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let inline = SpService::builder()
            .package(publish().package)
            .threads(0)
            .build();
        let pooled = SpService::builder()
            .package(publish().package)
            .threads(2)
            .build();
        assert_eq!(collect(&inline), collect(&pooled));
        let (executed, _) = pooled.scheduler_stats().expect("scheduler ran");
        assert!(executed >= 3, "each chunk proven on the pool");
        assert!(
            inline.scheduler_stats().is_none(),
            "threads(0) stays inline"
        );
    }

    #[test]
    fn wrong_owner_key_rejected_at_open() {
        let (_, service, _, _) = deploy(MethodConfig::Dij);
        let mut rng = StdRng::seed_from_u64(2202);
        let other = RsaKeyPair::generate(&mut rng, 256);
        let err = service
            .open_session(Client::new(other.public_key().clone()))
            .err()
            .unwrap();
        assert_eq!(err, SessionError::OpenRejected(VerifyError::BadSignature));
    }

    #[test]
    fn pinned_epochs_drain_open_sessions_through_updates() {
        // Default retention: an owner update must NOT interrupt open
        // sessions — they drain on their pinned epoch's root while new
        // sessions bind the fresh epoch and the new truth.
        let (g, service, client, kp) = deploy(MethodConfig::Dij);
        let old_truth = dijkstra_path(&g, NodeId(0), NodeId(80)).unwrap().distance;
        let session = service.open_session(client.clone()).unwrap();
        let qs = as_nodes(&QUERIES);
        let mut stream = session.query_stream_chunked(&qs, 2);
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        // Re-weight the first edge of the 0→80 shortest path so the
        // old and new truths actually differ.
        let path = dijkstra_path(&g, NodeId(0), NodeId(80)).unwrap();
        let (u, v) = (path.nodes[0], path.nodes[1]);
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.update_edge_weight(&kp, u, v, 500.0).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        // The pinned session keeps answering — old epoch, old truth.
        let a = session.query(NodeId(0), NodeId(80)).unwrap();
        assert_eq!(a.distance.to_bits(), old_truth.to_bits());
        // The pre-update stream completes on the pinned epoch.
        let rest: Vec<SessionAnswer> = stream
            .collect::<Result<Vec<_>, _>>()
            .expect("stream drains on its pinned epoch")
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(first.len() + rest.len(), qs.len());
        // A fresh session binds the new epoch and serves the new truth.
        let new_truth = dijkstra_path(&reweighted(&g, u, v, 500.0), NodeId(0), NodeId(80))
            .unwrap()
            .distance;
        assert!((new_truth - old_truth).abs() > 1e-9);
        let fresh = service.open_session(client).unwrap();
        assert_eq!(fresh.epoch(), 1);
        let b = fresh.query(NodeId(0), NodeId(80)).unwrap();
        assert_eq!(b.distance.to_bits(), new_truth.to_bits());
    }

    #[test]
    fn evicted_epoch_invalidates_open_sessions() {
        // retain_epochs(1) restores the strict pre-MVCC semantics: one
        // update evicts epoch 0 and stale sessions fail loudly.
        let (g, service, client, kp) = deploy_retain(MethodConfig::Dij, 1);
        let session = service.open_session(client.clone()).unwrap();
        session.query(NodeId(0), NodeId(80)).unwrap();
        let (u, v, w) = g.edges().next().unwrap();
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.update_edge_weight(&kp, u, v, w * 2.0).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(
            session.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated {
                opened: 0,
                current: 1
            })
        );
        assert!(matches!(
            session.query_batch(&as_nodes(&QUERIES)),
            Err(SessionError::EpochInvalidated { .. })
        ));
        // A reopened session serves the updated network.
        let fresh = service.open_session(client).unwrap();
        assert_eq!(fresh.epoch(), 1);
        let a = fresh.query(NodeId(0), NodeId(80)).unwrap();
        let st = service.read();
        let truth = dijkstra_path(&st.latest().provider.package().graph, NodeId(0), NodeId(80))
            .unwrap()
            .distance;
        assert!((a.distance - truth).abs() <= 1e-6 * truth.max(1.0));
    }

    #[test]
    fn retention_horizon_evicts_oldest_epochs() {
        let (g, service, client, kp) = deploy_retain(MethodConfig::Dij, 2);
        let s0 = service.open_session(client.clone()).unwrap();
        let (u, v, w) = g.edges().next().unwrap();
        service.update_edge_weight(&kp, u, v, w * 2.0).unwrap();
        let s1 = service.open_session(client).unwrap();
        assert_eq!(s1.epoch(), 1);
        // Epochs {0, 1} retained: both sessions still serve.
        s0.query(NodeId(0), NodeId(80)).unwrap();
        s1.query(NodeId(0), NodeId(80)).unwrap();
        service.update_edge_weight(&kp, u, v, w * 3.0).unwrap();
        // Epochs {1, 2}: s0's epoch fell off the ring, s1 survives.
        assert_eq!(
            s0.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated {
                opened: 0,
                current: 2
            })
        );
        s1.query(NodeId(0), NodeId(80)).unwrap();
    }

    #[test]
    fn evicted_epoch_mid_stream_surfaces_as_invalidation() {
        let (g, service, client, kp) = deploy_retain(MethodConfig::Dij, 1);
        let session = service.open_session(client).unwrap();
        let qs = as_nodes(&QUERIES);
        let mut stream = session.query_stream_chunked(&qs, 2);
        // First chunk verifies fine.
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        // Owner updates between chunks; retain 1 evicts the epoch.
        let (u, v, w) = g.edges().next().unwrap();
        service.update_edge_weight(&kp, u, v, w * 3.0).unwrap();
        // The next chunk is refused — never silently stale, even if the
        // scheduler already proved it before the eviction.
        assert!(matches!(
            stream.next().unwrap(),
            Err(SessionError::EpochInvalidated { .. })
        ));
        assert!(stream.next().is_none(), "stream ends after the error");
    }

    #[test]
    fn hint_methods_update_through_the_service() {
        // HYP carries the heaviest hint state; the service-level update
        // must repair it in place and serve the new truth.
        let (g, service, client, kp) = deploy(MethodConfig::Hyp { cells: 9 });
        let path = dijkstra_path(&g, NodeId(0), NodeId(80)).unwrap();
        let (u, v) = (path.nodes[0], path.nodes[1]);
        assert_eq!(service.update_edge_weight(&kp, u, v, 500.0).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        let truth = dijkstra_path(&reweighted(&g, u, v, 500.0), NodeId(0), NodeId(80))
            .unwrap()
            .distance;
        let session = service.open_session(client).unwrap();
        assert_eq!(session.epoch(), 1);
        let a = session.query(NodeId(0), NodeId(80)).unwrap();
        assert!((a.distance - truth).abs() <= 1e-6 * truth.max(1.0));
    }

    #[test]
    fn mixed_method_service_updates_every_shard() {
        // One DIJ shard + one HYP shard over the same network: a single
        // owner update repairs both hint sets and bumps both epochs
        // atomically.
        let g = grid_network(9, 9, 1.15, 2240);
        let mut rng = StdRng::seed_from_u64(2241);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let dij = DataOwner::publish_with_key(&g, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let hyp = DataOwner::publish_with_key(
            &g,
            &MethodConfig::Hyp { cells: 9 },
            &SetupConfig::default(),
            &kp,
        );
        let service = SpService::builder()
            .package(dij.package)
            .package(hyp.package)
            .threads(0)
            .build();
        let path = dijkstra_path(&g, NodeId(0), NodeId(80)).unwrap();
        let (u, v) = (path.nodes[0], path.nodes[1]);
        assert_eq!(service.update_edge_weight(&kp, u, v, 500.0).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        let truth = dijkstra_path(&reweighted(&g, u, v, 500.0), NodeId(0), NodeId(80))
            .unwrap()
            .distance;
        let client = Client::new(kp.public_key().clone());
        for code in [1u8, 4] {
            let session = service.open_session_for(client.clone(), code).unwrap();
            assert_eq!(session.epoch(), 1);
            let a = session.query(NodeId(0), NodeId(80)).unwrap();
            assert!(
                (a.distance - truth).abs() <= 1e-6 * truth.max(1.0),
                "method code {code}"
            );
        }
    }

    #[test]
    fn routed_update_leaves_unrelated_shards_alone() {
        // The update edge lives inside the (0,40) shard's key range, so
        // the (41,80) shard must keep its epoch — and its open sessions
        // — completely untouched, even at retain_epochs(1).
        let ga = grid_network(9, 9, 1.15, 2250);
        let gb = grid_network(9, 9, 1.45, 2251);
        let mut rng = StdRng::seed_from_u64(2252);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let pa = DataOwner::publish_with_key(&ga, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let pb = DataOwner::publish_with_key(&gb, &MethodConfig::Dij, &SetupConfig::default(), &kp);
        let service = SpService::builder()
            .shard(pa.package, (0, 40))
            .shard(pb.package, (41, 80))
            .threads(0)
            .retain_epochs(1)
            .build();
        let client = Client::new(kp.public_key().clone());
        let session_a = service
            .open_session_routed(client.clone(), 1, NodeId(7))
            .unwrap();
        let session_b = service
            .open_session_routed(client.clone(), 1, NodeId(55))
            .unwrap();
        let (u, v, w) = ga
            .edges()
            .find(|&(u, v, _)| u.0 <= 40 && v.0 <= 40)
            .unwrap();
        assert_eq!(service.update_edge_weight(&kp, u, v, w * 2.0).unwrap(), 1);
        // Shard A bumped; with retain 1 its pre-update session is gone.
        assert!(matches!(
            session_a.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated { .. })
        ));
        let fresh_a = service
            .open_session_routed(client.clone(), 1, NodeId(7))
            .unwrap();
        assert_eq!(fresh_a.epoch(), 1);
        // Shard B never saw the update: epoch 0, session still alive.
        session_b.query(NodeId(0), NodeId(80)).unwrap();
        let fresh_b = service.open_session_routed(client, 1, NodeId(55)).unwrap();
        assert_eq!(fresh_b.epoch(), 0);
    }

    #[test]
    fn service_clones_share_state() {
        let (g, service, client, kp) = deploy_retain(MethodConfig::Dij, 1);
        let clone = service.clone();
        let session = clone.open_session(client).unwrap();
        let (u, v, w) = g.edges().next().unwrap();
        service.update_edge_weight(&kp, u, v, w * 2.0).unwrap();
        assert_eq!(clone.epoch(), 1);
        assert!(matches!(
            session.query(NodeId(0), NodeId(80)),
            Err(SessionError::EpochInvalidated { .. })
        ));
    }
}
