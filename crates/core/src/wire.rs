//! Wire format: complete serialization of provider answers.
//!
//! Everything a client receives — the reported path, ΓS and ΓT — can be
//! encoded to bytes and decoded back. This is what an actual deployment
//! transmits, and it makes the proof-size figures exact: the harness's
//! byte counts equal `encode_answer(..).len()` (asserted by tests).
//!
//! Every top-level payload (answer, batch answer, stream frame) opens
//! with an explicit format-version byte ([`WIRE_VERSION`]); decoding a
//! payload from a different format fails with the typed
//! [`DecodeError::UnsupportedVersion`] instead of a misleading
//! truncation error. Streaming batch serving reuses the
//! [`BatchAnswer`] encoding inside [`StreamFrame::Chunk`] frames.

use crate::ads::{AdsMeta, AdsTag, SignedRoot};
use crate::batch::{BatchAnswer, BatchAux, BatchQueryProof};
use crate::enc::{DecodeError, Decoder, Encoder};
use crate::methods::full::{FullBatchProof, FullDistanceProof, FullRowProof};
use crate::proof::{Answer, IntegrityProof, SpProof};
use crate::queries::RangeAnswer;
use crate::tuple::ExtendedTuple;
use spnet_crypto::digest::{Digest, DIGEST_LEN};
use spnet_crypto::mbtree::{KeyRangeProof, KeyedEntry, KeyedProof};
use spnet_crypto::merkle::{MerkleProof, ProofEntry};
use spnet_crypto::rsa::RsaSignature;
use spnet_graph::{NodeId, Path};

/// The wire format version this build encodes and accepts.
///
/// Version 1 was the implicit (headerless) seed format; version 2
/// added the explicit leading version byte and the streaming frames.
pub const WIRE_VERSION: u8 = 2;

/// Emits the leading version byte of every top-level payload.
fn put_version(e: &mut Encoder) {
    e.put_u8(WIRE_VERSION);
}

/// Consumes and checks the leading version byte.
fn take_version(d: &mut Decoder<'_>) -> Result<(), DecodeError> {
    match d.take_u8()? {
        WIRE_VERSION => Ok(()),
        v => Err(DecodeError::UnsupportedVersion(v)),
    }
}

/// Encodes a full answer into bytes.
pub fn encode_answer(a: &Answer) -> Vec<u8> {
    let mut e = Encoder::new();
    put_version(&mut e);
    put_path(&mut e, &a.path);
    put_sp(&mut e, &a.sp);
    put_integrity(&mut e, &a.integrity);
    e.into_bytes()
}

/// Decodes an answer from bytes, requiring full consumption.
pub fn decode_answer(bytes: &[u8]) -> Result<Answer, DecodeError> {
    let mut d = Decoder::new(bytes);
    take_version(&mut d)?;
    let path = take_path(&mut d)?;
    let sp = take_sp(&mut d)?;
    let integrity = take_integrity(&mut d)?;
    d.finish()?;
    Ok(Answer {
        path,
        sp,
        integrity,
    })
}

/// Encodes a batched answer into bytes.
pub fn encode_batch_answer(b: &BatchAnswer) -> Vec<u8> {
    let mut e = Encoder::new();
    put_version(&mut e);
    put_batch_body(&mut e, b);
    e.into_bytes()
}

/// The version-less batch payload (shared with stream chunk frames).
fn put_batch_body(e: &mut Encoder, b: &BatchAnswer) {
    e.put_u32(b.queries.len() as u32);
    for q in &b.queries {
        put_path(e, &q.path);
        e.put_u32(q.members.len() as u32);
        for m in &q.members {
            e.put_u32(*m);
        }
    }
    put_tuples(e, &b.pool);
    put_integrity(e, &b.integrity);
    put_batch_aux(e, &b.aux);
}

/// Decodes a batched answer from bytes, requiring full consumption.
pub fn decode_batch_answer(bytes: &[u8]) -> Result<BatchAnswer, DecodeError> {
    let mut d = Decoder::new(bytes);
    take_version(&mut d)?;
    let b = take_batch_body(&mut d)?;
    d.finish()?;
    Ok(b)
}

/// The version-less batch payload (shared with stream chunk frames).
fn take_batch_body(d: &mut Decoder<'_>) -> Result<BatchAnswer, DecodeError> {
    let k = d.take_u32()? as usize;
    if k > 1 << 24 {
        return Err(DecodeError::LengthOverflow(k as u64));
    }
    let mut queries = Vec::with_capacity(k);
    for _ in 0..k {
        let path = take_path(d)?;
        let m = d.take_u32()? as usize;
        if m > 1 << 24 {
            return Err(DecodeError::LengthOverflow(m as u64));
        }
        let mut members = Vec::with_capacity(m);
        for _ in 0..m {
            members.push(d.take_u32()?);
        }
        queries.push(BatchQueryProof { path, members });
    }
    let pool = take_tuples(d)?;
    let integrity = take_integrity(d)?;
    let aux = take_batch_aux(d)?;
    Ok(BatchAnswer {
        pool,
        queries,
        integrity,
        aux,
    })
}

/// Encodes a range answer (claimed members + pooled tuples + ΓT +
/// method aux) into bytes.
pub fn encode_range_answer(a: &RangeAnswer) -> Vec<u8> {
    let mut e = Encoder::new();
    put_version(&mut e);
    e.put_u32(a.source.0);
    e.put_f64(a.radius);
    e.put_u32(a.members.len() as u32);
    for &(v, d) in &a.members {
        e.put_u32(v.0);
        e.put_f64(d);
    }
    put_tuples(&mut e, &a.pool);
    put_integrity(&mut e, &a.integrity);
    put_batch_aux(&mut e, &a.aux);
    e.into_bytes()
}

/// Decodes a range answer from bytes, requiring full consumption.
pub fn decode_range_answer(bytes: &[u8]) -> Result<RangeAnswer, DecodeError> {
    let mut d = Decoder::new(bytes);
    take_version(&mut d)?;
    let source = NodeId(d.take_u32()?);
    let radius = d.take_f64()?;
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push((NodeId(d.take_u32()?), d.take_f64()?));
    }
    let pool = take_tuples(&mut d)?;
    let integrity = take_integrity(&mut d)?;
    let aux = take_batch_aux(&mut d)?;
    d.finish()?;
    Ok(RangeAnswer {
        source,
        radius,
        members,
        pool,
        integrity,
        aux,
    })
}

// --- streaming frames --------------------------------------------------

/// One frame of a streaming batch answer.
///
/// A stream is `Header`, then `Chunk`s covering contiguous query
/// ranges in order, then `End`. Each frame is independently encoded
/// (version byte + frame tag + payload), so a transport can ship them
/// as separate messages; the [`crate::stream::StreamVerifier`]
/// enforces the framing protocol and rejects truncation, reordering,
/// duplication and count mismatches with typed errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// Opens a stream: how many queries it will answer, the provider's
    /// chunking, and the method's wire code (cross-checked against the
    /// signed params of every chunk).
    Header {
        /// Total queries the stream will cover.
        total_queries: u32,
        /// Nominal queries per chunk (the last chunk may be smaller).
        chunk_len: u32,
        /// The serving method's wire code.
        method_code: u8,
    },
    /// One pooled batch answer covering queries
    /// `start .. start + batch.queries.len()`.
    Chunk {
        /// Index of the first query this chunk answers.
        start: u32,
        /// The chunk's pooled batch answer (boxed: a chunk dwarfs the
        /// fixed-size header/end frames).
        batch: Box<BatchAnswer>,
    },
    /// Closes a stream; binds the chunk count.
    End {
        /// Number of chunk frames the stream carried.
        total_chunks: u32,
    },
}

const FRAME_HEADER: u8 = 1;
const FRAME_CHUNK: u8 = 2;
const FRAME_END: u8 = 3;

/// Encodes one stream frame into bytes.
pub fn encode_frame(f: &StreamFrame) -> Vec<u8> {
    let mut e = Encoder::new();
    put_version(&mut e);
    match f {
        StreamFrame::Header {
            total_queries,
            chunk_len,
            method_code,
        } => {
            e.put_u8(FRAME_HEADER);
            e.put_u32(*total_queries);
            e.put_u32(*chunk_len);
            e.put_u8(*method_code);
        }
        StreamFrame::Chunk { start, batch } => {
            e.put_u8(FRAME_CHUNK);
            e.put_u32(*start);
            put_batch_body(&mut e, batch);
        }
        StreamFrame::End { total_chunks } => {
            e.put_u8(FRAME_END);
            e.put_u32(*total_chunks);
        }
    }
    e.into_bytes()
}

/// Decodes one stream frame from bytes, requiring full consumption.
pub fn decode_frame(bytes: &[u8]) -> Result<StreamFrame, DecodeError> {
    let mut d = Decoder::new(bytes);
    take_version(&mut d)?;
    let frame = match d.take_u8()? {
        FRAME_HEADER => StreamFrame::Header {
            total_queries: d.take_u32()?,
            chunk_len: d.take_u32()?,
            method_code: d.take_u8()?,
        },
        FRAME_CHUNK => StreamFrame::Chunk {
            start: d.take_u32()?,
            batch: Box::new(take_batch_body(&mut d)?),
        },
        FRAME_END => StreamFrame::End {
            total_chunks: d.take_u32()?,
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    d.finish()?;
    Ok(frame)
}

// --- path -------------------------------------------------------------

fn put_path(e: &mut Encoder, p: &Path) {
    e.put_u32(p.nodes.len() as u32);
    for v in &p.nodes {
        e.put_u32(v.0);
    }
    e.put_f64(p.distance);
}

fn take_path(d: &mut Decoder<'_>) -> Result<Path, DecodeError> {
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(NodeId(d.take_u32()?));
    }
    Ok(Path {
        nodes,
        distance: d.take_f64()?,
    })
}

// --- digests / signatures / merkle -------------------------------------

fn put_digest(e: &mut Encoder, d: &Digest) {
    e.put_raw(d.as_bytes());
}

fn take_digest(d: &mut Decoder<'_>) -> Result<Digest, DecodeError> {
    let raw = d.take_raw(DIGEST_LEN)?;
    let mut out = [0u8; DIGEST_LEN];
    out.copy_from_slice(raw);
    Ok(Digest(out))
}

fn put_merkle(e: &mut Encoder, m: &MerkleProof) {
    e.put_u32(m.leaf_count);
    e.put_u32(m.fanout);
    e.put_u32(m.entries.len() as u32);
    for entry in &m.entries {
        e.put_u32(entry.level);
        e.put_u32(entry.index);
        put_digest(e, &entry.digest);
    }
}

fn take_merkle(d: &mut Decoder<'_>) -> Result<MerkleProof, DecodeError> {
    let leaf_count = d.take_u32()?;
    let fanout = d.take_u32()?;
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(ProofEntry {
            level: d.take_u32()?,
            index: d.take_u32()?,
            digest: take_digest(d)?,
        });
    }
    Ok(MerkleProof {
        entries,
        leaf_count,
        fanout,
    })
}

/// Emits a signed ADS root (also used by higher-level crates — e.g.
/// `spnet-queries`' POI certificates — to compose their own payloads).
pub fn put_signed_root(e: &mut Encoder, s: &SignedRoot) {
    put_digest(e, &s.root);
    e.put_u8(match s.meta.tag {
        AdsTag::Network => 1,
        AdsTag::Distance => 2,
        AdsTag::HyperEdges => 3,
        AdsTag::CellDirectory => 4,
        AdsTag::Poi => 5,
    });
    e.put_u64(s.meta.leaf_count);
    e.put_u32(s.meta.fanout);
    e.put_bytes(&s.meta.params);
    e.put_bytes(s.signature.as_bytes());
}

/// Consumes a signed ADS root (counterpart of [`put_signed_root`]).
pub fn take_signed_root(d: &mut Decoder<'_>) -> Result<SignedRoot, DecodeError> {
    let root = take_digest(d)?;
    let tag = match d.take_u8()? {
        1 => AdsTag::Network,
        2 => AdsTag::Distance,
        3 => AdsTag::HyperEdges,
        4 => AdsTag::CellDirectory,
        5 => AdsTag::Poi,
        t => return Err(DecodeError::BadTag(t)),
    };
    let leaf_count = d.take_u64()?;
    let fanout = d.take_u32()?;
    let params = d.take_bytes()?.to_vec();
    let signature = RsaSignature::from_bytes(d.take_bytes()?.to_vec());
    Ok(SignedRoot {
        root,
        meta: AdsMeta {
            tag,
            leaf_count,
            fanout,
            params,
        },
        signature,
    })
}

fn put_keyed(e: &mut Encoder, k: &KeyedProof) {
    e.put_u32(k.entries.len() as u32);
    for entry in &k.entries {
        e.put_u64(entry.key);
        e.put_f64(entry.value);
    }
    for pos in &k.positions {
        e.put_u32(*pos);
    }
    put_merkle(e, &k.merkle);
}

fn take_keyed(d: &mut Decoder<'_>) -> Result<KeyedProof, DecodeError> {
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(KeyedEntry {
            key: d.take_u64()?,
            value: d.take_f64()?,
        });
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(d.take_u32()?);
    }
    Ok(KeyedProof {
        entries,
        positions,
        merkle: take_merkle(d)?,
    })
}

/// Emits a contiguous key-range completeness proof (the certificate
/// shape `spnet-queries`' POI directory ships).
pub fn put_key_range_proof(e: &mut Encoder, k: &KeyRangeProof) {
    e.put_u32(k.entries.len() as u32);
    for entry in &k.entries {
        e.put_u64(entry.key);
        e.put_f64(entry.value);
    }
    e.put_u32(k.first);
    put_merkle(e, &k.merkle);
}

/// Consumes a key-range proof (counterpart of [`put_key_range_proof`]).
pub fn take_key_range_proof(d: &mut Decoder<'_>) -> Result<KeyRangeProof, DecodeError> {
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(KeyedEntry {
            key: d.take_u64()?,
            value: d.take_f64()?,
        });
    }
    let first = d.take_u32()?;
    Ok(KeyRangeProof {
        entries,
        first,
        merkle: take_merkle(&mut *d)?,
    })
}

// --- tuples -------------------------------------------------------------

fn put_tuples(e: &mut Encoder, ts: &[std::sync::Arc<ExtendedTuple>]) {
    e.put_u32(ts.len() as u32);
    for t in ts {
        t.encode(e);
    }
}

fn take_tuples(d: &mut Decoder<'_>) -> Result<Vec<std::sync::Arc<ExtendedTuple>>, DecodeError> {
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(std::sync::Arc::new(ExtendedTuple::decode(d)?));
    }
    Ok(out)
}

// --- ΓS -------------------------------------------------------------

fn put_sp(e: &mut Encoder, sp: &SpProof) {
    match sp {
        SpProof::Subgraph { tuples } => {
            e.put_u8(1);
            put_tuples(e, tuples);
        }
        SpProof::Distance {
            full,
            signed_root,
            path_tuples,
        } => {
            e.put_u8(2);
            e.put_u64(full.entry.key);
            e.put_f64(full.entry.value);
            e.put_u32(full.row_index);
            put_merkle(e, &full.row_proof);
            e.put_u32(full.top_index);
            put_merkle(e, &full.top_proof);
            put_signed_root(e, signed_root);
            put_tuples(e, path_tuples);
        }
        SpProof::Hyp {
            cell_tuples,
            path_tuples,
            hyper,
            hyper_signed_root,
            cell_dir,
            cell_dir_signed_root,
        } => {
            e.put_u8(3);
            put_tuples(e, cell_tuples);
            put_tuples(e, path_tuples);
            put_keyed(e, hyper);
            put_signed_root(e, hyper_signed_root);
            put_keyed(e, cell_dir);
            put_signed_root(e, cell_dir_signed_root);
        }
    }
}

fn take_sp(d: &mut Decoder<'_>) -> Result<SpProof, DecodeError> {
    match d.take_u8()? {
        1 => Ok(SpProof::Subgraph {
            tuples: take_tuples(d)?,
        }),
        2 => {
            let entry = KeyedEntry {
                key: d.take_u64()?,
                value: d.take_f64()?,
            };
            let row_index = d.take_u32()?;
            let row_proof = take_merkle(d)?;
            let top_index = d.take_u32()?;
            let top_proof = take_merkle(d)?;
            let signed_root = take_signed_root(d)?;
            let path_tuples = take_tuples(d)?;
            Ok(SpProof::Distance {
                full: FullDistanceProof {
                    entry,
                    row_index,
                    row_proof,
                    top_index,
                    top_proof,
                },
                signed_root,
                path_tuples,
            })
        }
        3 => Ok(SpProof::Hyp {
            cell_tuples: take_tuples(d)?,
            path_tuples: take_tuples(d)?,
            hyper: take_keyed(d)?,
            hyper_signed_root: take_signed_root(d)?,
            cell_dir: take_keyed(d)?,
            cell_dir_signed_root: take_signed_root(d)?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

// --- batch aux --------------------------------------------------------

fn put_batch_aux(e: &mut Encoder, aux: &BatchAux) {
    match aux {
        BatchAux::Subgraph => e.put_u8(1),
        BatchAux::Full { proof, signed_root } => {
            e.put_u8(2);
            e.put_u32(proof.rows.len() as u32);
            for row in &proof.rows {
                e.put_u32(row.source);
                e.put_u32(row.entries.len() as u32);
                for entry in &row.entries {
                    e.put_u64(entry.key);
                    e.put_f64(entry.value);
                }
                put_merkle(e, &row.row_proof);
            }
            put_merkle(e, &proof.top_proof);
            put_signed_root(e, signed_root);
        }
        BatchAux::Hyp {
            hyper,
            hyper_signed_root,
            cell_dir,
            cell_dir_signed_root,
        } => {
            e.put_u8(3);
            put_keyed(e, hyper);
            put_signed_root(e, hyper_signed_root);
            put_keyed(e, cell_dir);
            put_signed_root(e, cell_dir_signed_root);
        }
    }
}

fn take_batch_aux(d: &mut Decoder<'_>) -> Result<BatchAux, DecodeError> {
    match d.take_u8()? {
        1 => Ok(BatchAux::Subgraph),
        2 => {
            let n = d.take_u32()? as usize;
            if n > 1 << 24 {
                return Err(DecodeError::LengthOverflow(n as u64));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let source = d.take_u32()?;
                let m = d.take_u32()? as usize;
                if m > 1 << 24 {
                    return Err(DecodeError::LengthOverflow(m as u64));
                }
                let mut entries = Vec::with_capacity(m);
                for _ in 0..m {
                    entries.push(KeyedEntry {
                        key: d.take_u64()?,
                        value: d.take_f64()?,
                    });
                }
                let row_proof = take_merkle(d)?;
                rows.push(FullRowProof {
                    source,
                    entries,
                    row_proof,
                });
            }
            let top_proof = take_merkle(d)?;
            let signed_root = take_signed_root(d)?;
            Ok(BatchAux::Full {
                proof: FullBatchProof { rows, top_proof },
                signed_root,
            })
        }
        3 => Ok(BatchAux::Hyp {
            hyper: take_keyed(d)?,
            hyper_signed_root: take_signed_root(d)?,
            cell_dir: take_keyed(d)?,
            cell_dir_signed_root: take_signed_root(d)?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

// --- ΓT -------------------------------------------------------------

fn put_integrity(e: &mut Encoder, i: &IntegrityProof) {
    e.put_u32(i.positions.len() as u32);
    for p in &i.positions {
        e.put_u32(*p);
    }
    put_merkle(e, &i.merkle);
    put_signed_root(e, &i.signed_root);
}

fn take_integrity(d: &mut Decoder<'_>) -> Result<IntegrityProof, DecodeError> {
    let n = d.take_u32()? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::LengthOverflow(n as u64));
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(d.take_u32()?);
    }
    Ok(IntegrityProof {
        positions,
        merkle: take_merkle(d)?,
        signed_root: take_signed_root(d)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use crate::provider::ServiceProvider;
    use crate::Client;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn answers_for(method: MethodConfig) -> (Answer, Client) {
        let g = grid_network(9, 9, 1.15, 1300);
        let mut rng = StdRng::seed_from_u64(1301);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        let client = Client::new(p.public_key);
        let provider = ServiceProvider::new(p.package);
        (provider.answer(NodeId(0), NodeId(80)).unwrap(), client)
    }

    fn all_methods() -> Vec<MethodConfig> {
        vec![
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ]
    }

    #[test]
    fn round_trip_all_methods() {
        for method in all_methods() {
            let (answer, _) = answers_for(method.clone());
            let bytes = encode_answer(&answer);
            let back = decode_answer(&bytes).unwrap();
            assert_eq!(back, answer, "{}", method.name());
        }
    }

    #[test]
    fn decoded_answers_still_verify() {
        for method in all_methods() {
            let (answer, client) = answers_for(method.clone());
            let bytes = encode_answer(&answer);
            let back = decode_answer(&bytes).unwrap();
            client
                .verify(NodeId(0), NodeId(80), &back)
                .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        }
    }

    #[test]
    fn wire_size_close_to_stats_accounting() {
        // The stats accounting (per-component) and the actual wire
        // bytes agree within framing overhead (< 5% + 64 bytes).
        for method in all_methods() {
            let (answer, _) = answers_for(method.clone());
            let wire = encode_answer(&answer).len();
            let stats = answer.stats().total_bytes();
            let tolerance = stats / 20 + 64;
            assert!(
                wire.abs_diff(stats) <= tolerance,
                "{}: wire {wire} vs stats {stats}",
                method.name()
            );
        }
    }

    #[test]
    fn truncated_bytes_rejected() {
        let (answer, _) = answers_for(MethodConfig::Dij);
        let bytes = encode_answer(&answer);
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_answer(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (answer, _) = answers_for(MethodConfig::Dij);
        let mut bytes = encode_answer(&answer);
        bytes.push(0);
        assert!(matches!(
            decode_answer(&bytes),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bit_flips_change_decoded_answer_or_fail() {
        // Any single byte flip either fails to decode or decodes to a
        // different answer (no silent aliasing).
        let (answer, _) = answers_for(MethodConfig::Dij);
        let bytes = encode_answer(&answer);
        let step = (bytes.len() / 23).max(1);
        for i in (0..bytes.len()).step_by(step) {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            match decode_answer(&evil) {
                Err(_) => {}
                Ok(back) => assert_ne!(back, answer, "flip at {i} aliased"),
            }
        }
    }

    fn batch_for(method: MethodConfig) -> (Vec<(NodeId, NodeId)>, BatchAnswer, Client) {
        let g = grid_network(9, 9, 1.15, 1302);
        let mut rng = StdRng::seed_from_u64(1303);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        let client = Client::new(p.public_key);
        let provider = ServiceProvider::new(p.package);
        let queries = vec![
            (NodeId(0), NodeId(80)),
            (NodeId(1), NodeId(79)),
            (NodeId(0), NodeId(40)),
        ];
        (
            queries.clone(),
            provider.answer_batch_impl(&queries).unwrap(),
            client,
        )
    }

    #[test]
    fn batch_round_trip_all_methods() {
        for method in all_methods() {
            let (_, batch, _) = batch_for(method.clone());
            let bytes = encode_batch_answer(&batch);
            let back = decode_batch_answer(&bytes).unwrap();
            assert_eq!(back, batch, "{}", method.name());
        }
    }

    #[test]
    fn decoded_batches_still_verify() {
        for method in all_methods() {
            let (queries, batch, client) = batch_for(method.clone());
            let bytes = encode_batch_answer(&batch);
            let back = decode_batch_answer(&bytes).unwrap();
            let want = client
                .verify_batch_impl(&queries, &batch, None, None)
                .unwrap();
            let got = client
                .verify_batch_impl(&queries, &back, None, None)
                .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "{}", method.name());
            }
        }
    }

    #[test]
    fn truncated_batch_bytes_rejected() {
        for method in all_methods() {
            let (_, batch, _) = batch_for(method);
            let bytes = encode_batch_answer(&batch);
            for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
                assert!(decode_batch_answer(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            let mut long = bytes.clone();
            long.push(0);
            assert!(matches!(
                decode_batch_answer(&long),
                Err(DecodeError::TrailingBytes(1))
            ));
        }
    }

    #[test]
    fn bad_batch_aux_tag_rejected() {
        let (_, batch, _) = batch_for(MethodConfig::Dij);
        let mut bytes = encode_batch_answer(&batch);
        // The aux block is the final section; for DIJ it is the single
        // trailing Subgraph tag byte.
        assert_eq!(*bytes.last().unwrap(), 1);
        *bytes.last_mut().unwrap() = 99;
        assert!(matches!(
            decode_batch_answer(&bytes),
            Err(DecodeError::BadTag(99))
        ));
    }

    #[test]
    fn bad_sp_tag_rejected() {
        let (answer, _) = answers_for(MethodConfig::Dij);
        let mut bytes = encode_answer(&answer);
        // The ΓS tag byte sits right after the version byte + path
        // block.
        let tag_pos = 1 + 4 + answer.path.nodes.len() * 4 + 8;
        bytes[tag_pos] = 99;
        assert!(matches!(
            decode_answer(&bytes),
            Err(DecodeError::BadTag(99))
        ));
    }

    #[test]
    fn wrong_version_byte_rejected_with_typed_error() {
        let (answer, _) = answers_for(MethodConfig::Dij);
        let mut bytes = encode_answer(&answer);
        assert_eq!(bytes[0], WIRE_VERSION);
        bytes[0] = WIRE_VERSION + 1;
        assert_eq!(
            decode_answer(&bytes),
            Err(DecodeError::UnsupportedVersion(WIRE_VERSION + 1))
        );
        let (_, batch, _) = batch_for(MethodConfig::Dij);
        let mut bbytes = encode_batch_answer(&batch);
        bbytes[0] = 0;
        assert_eq!(
            decode_batch_answer(&bbytes),
            Err(DecodeError::UnsupportedVersion(0))
        );
        let mut fbytes = encode_frame(&StreamFrame::End { total_chunks: 3 });
        fbytes[0] = 7;
        assert_eq!(
            decode_frame(&fbytes),
            Err(DecodeError::UnsupportedVersion(7))
        );
    }

    fn range_for(method: MethodConfig) -> (crate::queries::RangeAnswer, Client) {
        let g = grid_network(9, 9, 1.15, 1304);
        let mut rng = StdRng::seed_from_u64(1305);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        let client = Client::new(p.public_key);
        let provider = ServiceProvider::new(p.package);
        (provider.answer_range(NodeId(40), 3_000.0).unwrap(), client)
    }

    #[test]
    fn range_answer_round_trip_all_methods() {
        for method in all_methods() {
            let (answer, client) = range_for(method.clone());
            let bytes = encode_range_answer(&answer);
            let back = decode_range_answer(&bytes).unwrap();
            assert_eq!(back, answer, "{}", method.name());
            client
                .verify_range(NodeId(40), 3_000.0, &back)
                .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        }
    }

    #[test]
    fn truncated_range_bytes_rejected() {
        let (answer, _) = range_for(MethodConfig::Dij);
        let bytes = encode_range_answer(&answer);
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_range_answer(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            decode_range_answer(&long),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn key_range_proof_round_trip() {
        use spnet_crypto::mbtree::MerkleBTree;
        let entries: Vec<KeyedEntry> = (0..40u64)
            .map(|i| KeyedEntry {
                key: i * 3,
                value: i as f64 * 0.5,
            })
            .collect();
        let tree = MerkleBTree::build(entries, 4).unwrap();
        let proof = tree.prove_key_range(9, 60).unwrap();
        let mut e = Encoder::new();
        put_key_range_proof(&mut e, &proof);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = take_key_range_proof(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, proof);
        let got = back.verify(tree.root(), 9, 60).unwrap();
        // Keys are multiples of 3; [9, 60] holds 9, 12, …, 60.
        assert_eq!(got.len(), 18);
        for cut in [0usize, 2, bytes.len() / 2, bytes.len() - 1] {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(take_key_range_proof(&mut d).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stream_frames_round_trip() {
        let (_, batch, _) = batch_for(MethodConfig::Hyp { cells: 9 });
        let frames = [
            StreamFrame::Header {
                total_queries: 3,
                chunk_len: 2,
                method_code: 4,
            },
            StreamFrame::Chunk {
                start: 0,
                batch: Box::new(batch),
            },
            StreamFrame::End { total_chunks: 1 },
        ];
        for f in &frames {
            let bytes = encode_frame(f);
            assert_eq!(&decode_frame(&bytes).unwrap(), f);
            // Truncations never alias to a valid frame.
            for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
                assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            let mut long = bytes.clone();
            long.push(0);
            assert!(matches!(
                decode_frame(&long),
                Err(DecodeError::TrailingBytes(1))
            ));
        }
        // An unknown frame tag is rejected.
        let mut bytes = encode_frame(&StreamFrame::End { total_chunks: 0 });
        bytes[1] = 42;
        assert!(matches!(decode_frame(&bytes), Err(DecodeError::BadTag(42))));
    }
}
