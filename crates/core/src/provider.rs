//! The service provider: answers queries with proofs (Algorithm 1).

use crate::error::ProviderError;
use crate::owner::ProviderPackage;
use crate::proof::{Answer, IntegrityProof};
use spnet_graph::algo::{bidirectional_path, dijkstra_path};
use spnet_graph::NodeId;

/// The provider's shortest-path algorithm `algosp` (Algorithm 1,
/// Line 1) — the verification framework is agnostic to this choice, so
/// a provider may pick whatever is fastest for its deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoSp {
    /// Plain Dijkstra (default).
    #[default]
    Dijkstra,
    /// Bidirectional Dijkstra \[24\].
    Bidirectional,
}

/// The service provider role: holds the owner's package and answers
/// shortest-path queries with verification proofs.
///
/// `Clone` deep-copies the package — the service facade's MVCC epoch
/// ring clones the serving state so an owner update repairs a private
/// copy while pinned epochs keep draining the original.
#[derive(Clone)]
pub struct ServiceProvider {
    pub(crate) package: ProviderPackage,
    algo: AlgoSp,
}

impl ServiceProvider {
    /// Wraps an owner package (default `algosp`: Dijkstra).
    pub fn new(package: ProviderPackage) -> Self {
        ServiceProvider {
            package,
            algo: AlgoSp::default(),
        }
    }

    /// Selects a different `algosp`.
    pub fn with_algorithm(mut self, algo: AlgoSp) -> Self {
        self.algo = algo;
        self
    }

    /// Selects a different `algosp` in place (the service facade's
    /// runtime switch).
    pub fn set_algorithm(&mut self, algo: AlgoSp) {
        self.algo = algo;
    }

    /// Read access to the package (used by the tamper simulator).
    pub fn package(&self) -> &ProviderPackage {
        &self.package
    }

    /// The wire code of the method this provider serves (the routing
    /// key of a multi-shard [`crate::service::SpService`]).
    pub fn method_code(&self) -> u8 {
        self.package.hints.method().params_code()
    }

    /// Algorithm 1: computes the shortest path and assembles
    /// `(P_rslt, ΓS, ΓT)`.
    pub fn answer(&self, vs: NodeId, vt: NodeId) -> Result<Answer, ProviderError> {
        let g = &self.package.graph;
        for v in [vs, vt] {
            if g.check_node(v).is_err() {
                return Err(ProviderError::UnknownNode(v));
            }
        }
        // Line 1: the provider's algosp of choice.
        let path = match self.algo {
            AlgoSp::Dijkstra => dijkstra_path(g, vs, vt),
            AlgoSp::Bidirectional => bidirectional_path(g, vs, vt),
        }
        .map_err(|_| ProviderError::Unreachable {
            source: vs,
            target: vt,
        })?;
        // Lines 2–3: ΓS from the hints (dispatched through the method's
        // `AuthMethod` implementation), ΓT from the ADS.
        let method = self.package.hints.method();
        let (sp, covered_nodes) = method.prove(&self.package, vs, vt, &path)?;
        let integrity = self.build_integrity(&covered_nodes)?;
        Ok(Answer {
            path,
            sp,
            integrity,
        })
    }

    /// Builds ΓT over the given node list (order defines the positions
    /// vector). Shared with the range operator ([`crate::queries`]).
    pub(crate) fn build_integrity(
        &self,
        nodes: &[NodeId],
    ) -> Result<IntegrityProof, ProviderError> {
        let ads = &self.package.ads;
        let merkle = ads
            .prove_nodes(nodes.iter().copied())
            .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?;
        Ok(IntegrityProof {
            positions: nodes.iter().map(|&v| ads.position(v)).collect(),
            merkle,
            signed_root: self.package.network_root.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn provider(method: MethodConfig) -> ServiceProvider {
        let g = grid_network(9, 9, 1.15, 800);
        let mut rng = StdRng::seed_from_u64(801);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        ServiceProvider::new(p.package)
    }

    #[test]
    fn answers_have_consistent_shapes() {
        for method in [
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ] {
            let sp = provider(method.clone());
            let a = sp.answer(NodeId(0), NodeId(80)).unwrap();
            assert_eq!(a.path.source(), NodeId(0));
            assert_eq!(a.path.target(), NodeId(80));
            let n_tuples = a.sp.tuples().len() + a.sp.extra_tuples().len();
            assert_eq!(
                a.integrity.positions.len(),
                n_tuples,
                "{}: positions parallel tuples",
                method.name()
            );
            let stats = a.stats();
            assert!(stats.s_bytes > 0 && stats.t_bytes > 0);
        }
    }

    #[test]
    fn bidirectional_algosp_produces_verifiable_answers() {
        use super::AlgoSp;
        let g = grid_network(9, 9, 1.15, 802);
        let mut rng = StdRng::seed_from_u64(803);
        let p = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
        let client = crate::Client::new(p.public_key);
        let sp = ServiceProvider::new(p.package).with_algorithm(AlgoSp::Bidirectional);
        let a = sp.answer(NodeId(0), NodeId(80)).unwrap();
        let v = client.verify(NodeId(0), NodeId(80), &a).unwrap();
        assert!((v.distance - a.path.distance).abs() <= 1e-6 * v.distance.max(1.0));
    }

    #[test]
    fn unknown_node_rejected() {
        let sp = provider(MethodConfig::Dij);
        assert!(matches!(
            sp.answer(NodeId(0), NodeId(999)),
            Err(ProviderError::UnknownNode(_))
        ));
    }

    #[test]
    fn dij_proof_larger_than_full_proof() {
        // The headline comparison of Figure 8a, at unit scale.
        let dij = provider(MethodConfig::Dij);
        let full = provider(MethodConfig::Full {
            use_floyd_warshall: false,
        });
        let a1 = dij.answer(NodeId(0), NodeId(80)).unwrap();
        let a2 = full.answer(NodeId(0), NodeId(80)).unwrap();
        assert!(
            a1.stats().total_bytes() > a2.stats().total_bytes(),
            "DIJ {} ≤ FULL {}",
            a1.stats().total_bytes(),
            a2.stats().total_bytes()
        );
    }
}
