//! The service provider: answers queries with proofs (Algorithm 1).

use crate::error::ProviderError;
use crate::methods::{dij, ldm};
use crate::owner::{MethodHints, ProviderPackage};
use crate::proof::{Answer, IntegrityProof, SpProof};
use crate::tuple::ExtendedTuple;
use spnet_graph::algo::{bidirectional_path, dijkstra_path};
use spnet_graph::{NodeId, Path};
use std::sync::Arc;

/// The provider's shortest-path algorithm `algosp` (Algorithm 1,
/// Line 1) — the verification framework is agnostic to this choice, so
/// a provider may pick whatever is fastest for its deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoSp {
    /// Plain Dijkstra (default).
    #[default]
    Dijkstra,
    /// Bidirectional Dijkstra \[24\].
    Bidirectional,
}

/// The service provider role: holds the owner's package and answers
/// shortest-path queries with verification proofs.
pub struct ServiceProvider {
    pub(crate) package: ProviderPackage,
    algo: AlgoSp,
}

impl ServiceProvider {
    /// Wraps an owner package (default `algosp`: Dijkstra).
    pub fn new(package: ProviderPackage) -> Self {
        ServiceProvider {
            package,
            algo: AlgoSp::default(),
        }
    }

    /// Selects a different `algosp`.
    pub fn with_algorithm(mut self, algo: AlgoSp) -> Self {
        self.algo = algo;
        self
    }

    /// Read access to the package (used by the tamper simulator).
    pub fn package(&self) -> &ProviderPackage {
        &self.package
    }

    /// Algorithm 1: computes the shortest path and assembles
    /// `(P_rslt, ΓS, ΓT)`.
    pub fn answer(&self, vs: NodeId, vt: NodeId) -> Result<Answer, ProviderError> {
        let g = &self.package.graph;
        for v in [vs, vt] {
            if g.check_node(v).is_err() {
                return Err(ProviderError::UnknownNode(v));
            }
        }
        // Line 1: the provider's algosp of choice.
        let path = match self.algo {
            AlgoSp::Dijkstra => dijkstra_path(g, vs, vt),
            AlgoSp::Bidirectional => bidirectional_path(g, vs, vt),
        }
        .map_err(|_| ProviderError::Unreachable {
            source: vs,
            target: vt,
        })?;
        // Lines 2–3: ΓS from the hints, ΓT from the ADS.
        let (sp, covered_nodes) = self.build_sp_proof(vs, vt, &path)?;
        let integrity = self.build_integrity(&covered_nodes)?;
        Ok(Answer {
            path,
            sp,
            integrity,
        })
    }

    /// Assembles ΓS and returns the node list whose tuples ΓT must
    /// cover (in the exact order the proof ships them).
    fn build_sp_proof(
        &self,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError> {
        let g = &self.package.graph;
        let ads = &self.package.ads;
        match &self.package.hints {
            MethodHints::Dij => {
                let nodes = dij::gamma_nodes(g, vs, path.distance);
                let tuples: Vec<Arc<ExtendedTuple>> =
                    nodes.iter().map(|&v| ads.tuple_shared(v)).collect();
                Ok((SpProof::Subgraph { tuples }, nodes))
            }
            MethodHints::Ldm(hints) => {
                let nodes = ldm::gamma_nodes(g, hints, vs, vt, path.distance);
                let tuples: Vec<Arc<ExtendedTuple>> =
                    nodes.iter().map(|&v| ads.tuple_shared(v)).collect();
                Ok((SpProof::Subgraph { tuples }, nodes))
            }
            MethodHints::Full {
                ads: dads,
                signed_root,
                ..
            } => {
                let full = dads.prove(g, vs, vt);
                let path_tuples: Vec<Arc<ExtendedTuple>> =
                    path.nodes.iter().map(|&v| ads.tuple_shared(v)).collect();
                Ok((
                    SpProof::Distance {
                        full,
                        signed_root: signed_root.clone(),
                        path_tuples,
                    },
                    path.nodes.clone(),
                ))
            }
            MethodHints::Hyp {
                hints,
                hyper_signed,
                cell_dir_signed,
            } => {
                let coarse = hints.coarse_nodes(vs, vt);
                let coarse_set: std::collections::BTreeSet<NodeId> =
                    coarse.iter().copied().collect();
                let extra: Vec<NodeId> = path
                    .nodes
                    .iter()
                    .copied()
                    .filter(|v| !coarse_set.contains(v))
                    .collect();
                let cell_tuples: Vec<Arc<ExtendedTuple>> =
                    coarse.iter().map(|&v| ads.tuple_shared(v)).collect();
                let path_tuples: Vec<Arc<ExtendedTuple>> =
                    extra.iter().map(|&v| ads.tuple_shared(v)).collect();
                let keys = hints.hyper_keys(vs, vt);
                let hyper = match &hints.hyper_tree {
                    Some(t) => t
                        .prove_keys(&keys)
                        .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?,
                    None => {
                        // No borders anywhere (single populated cell):
                        // an empty keyed proof; verification relies on
                        // in-cell distances alone.
                        spnet_crypto::mbtree::KeyedProof {
                            entries: vec![],
                            positions: vec![],
                            merkle: spnet_crypto::merkle::MerkleProof {
                                entries: vec![],
                                leaf_count: 0,
                                fanout: self.package.ads.fanout() as u32,
                            },
                        }
                    }
                };
                let cell_dir = hints
                    .cell_dir
                    .prove_keys(&hints.batch_dir_keys(&[(vs, vt)]))
                    .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?;
                let covered: Vec<NodeId> = coarse.into_iter().chain(extra).collect();
                Ok((
                    SpProof::Hyp {
                        cell_tuples,
                        path_tuples,
                        hyper,
                        hyper_signed_root: hyper_signed.clone(),
                        cell_dir,
                        cell_dir_signed_root: cell_dir_signed.clone(),
                    },
                    covered,
                ))
            }
        }
    }

    /// Builds ΓT over the given node list (order defines the positions
    /// vector).
    fn build_integrity(&self, nodes: &[NodeId]) -> Result<IntegrityProof, ProviderError> {
        let ads = &self.package.ads;
        let merkle = ads
            .prove_nodes(nodes.iter().copied())
            .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?;
        Ok(IntegrityProof {
            positions: nodes.iter().map(|&v| ads.position(v)).collect(),
            merkle,
            signed_root: self.package.network_root.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn provider(method: MethodConfig) -> ServiceProvider {
        let g = grid_network(9, 9, 1.15, 800);
        let mut rng = StdRng::seed_from_u64(801);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        ServiceProvider::new(p.package)
    }

    #[test]
    fn answers_have_consistent_shapes() {
        for method in [
            MethodConfig::Dij,
            MethodConfig::Full {
                use_floyd_warshall: false,
            },
            MethodConfig::Ldm(LdmConfig {
                landmarks: 6,
                ..LdmConfig::default()
            }),
            MethodConfig::Hyp { cells: 9 },
        ] {
            let sp = provider(method.clone());
            let a = sp.answer(NodeId(0), NodeId(80)).unwrap();
            assert_eq!(a.path.source(), NodeId(0));
            assert_eq!(a.path.target(), NodeId(80));
            let n_tuples = a.sp.tuples().len() + a.sp.extra_tuples().len();
            assert_eq!(
                a.integrity.positions.len(),
                n_tuples,
                "{}: positions parallel tuples",
                method.name()
            );
            let stats = a.stats();
            assert!(stats.s_bytes > 0 && stats.t_bytes > 0);
        }
    }

    #[test]
    fn bidirectional_algosp_produces_verifiable_answers() {
        use super::AlgoSp;
        let g = grid_network(9, 9, 1.15, 802);
        let mut rng = StdRng::seed_from_u64(803);
        let p = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
        let client = crate::Client::new(p.public_key);
        let sp = ServiceProvider::new(p.package).with_algorithm(AlgoSp::Bidirectional);
        let a = sp.answer(NodeId(0), NodeId(80)).unwrap();
        let v = client.verify(NodeId(0), NodeId(80), &a).unwrap();
        assert!((v.distance - a.path.distance).abs() <= 1e-6 * v.distance.max(1.0));
    }

    #[test]
    fn unknown_node_rejected() {
        let sp = provider(MethodConfig::Dij);
        assert!(matches!(
            sp.answer(NodeId(0), NodeId(999)),
            Err(ProviderError::UnknownNode(_))
        ));
    }

    #[test]
    fn dij_proof_larger_than_full_proof() {
        // The headline comparison of Figure 8a, at unit scale.
        let dij = provider(MethodConfig::Dij);
        let full = provider(MethodConfig::Full {
            use_floyd_warshall: false,
        });
        let a1 = dij.answer(NodeId(0), NodeId(80)).unwrap();
        let a2 = full.answer(NodeId(0), NodeId(80)).unwrap();
        assert!(
            a1.stats().total_bytes() > a2.stats().total_bytes(),
            "DIJ {} ≤ FULL {}",
            a1.stats().total_bytes(),
            a2.stats().total_bytes()
        );
    }
}
