//! Canonical binary encoding.
//!
//! Every byte that enters a digest or a proof-size measurement flows
//! through this module, so encodings must be deterministic and
//! unambiguous (length-prefixed, little-endian). The proof sizes the
//! benchmark harness reports are exactly the lengths these encoders
//! produce.

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the expected field.
    UnexpectedEnd { wanted: usize, remaining: usize },
    /// A length prefix exceeded a sanity bound.
    LengthOverflow(u64),
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
    /// An enum discriminant was invalid.
    BadTag(u8),
    /// The payload declares a wire format version this build does not
    /// speak (see [`crate::wire::WIRE_VERSION`]) — distinct from
    /// truncation so peers can negotiate instead of retrying.
    UnsupportedVersion(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { wanted, remaining } => {
                write!(
                    f,
                    "unexpected end of input: wanted {wanted} bytes, {remaining} left"
                )
            }
            DecodeError::LengthOverflow(n) => write!(f, "length prefix {n} too large"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            DecodeError::BadTag(t) => write!(f, "invalid discriminant {t}"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire format version {v}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only canonical encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the bytes encoded so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are encoded by IEEE-754 bit pattern — bitwise canonical.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Raw bytes with a u32 length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes with no prefix (fixed-width fields like digests).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based canonical decoder.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }

    pub fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Length-prefixed bytes (bounded at 1 GiB to catch corruption).
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u32()? as u64;
        if len > 1 << 30 {
            return Err(DecodeError::LengthOverflow(len));
        }
        self.take(len as usize)
    }

    /// Fixed-width raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_bool(true);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(0x0123456789ABCDEF);
        e.put_f64(-1234.5678);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 0xAB);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u16().unwrap(), 0xBEEF);
        assert_eq!(d.take_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.take_u64().unwrap(), 0x0123456789ABCDEF);
        assert_eq!(d.take_f64().unwrap(), -1234.5678);
        d.finish().unwrap();
    }

    #[test]
    fn round_trip_bytes() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello");
        e.put_bytes(b"");
        e.put_raw(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_bytes().unwrap(), b"hello");
        assert_eq!(d.take_bytes().unwrap(), b"");
        assert_eq!(d.take_raw(3).unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn unexpected_end_detected() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(
            d.take_u32(),
            Err(DecodeError::UnexpectedEnd {
                wanted: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let d = Decoder::new(&[0]);
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_detected() {
        let mut d = Decoder::new(&[7]);
        assert_eq!(d.take_bool(), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn length_overflow_detected() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.take_bytes(),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn f64_bit_exact() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1e308, -1e-308] {
            let mut e = Encoder::new();
            e.put_f64(v);
            let b = e.into_bytes();
            let got = Decoder::new(&b).take_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn deterministic() {
        let enc = |x: u64| {
            let mut e = Encoder::new();
            e.put_u64(x);
            e.put_bytes(b"abc");
            e.into_bytes()
        };
        assert_eq!(enc(5), enc(5));
        assert_ne!(enc(5), enc(6));
    }
}
