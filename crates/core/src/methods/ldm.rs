//! LDM — landmark-based verification (Section V-A).
//!
//! The owner selects `c` landmarks, computes distance vectors,
//! quantizes them to `b` bits (Eq. 5) and compresses them with
//! threshold ξ; the payload is embedded in every extended tuple
//! (Eq. 4). The provider ships the A\* search cone of Lemma 2 (plus
//! neighbors and referenced representatives); the client re-runs A\*
//! with the compressed lower bound (Lemmas 3–4) and checks the optimum.

use crate::batch::{AuxContext, BatchAux, BatchVerifyState};
use crate::enc::{DecodeError, Decoder, Encoder};
use crate::error::{ProviderError, VerifyError};
use crate::methods::{AuthMethod, LdmConfig, MethodConfig, MethodParams, TupleMap, VerifyCtx};
use crate::owner::{MethodHints, ProviderPackage, SetupConfig};
use crate::proof::SpProof;
use crate::snapshot::{self, SnapshotError};
use crate::tuple::{ExtendedTuple, PsiPayload};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::landmark::{
    select_landmarks, CompressedVectors, CompressionStrategy, LandmarkVectors, NodePsi,
    QuantizedVectors,
};
use spnet_graph::ofloat::OrderedF64;
use spnet_graph::{Graph, NodeId, Path};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

/// LDM's [`AuthMethod`] implementation: compressed quantized landmark
/// vectors as hints, the Lemma 2 A\* cone as ΓS, client-side A\* with
/// the compressed lower bound as verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct LdmMethod;

impl LdmMethod {
    /// The LDM hints out of a provider package (dispatch pairs the
    /// trait object with its own hints variant).
    fn hints(pkg: &ProviderPackage) -> &LdmHints {
        match &pkg.hints {
            MethodHints::Ldm(h) => h,
            _ => unreachable!("LdmMethod dispatched with non-LDM hints"),
        }
    }

    /// The quantization step λ out of authenticated method params.
    fn lambda(params: &MethodParams) -> f64 {
        match params {
            MethodParams::Ldm { lambda } => *lambda,
            _ => unreachable!("LdmMethod dispatched with non-LDM params"),
        }
    }
}

impl AuthMethod for LdmMethod {
    fn name(&self) -> &'static str {
        "LDM"
    }

    fn params_code(&self) -> u8 {
        3
    }

    fn build_hints(
        &self,
        g: &Graph,
        config: &MethodConfig,
        setup: &SetupConfig,
        _keypair: &RsaKeyPair,
    ) -> (MethodHints, MethodParams) {
        let MethodConfig::Ldm(lcfg) = config else {
            unreachable!("LdmMethod dispatched with non-LDM config");
        };
        let hints = LdmHints::build(g, lcfg, setup.seed ^ 0x1D4);
        let lambda = hints.lambda();
        (MethodHints::Ldm(hints), MethodParams::Ldm { lambda })
    }

    fn make_tuple(&self, g: &Graph, v: NodeId, hints: &MethodHints) -> ExtendedTuple {
        let MethodHints::Ldm(h) = hints else {
            unreachable!("LdmMethod dispatched with non-LDM hints");
        };
        ExtendedTuple::with_psi(g, v, &h.vectors)
    }

    fn wants_change_dists(&self) -> bool {
        true
    }

    /// LDM repair: a landmark row `dist(sᵢ, ·)` can change only if a
    /// shortest-path tree rooted at `sᵢ` routes through the updated
    /// edge before or after the change (undirected symmetry reads
    /// `dist(sᵢ, u)` out of `old_dists.from_u[sᵢ]`). Affected rows are
    /// recomputed with one Dijkstra each; quantization and compression
    /// re-run globally because λ = Dmax/(2^b − 1) is a global scalar.
    /// Dirty tuples are exactly the nodes whose ψ payload moved. LDM
    /// carries no auxiliary signed root — the driver's network re-sign
    /// is the whole crypto bill — but the repaired λ is handed back so
    /// the driver signs it into the root metadata.
    fn repair_hints(
        &self,
        g: &Graph,
        change: &crate::methods::EdgeChange,
        hints: &mut MethodHints,
        _keypair: &RsaKeyPair,
    ) -> Result<crate::methods::DirtySet, crate::update::UpdateError> {
        use crate::update::{edge_is_tight, UpdateError};
        let MethodHints::Ldm(h) = hints else {
            return Err(UpdateError::Rebuild("LDM hints expected".into()));
        };
        let old = change.old_dists.as_ref().ok_or_else(|| {
            UpdateError::Rebuild("LDM repair needs pre-update endpoint distances".into())
        })?;
        if h.landmarks.is_empty() {
            return Err(UpdateError::Rebuild(
                "LDM landmark set unavailable for repair".into(),
            ));
        }
        let landmarks = h.landmarks.clone();
        let repaired = match &mut h.exact {
            Some(exact) => {
                let du_n = spnet_graph::search::with_thread_workspace(|ws| {
                    ws.sssp(g, change.u).dist_vec()
                });
                let dv_n = spnet_graph::search::with_thread_workspace(|ws| {
                    ws.sssp(g, change.v).dist_vec()
                });
                let affected: Vec<usize> = (0..landmarks.len())
                    .filter(|&i| {
                        let l = landmarks[i].index();
                        edge_is_tight(old.from_u[l], old.from_v[l], change.old_weight)
                            || edge_is_tight(du_n[l], dv_n[l], change.new_weight)
                    })
                    .collect();
                let rows: Vec<(usize, Vec<f64>)> = crate::par::map_jobs(&affected, |&i| {
                    let row = spnet_graph::search::with_thread_workspace(|ws| {
                        ws.sssp(g, landmarks[i]).dist_vec()
                    });
                    (i, row)
                });
                for (i, row) in rows {
                    exact.set_row(i, row);
                }
                affected.len()
            }
            cache @ None => {
                // Snapshot-loaded hints dropped the exact rows; re-seed
                // the cache once, repair incrementally thereafter.
                *cache = Some(LandmarkVectors::compute(g, &landmarks));
                landmarks.len()
            }
        };
        let exact = h.exact.as_ref().expect("exact cache ensured above");
        let qv = QuantizedVectors::quantize(exact, h.vectors.bits());
        let fresh = CompressedVectors::build(g, &qv, h.vectors.xi(), h.compression);
        let lambda = fresh.lambda();
        let tuples: Vec<NodeId> = g
            .nodes()
            .filter(|&v| fresh.node_psi(v) != h.vectors.node_psi(v))
            .collect();
        h.vectors = fresh;
        Ok(crate::methods::DirtySet {
            tuples,
            aux_repaired: repaired,
            aux_resigned: 0,
            new_params: Some(MethodParams::Ldm { lambda }),
        })
    }

    fn snapshot_hints(
        &self,
        hints: &MethodHints,
        w: &mut spnet_store::SnapshotWriter,
    ) -> Result<(), SnapshotError> {
        let MethodHints::Ldm(h) = hints else {
            return Err(SnapshotError::Corrupt("LDM hints expected"));
        };
        let cv = &h.vectors;
        let c = cv.num_landmarks();
        let mut e = Encoder::new();
        e.put_f64(cv.lambda());
        e.put_f64(cv.xi());
        e.put_u64(c as u64);
        e.put_u8(cv.bits());
        e.put_u64(cv.num_nodes() as u64);
        for v in 0..cv.num_nodes() as u32 {
            match cv.node_psi(NodeId(v)) {
                NodePsi::Full(q) => {
                    e.put_u8(0);
                    for &x in q {
                        e.put_u32(x);
                    }
                }
                NodePsi::Compressed { theta, eps } => {
                    e.put_u8(1);
                    e.put_u32(theta.0);
                    e.put_f64(*eps);
                }
            }
        }
        w.blob(snapshot::SEC_LDM_VECTORS, e.bytes())?;
        let mut b = Encoder::new();
        b.put_f64(h.build_seconds);
        w.blob(snapshot::SEC_LDM_BUILD, b.bytes())?;
        let mut l = Encoder::new();
        l.put_u8(match h.compression {
            CompressionStrategy::GreedyExact => 0,
            CompressionStrategy::HilbertSweep => 1,
        });
        l.put_u64(h.landmarks.len() as u64);
        for &lm in &h.landmarks {
            l.put_u32(lm.0);
        }
        w.blob(snapshot::SEC_LDM_LANDMARKS, l.bytes())?;
        Ok(())
    }

    fn load_hints(
        &self,
        g: &Graph,
        store: &spnet_store::NodeStore,
    ) -> Result<MethodHints, SnapshotError> {
        let bytes = store.blob(snapshot::SEC_LDM_VECTORS)?;
        let mut d = Decoder::new(&bytes);
        let lambda = d.take_f64()?;
        let xi = d.take_f64()?;
        let c = d.take_u64()? as usize;
        let bits = d.take_u8()?;
        let n = d.take_u64()? as usize;
        if n != g.num_nodes() {
            return Err(SnapshotError::Corrupt("LDM vector count mismatch"));
        }
        if c == 0 || c > n {
            return Err(SnapshotError::Corrupt("LDM landmark count out of range"));
        }
        let mut psi = Vec::with_capacity(n);
        for _ in 0..n {
            match d.take_u8()? {
                0 => {
                    let mut q = Vec::with_capacity(c);
                    for _ in 0..c {
                        q.push(d.take_u32()?);
                    }
                    psi.push(NodePsi::Full(q));
                }
                1 => {
                    let theta = NodeId(d.take_u32()?);
                    let eps = d.take_f64()?;
                    psi.push(NodePsi::Compressed { theta, eps });
                }
                t => return Err(SnapshotError::Decode(DecodeError::BadTag(t))),
            }
        }
        d.finish()?;
        let vectors = CompressedVectors::from_parts(lambda, psi, xi, c, bits).ok_or(
            SnapshotError::Corrupt("LDM vectors fail structural validation"),
        )?;
        let build_bytes = store.blob(snapshot::SEC_LDM_BUILD)?;
        let mut bd = Decoder::new(&build_bytes);
        let build_seconds = bd.take_f64()?;
        bd.finish()?;
        let lm_bytes = store.blob(snapshot::SEC_LDM_LANDMARKS)?;
        let mut ld = Decoder::new(&lm_bytes);
        let compression = match ld.take_u8()? {
            0 => CompressionStrategy::GreedyExact,
            1 => CompressionStrategy::HilbertSweep,
            t => return Err(SnapshotError::Decode(DecodeError::BadTag(t))),
        };
        let lm_count = ld.take_u64()? as usize;
        if lm_count != c {
            return Err(SnapshotError::Corrupt("LDM landmark list length mismatch"));
        }
        let mut landmarks = Vec::with_capacity(lm_count);
        for _ in 0..lm_count {
            let id = ld.take_u32()?;
            if id as usize >= n {
                return Err(SnapshotError::Corrupt("LDM landmark id out of range"));
            }
            landmarks.push(NodeId(id));
        }
        ld.finish()?;
        Ok(MethodHints::Ldm(LdmHints {
            vectors,
            landmarks,
            compression,
            exact: None,
            build_seconds,
        }))
    }

    fn prove(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError> {
        let nodes = gamma_nodes(&pkg.graph, Self::hints(pkg), vs, vt, path.distance);
        let tuples: Vec<Arc<ExtendedTuple>> =
            nodes.iter().map(|&v| pkg.ads.tuple_shared(v)).collect();
        Ok((SpProof::Subgraph { tuples }, nodes))
    }

    fn batch_members(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Vec<NodeId> {
        gamma_nodes(&pkg.graph, Self::hints(pkg), vs, vt, path.distance)
    }

    fn prove_batch(
        &self,
        _pkg: &ProviderPackage,
        _queries: &[(NodeId, NodeId)],
    ) -> Result<BatchAux, ProviderError> {
        Ok(BatchAux::Subgraph)
    }

    fn matches_proof(&self, sp: &SpProof) -> bool {
        matches!(sp, SpProof::Subgraph { .. })
    }

    fn verify(
        &self,
        _ctx: &VerifyCtx<'_>,
        params: &MethodParams,
        _sp: &SpProof,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        verify_subgraph_astar(tuples, vs, vt, Self::lambda(params))
    }

    fn verify_batch_aux<'a>(
        &self,
        _ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        aux: &'a BatchAux,
    ) -> Result<AuxContext<'a>, VerifyError> {
        match aux {
            BatchAux::Subgraph => Ok(AuxContext::Subgraph),
            _ => Err(VerifyError::MetaMismatch(
                "batch proof shape does not match signed method",
            )),
        }
    }

    fn verify_batch_query(
        &self,
        params: &MethodParams,
        _ctx: &AuxContext<'_>,
        _state: &BatchVerifyState,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        verify_subgraph_astar(tuples, vs, vt, Self::lambda(params))
    }
}

/// The owner-side LDM hints: compressed quantized landmark vectors.
#[derive(Debug, Clone)]
pub struct LdmHints {
    /// The compressed vectors (embedded into tuples at ADS build).
    pub vectors: CompressedVectors,
    /// The selected landmark nodes, persisted so dynamic updates can
    /// repair the vectors of the *original* landmark set instead of
    /// re-selecting (which would dirty every tuple).
    pub landmarks: Vec<NodeId>,
    /// The compression strategy of the original build (repairs must
    /// recompress identically to stay bit-compatible with a fresh
    /// publish).
    pub compression: CompressionStrategy,
    /// Owner-side cache of the exact (unquantized) landmark rows.
    /// `None` after a snapshot load; the first repair recomputes every
    /// row once to re-seed it and repairs incrementally from then on.
    /// Never persisted — it is reproducible and |V|·c floats.
    pub exact: Option<LandmarkVectors>,
    /// Construction wall-clock seconds (landmark Dijkstras +
    /// quantization + compression) for Figure 12b.
    pub build_seconds: f64,
}

impl LdmHints {
    /// Runs the owner-side hint construction.
    pub fn build(g: &Graph, cfg: &LdmConfig, seed: u64) -> Self {
        let start = std::time::Instant::now();
        let lms = select_landmarks(g, cfg.landmarks.min(g.num_nodes()), cfg.strategy, seed);
        let exact = LandmarkVectors::compute(g, &lms);
        let qv = QuantizedVectors::quantize(&exact, cfg.bits);
        let vectors = CompressedVectors::build(g, &qv, cfg.xi, cfg.compression);
        LdmHints {
            vectors,
            landmarks: lms,
            compression: cfg.compression,
            exact: Some(exact),
            build_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// The quantization step λ (public parameter signed into the ADS
    /// meta).
    pub fn lambda(&self) -> f64 {
        self.vectors.lambda()
    }
}

/// Provider side: the Lemma 2 node set —
/// core nodes `{v | dist(vs,v) + distLB(v,vt) ≤ dist(vs,vt)}`, their
/// neighbors, and the representatives (θ) referenced by any included
/// node.
pub fn gamma_nodes(
    g: &Graph,
    hints: &LdmHints,
    source: NodeId,
    target: NodeId,
    sp_dist: f64,
) -> Vec<NodeId> {
    let slack = sp_dist * (1.0 + super::dij::RADIUS_SLACK);
    let cv = &hints.vectors;
    let mut gamma: BTreeSet<NodeId> = BTreeSet::new();
    spnet_graph::search::with_thread_workspace(|ws| {
        let ball = ws.ball(g, source, slack);
        for v in g.nodes() {
            let d = ball.dist(v);
            if d.is_finite() && d + cv.lower_bound(v, target) <= slack {
                gamma.insert(v);
                for (u, _) in g.neighbors(v) {
                    gamma.insert(u);
                }
            }
        }
    });
    gamma.insert(source);
    gamma.insert(target);
    // θ closure: every compressed node's representative must ship too.
    let snapshot: Vec<NodeId> = gamma.iter().copied().collect();
    for v in snapshot {
        if let NodePsi::Compressed { theta, .. } = cv.node_psi(v) {
            gamma.insert(*theta);
        }
    }
    gamma.into_iter().collect()
}

/// Client side: A\* over the proof subgraph with the compressed
/// landmark lower bound. Re-opens nodes (the compressed bound is
/// admissible but not consistent), so the first pop of the target is
/// provably optimal.
pub fn verify_subgraph_astar(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    source: NodeId,
    target: NodeId,
    lambda: f64,
) -> Result<f64, VerifyError> {
    if source == target {
        return Ok(0.0);
    }
    // Resolve the target's (θ, ε) once.
    let (qt, et) = resolve_psi(tuples, target)?;
    let lb = |v: NodeId| -> Result<f64, VerifyError> {
        let (qv, ev) = resolve_psi(tuples, v)?;
        let loose = spnet_graph::landmark::quantize::loose_lb_from_indices(qv, qt, lambda);
        Ok((loose - ev - et).max(0.0))
    };
    let mut gscore: HashMap<NodeId, f64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    gscore.insert(source, 0.0);
    heap.push(Reverse((OrderedF64::new(lb(source)?), source.0)));
    while let Some(Reverse((OrderedF64(f), v))) = heap.pop() {
        let v = NodeId(v);
        let g_v = *gscore.get(&v).unwrap_or(&f64::INFINITY);
        // Stale check: the entry's f corresponds to an older, larger g.
        let lb_v = lb(v)?;
        if f > g_v + lb_v + 1e-12 * (1.0 + g_v.abs()) {
            continue;
        }
        if v == target {
            return Ok(g_v);
        }
        let Some(t) = tuples.get(&v) else {
            return Err(VerifyError::MissingTuple(v));
        };
        for &(u, w) in &t.adj {
            let nd = g_v + w;
            if nd < *gscore.get(&u).unwrap_or(&f64::INFINITY) {
                gscore.insert(u, nd);
                let lb_u = lb(u)?;
                heap.push(Reverse((OrderedF64::new(nd + lb_u), u.0)));
            }
        }
    }
    Err(VerifyError::TargetUnreachable)
}

/// Resolves a node's quantized index vector and compression error from
/// the proof tuples: `(θ's full vector, ε)`.
fn resolve_psi<'a>(
    tuples: &'a HashMap<NodeId, &ExtendedTuple>,
    v: NodeId,
) -> Result<(&'a [u32], f64), VerifyError> {
    let t = tuples.get(&v).ok_or(VerifyError::MissingTuple(v))?;
    match &t.psi {
        None => Err(VerifyError::MissingPsi(v)),
        Some(PsiPayload::Full { q, .. }) => Ok((q, 0.0)),
        Some(PsiPayload::Ref { theta, eps }) => {
            let rt = tuples.get(theta).ok_or(VerifyError::MissingReference {
                node: v,
                theta: *theta,
            })?;
            match &rt.psi {
                Some(PsiPayload::Full { q, .. }) => Ok((q, *eps)),
                _ => Err(VerifyError::MissingReference {
                    node: v,
                    theta: *theta,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;
    use spnet_graph::landmark::{CompressionStrategy, LandmarkStrategy};

    fn setup(seed: u64) -> (Graph, LdmHints) {
        let g = grid_network(10, 10, 1.15, seed);
        let cfg = LdmConfig {
            landmarks: 8,
            bits: 10,
            xi: 300.0,
            strategy: LandmarkStrategy::Farthest,
            compression: CompressionStrategy::HilbertSweep,
        };
        let hints = LdmHints::build(&g, &cfg, seed ^ 1);
        (g, hints)
    }

    fn proof_tuples(g: &Graph, hints: &LdmHints, nodes: &[NodeId]) -> Vec<ExtendedTuple> {
        nodes
            .iter()
            .map(|&v| ExtendedTuple::with_psi(g, v, &hints.vectors))
            .collect()
    }

    fn as_map(tuples: &[ExtendedTuple]) -> HashMap<NodeId, &ExtendedTuple> {
        tuples.iter().map(|t| (t.id, t)).collect()
    }

    #[test]
    fn client_recovers_exact_distance() {
        let (g, hints) = setup(500);
        for (s, t) in [(0u32, 99u32), (9, 90), (45, 54), (99, 2)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let d = dijkstra_path(&g, s, t).unwrap().distance;
            let gamma = gamma_nodes(&g, &hints, s, t, d);
            let tuples = proof_tuples(&g, &hints, &gamma);
            let got = verify_subgraph_astar(&as_map(&tuples), s, t, hints.lambda()).unwrap();
            assert!(
                (got - d).abs() <= 1e-9 * d.max(1.0),
                "({s},{t}): got {got}, want {d}"
            );
        }
    }

    #[test]
    fn gamma_not_larger_than_dij_ball() {
        // The landmark bound prunes: LDM's cone ⊆ DIJ's ball ∪ fringe.
        let (g, hints) = setup(501);
        let (s, t) = (NodeId(0), NodeId(99));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let ldm = gamma_nodes(&g, &hints, s, t, d);
        let dij = super::super::dij::gamma_nodes(&g, s, d);
        // Core pruning usually strict on a 100-node grid with 8
        // landmarks; allow equality but verify it's not a superset by
        // more than the neighbor/θ fringe.
        assert!(
            ldm.len() <= dij.len() + g.num_nodes() / 4,
            "{} vs {}",
            ldm.len(),
            dij.len()
        );
    }

    #[test]
    fn missing_core_tuple_detected() {
        let (g, hints) = setup(502);
        let (s, t) = (NodeId(0), NodeId(99));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let p = dijkstra_path(&g, s, t).unwrap();
        let victim = p.nodes[p.nodes.len() / 2];
        let gamma: Vec<NodeId> = gamma_nodes(&g, &hints, s, t, d)
            .into_iter()
            .filter(|&v| v != victim)
            .collect();
        let tuples = proof_tuples(&g, &hints, &gamma);
        let err = verify_subgraph_astar(&as_map(&tuples), s, t, hints.lambda());
        assert!(err.is_err(), "dropping a path node must invalidate");
    }

    #[test]
    fn missing_reference_detected() {
        let (g, hints) = setup(503);
        let (s, t) = (NodeId(0), NodeId(99));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let gamma = gamma_nodes(&g, &hints, s, t, d);
        // Drop a representative that some compressed gamma node points
        // to (if compression produced any).
        let mut theta_of_someone = None;
        for &v in &gamma {
            if let NodePsi::Compressed { theta, .. } = hints.vectors.node_psi(v) {
                theta_of_someone = Some(*theta);
                break;
            }
        }
        let Some(victim) = theta_of_someone else {
            return; // nothing compressed on this seed — vacuous
        };
        let gamma: Vec<NodeId> = gamma.into_iter().filter(|&v| v != victim).collect();
        let tuples = proof_tuples(&g, &hints, &gamma);
        let err = verify_subgraph_astar(&as_map(&tuples), s, t, hints.lambda());
        assert!(err.is_err());
    }

    #[test]
    fn missing_psi_detected() {
        let (g, hints) = setup(504);
        let (s, t) = (NodeId(0), NodeId(99));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let gamma = gamma_nodes(&g, &hints, s, t, d);
        // Strip the landmark payload from the target's tuple.
        let mut tuples = proof_tuples(&g, &hints, &gamma);
        for t_ in tuples.iter_mut() {
            if t_.id == t {
                t_.psi = None;
            }
        }
        let err = verify_subgraph_astar(&as_map(&tuples), s, t, hints.lambda());
        assert_eq!(err, Err(VerifyError::MissingPsi(t)));
    }

    #[test]
    fn trivial_query() {
        let (_, hints) = setup(505);
        let map = HashMap::new();
        assert_eq!(
            verify_subgraph_astar(&map, NodeId(4), NodeId(4), hints.lambda()).unwrap(),
            0.0
        );
    }

    #[test]
    fn zero_xi_no_compression_still_works() {
        let g = grid_network(8, 8, 1.2, 506);
        let cfg = LdmConfig {
            landmarks: 6,
            bits: 12,
            xi: -1.0, // nothing compresses (ϱ ≥ 0 > ξ)
            strategy: LandmarkStrategy::Random,
            compression: CompressionStrategy::HilbertSweep,
        };
        let hints = LdmHints::build(&g, &cfg, 507);
        let (s, t) = (NodeId(0), NodeId(63));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let gamma = gamma_nodes(&g, &hints, s, t, d);
        let tuples = proof_tuples(&g, &hints, &gamma);
        let got = verify_subgraph_astar(&as_map(&tuples), s, t, hints.lambda()).unwrap();
        assert!((got - d).abs() <= 1e-9 * d.max(1.0));
    }

    #[test]
    fn more_landmarks_smaller_gamma() {
        // Figure 12a's mechanism: more landmarks ⇒ tighter bounds ⇒
        // smaller cone.
        let g = grid_network(14, 14, 1.15, 508);
        let mk = |c: usize| {
            LdmHints::build(
                &g,
                &LdmConfig {
                    landmarks: c,
                    bits: 14,
                    xi: -1.0,
                    strategy: LandmarkStrategy::Farthest,
                    compression: CompressionStrategy::HilbertSweep,
                },
                509,
            )
        };
        let (s, t) = (NodeId(0), NodeId(195));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let few = gamma_nodes(&g, &mk(2), s, t, d).len();
        let many = gamma_nodes(&g, &mk(24), s, t, d).len();
        assert!(many <= few, "{many} > {few}");
    }
}
