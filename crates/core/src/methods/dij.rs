//! DIJ — Dijkstra subgraph verification (Section IV-A).
//!
//! No pre-computed hints. The provider ships the extended tuples of
//! every node within distance `dist(vs, vt)` of the source (Lemma 1);
//! the client re-runs Dijkstra on that subgraph and checks the optimum
//! matches the reported path's length.

use crate::batch::{AuxContext, BatchAux, BatchVerifyState};
use crate::error::{ProviderError, VerifyError};
use crate::methods::{AuthMethod, MethodConfig, MethodParams, TupleMap, VerifyCtx};
use crate::owner::{MethodHints, ProviderPackage, SetupConfig};
use crate::proof::SpProof;
use crate::tuple::ExtendedTuple;
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::ofloat::OrderedF64;
use spnet_graph::search::with_thread_workspace;
use spnet_graph::{Graph, NodeId, Path};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// DIJ's [`AuthMethod`] implementation: no pre-computed hints, the
/// Lemma 1 ball as ΓS, client-side subgraph Dijkstra as verification.
/// The only method supporting in-place edge-weight updates (its sole
/// authenticated state is the network Merkle tree).
#[derive(Debug, Clone, Copy, Default)]
pub struct DijMethod;

impl AuthMethod for DijMethod {
    fn name(&self) -> &'static str {
        "DIJ"
    }

    fn params_code(&self) -> u8 {
        1
    }

    fn build_hints(
        &self,
        _g: &Graph,
        _config: &MethodConfig,
        _setup: &SetupConfig,
        _keypair: &RsaKeyPair,
    ) -> (MethodHints, MethodParams) {
        (MethodHints::Dij, MethodParams::Dij)
    }

    fn make_tuple(&self, g: &Graph, v: NodeId, _hints: &MethodHints) -> ExtendedTuple {
        ExtendedTuple::base(g, v)
    }

    // DIJ inherits the default `repair_hints`: there are no hints to
    // repair, so an edge update only touches the endpoint tuples and
    // the one network re-sign the update driver performs.

    // DIJ persists nothing beyond the network ADS: the default
    // `snapshot_hints` writes no sections, and loading restores the
    // empty hint state.
    fn load_hints(
        &self,
        _g: &Graph,
        _store: &spnet_store::NodeStore,
    ) -> Result<MethodHints, crate::snapshot::SnapshotError> {
        Ok(MethodHints::Dij)
    }

    fn prove(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        _vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError> {
        let nodes = gamma_nodes(&pkg.graph, vs, path.distance);
        let tuples: Vec<Arc<ExtendedTuple>> =
            nodes.iter().map(|&v| pkg.ads.tuple_shared(v)).collect();
        Ok((SpProof::Subgraph { tuples }, nodes))
    }

    fn batch_members(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        _vt: NodeId,
        path: &Path,
    ) -> Vec<NodeId> {
        gamma_nodes(&pkg.graph, vs, path.distance)
    }

    fn prove_batch(
        &self,
        _pkg: &ProviderPackage,
        _queries: &[(NodeId, NodeId)],
    ) -> Result<BatchAux, ProviderError> {
        // The pooled subgraph tuples are the whole ΓS.
        Ok(BatchAux::Subgraph)
    }

    fn matches_proof(&self, sp: &SpProof) -> bool {
        matches!(sp, SpProof::Subgraph { .. })
    }

    fn verify(
        &self,
        _ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        _sp: &SpProof,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        verify_subgraph_dijkstra(tuples, vs, vt)
    }

    fn verify_batch_aux<'a>(
        &self,
        _ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        aux: &'a BatchAux,
    ) -> Result<AuxContext<'a>, VerifyError> {
        match aux {
            BatchAux::Subgraph => Ok(AuxContext::Subgraph),
            _ => Err(VerifyError::MetaMismatch(
                "batch proof shape does not match signed method",
            )),
        }
    }

    fn verify_batch_query(
        &self,
        _params: &MethodParams,
        _ctx: &AuxContext<'_>,
        _state: &BatchVerifyState,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        verify_subgraph_dijkstra(tuples, vs, vt)
    }
}

/// Relative slack applied to the Lemma 1 ball radius so that clients
/// summing weights in a different order never pop a missing tuple in
/// the honest case.
pub(crate) const RADIUS_SLACK: f64 = 1e-9;

/// Provider side: the node set of Lemma 1 —
/// `{v | dist(vs, v) ≤ dist(vs, vt)}` (with float slack).
///
/// Runs on the thread's reused search workspace: the only allocation
/// is the returned node list (in ascending id order, which fixes the
/// proof's tuple/position order).
pub fn gamma_nodes(g: &Graph, source: NodeId, sp_dist: f64) -> Vec<NodeId> {
    let radius = sp_dist * (1.0 + RADIUS_SLACK);
    with_thread_workspace(|ws| ws.ball(g, source, radius).settled_nodes().collect())
}

/// Client side: runs Dijkstra over the proof subgraph.
///
/// Returns the verified optimum `dist(vs, vt)`. The proof is *invalid*
/// (Section IV-A's validity check) if any node popped before the target
/// has no tuple in ΓS.
pub fn verify_subgraph_dijkstra(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    source: NodeId,
    target: NodeId,
) -> Result<f64, VerifyError> {
    if source == target {
        return Ok(0.0);
    }
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(Reverse((OrderedF64::new(0.0), source.0)));
    while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
        let v = NodeId(v);
        if d > *dist.get(&v).unwrap_or(&f64::INFINITY) {
            continue; // stale
        }
        if v == target {
            return Ok(d);
        }
        // Validity: a node required by Dijkstra must be present in ΓS.
        let Some(t) = tuples.get(&v) else {
            return Err(VerifyError::MissingTuple(v));
        };
        for &(u, w) in &t.adj {
            let nd = d + w;
            if nd < *dist.get(&u).unwrap_or(&f64::INFINITY) {
                dist.insert(u, nd);
                heap.push(Reverse((OrderedF64::new(nd), u.0)));
            }
        }
    }
    Err(VerifyError::TargetUnreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn tuple_map(g: &Graph, nodes: &[NodeId]) -> Vec<ExtendedTuple> {
        nodes.iter().map(|&v| ExtendedTuple::base(g, v)).collect()
    }

    fn as_map(tuples: &[ExtendedTuple]) -> HashMap<NodeId, &ExtendedTuple> {
        tuples.iter().map(|t| (t.id, t)).collect()
    }

    #[test]
    fn gamma_contains_lemma1_ball() {
        let g = grid_network(10, 10, 1.15, 300);
        let (s, t) = (NodeId(0), NodeId(99));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let gamma = gamma_nodes(&g, s, d);
        // Source, target, and every path node must be inside.
        let p = dijkstra_path(&g, s, t).unwrap();
        for v in &p.nodes {
            assert!(gamma.contains(v));
        }
    }

    #[test]
    fn client_recovers_exact_distance() {
        let g = grid_network(10, 10, 1.15, 301);
        for (s, t) in [(0u32, 99u32), (5, 50), (98, 1)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let d = dijkstra_path(&g, s, t).unwrap().distance;
            let gamma = gamma_nodes(&g, s, d);
            let tuples = tuple_map(&g, &gamma);
            let got = verify_subgraph_dijkstra(&as_map(&tuples), s, t).unwrap();
            assert!((got - d).abs() <= 1e-9 * d.max(1.0));
        }
    }

    #[test]
    fn missing_tuple_detected() {
        let g = grid_network(8, 8, 1.15, 302);
        let (s, t) = (NodeId(0), NodeId(63));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let mut gamma = gamma_nodes(&g, s, d);
        // Remove a node that Dijkstra must pop: any path node except
        // the endpoints.
        let p = dijkstra_path(&g, s, t).unwrap();
        let victim = p.nodes[p.nodes.len() / 2];
        gamma.retain(|&v| v != victim);
        let tuples = tuple_map(&g, &gamma);
        let err = verify_subgraph_dijkstra(&as_map(&tuples), s, t);
        // Either the victim is popped (MissingTuple) or (if an equal-
        // length detour exists) the verified distance is still exact —
        // on this seed it must be an error.
        assert!(matches!(err, Err(VerifyError::MissingTuple(_))), "{err:?}");
    }

    #[test]
    fn source_tuple_missing_detected() {
        let g = grid_network(6, 6, 1.1, 303);
        let (s, t) = (NodeId(0), NodeId(35));
        let tuples = tuple_map(&g, &[t]);
        let err = verify_subgraph_dijkstra(&as_map(&tuples), s, t);
        assert_eq!(err, Err(VerifyError::MissingTuple(s)));
    }

    #[test]
    fn trivial_query_zero() {
        let g = grid_network(4, 4, 1.1, 304);
        let tuples = tuple_map(&g, &[]);
        assert_eq!(
            verify_subgraph_dijkstra(&as_map(&tuples), NodeId(3), NodeId(3)).unwrap(),
            0.0
        );
    }

    #[test]
    fn unreachable_when_gamma_disconnected() {
        let g = grid_network(6, 6, 1.1, 305);
        // Γ containing only the source: target never reached, but the
        // search errors on the first pop (source present, neighbors
        // en-heaped, then their tuples missing).
        let tuples = tuple_map(&g, &[NodeId(0)]);
        let err = verify_subgraph_dijkstra(&as_map(&tuples), NodeId(0), NodeId(35));
        assert!(matches!(err, Err(VerifyError::MissingTuple(_))));
    }

    #[test]
    fn superset_gamma_still_exact() {
        // Extra authentic tuples cannot shrink the verified optimum.
        let g = grid_network(9, 9, 1.15, 306);
        let (s, t) = (NodeId(0), NodeId(80));
        let d = dijkstra_path(&g, s, t).unwrap().distance;
        let all: Vec<NodeId> = g.nodes().collect();
        let tuples = tuple_map(&g, &all);
        let got = verify_subgraph_dijkstra(&as_map(&tuples), s, t).unwrap();
        assert!((got - d).abs() <= 1e-9 * d.max(1.0));
    }
}
