//! HYP — hyper-graph verification (Section V-B).
//!
//! The owner partitions the network into a grid of `p` cells, marks
//! border nodes, and materializes a hyper-edge weight
//! `W*(b, b′) = dist(b, b′)` for **every pair of border nodes**
//! (the paper's footnote 1) in a signed Merkle B-tree. A signed *cell
//! directory* (cell id → population count) additionally lets the client
//! check it received the complete source and target cells — without
//! it, a malicious provider could silently drop border nodes and
//! inflate the verified optimum.
//!
//! The provider ships (coarse proof) all tuples of the source and
//! target cells plus the hyper-edges between their border sets, and
//! (fine proof) the tuples of reported-path nodes in intermediate
//! cells. The client:
//!
//! 1. authenticates everything against the signed roots,
//! 2. runs in-cell Dijkstra from `vs` and `vt`,
//! 3. combines `dist_in(vs,b) + W*(b,b′) + dist_in(b′,vt)` over all
//!    border pairs (Theorem 2) to obtain the exact optimum,
//! 4. checks the reported path's length equals that optimum.

use crate::ads::{AdsMeta, AdsTag, SignedRoot};
use crate::batch::{AuxContext, BatchAux, BatchVerifyState};
use crate::enc::{Decoder, Encoder};
use crate::error::{ProviderError, VerifyError};
use crate::methods::{AuthMethod, MethodConfig, MethodParams, TupleMap, VerifyCtx};
use crate::owner::{MethodHints, ProviderPackage, SetupConfig};
use crate::proof::SpProof;
use crate::snapshot::{self, SnapshotError};
use crate::tuple::ExtendedTuple;
use spnet_crypto::mbtree::{composite_key, KeyedEntry, KeyedProof, MbTreeError, MerkleBTree};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::partition::GridPartition;
use spnet_graph::{Graph, NodeId, Path};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The owner-side HYP hints.
#[derive(Debug, Clone)]
pub struct HypHints {
    /// The grid partition (cell ids and border flags also live inside
    /// the authenticated tuples).
    pub partition: GridPartition,
    /// Hyper-edge weights for all border pairs, keyed by the normalized
    /// composite `(min, max)`.
    pub hyper_tree: Option<MerkleBTree>,
    /// Cell directory: cell id → node count.
    pub cell_dir: MerkleBTree,
    /// Construction wall-clock seconds (border Dijkstras + tree
    /// hashing) for Figure 13b.
    pub build_seconds: f64,
}

/// Normalized hyper-edge key for an unordered border pair.
pub fn hyper_key(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    composite_key(lo, hi)
}

impl HypHints {
    /// Runs the owner-side construction: partition, border Dijkstras,
    /// hyper-edge tree, cell directory.
    ///
    /// The all-pairs border distances (footnote 1) dominate this cost;
    /// with the `parallel` feature the border sources fan out over
    /// threads, each reusing its thread's search workspace. Entries are
    /// sorted by key afterwards, so the tree is identical either way.
    pub fn build(g: &Graph, cells: usize, fanout: usize) -> Self {
        let start = std::time::Instant::now();
        let partition = GridPartition::with_cells(g, cells);
        let borders = partition.all_borders();
        let indexed: Vec<(usize, NodeId)> = borders.iter().copied().enumerate().collect();
        let per_border_entries: Vec<Vec<KeyedEntry>> = crate::par::map_jobs(&indexed, |&(i, b)| {
            spnet_graph::search::with_thread_workspace(|ws| {
                let sssp = ws.sssp(g, b);
                borders[i + 1..]
                    .iter()
                    .map(|&b2| KeyedEntry {
                        key: hyper_key(b, b2),
                        value: sssp.dist(b2),
                    })
                    .collect()
            })
        });
        let mut entries: Vec<KeyedEntry> = per_border_entries.into_iter().flatten().collect();
        entries.sort_by_key(|e| e.key);
        let hyper_tree = if entries.is_empty() {
            None
        } else {
            Some(MerkleBTree::build(entries, fanout).expect("sorted entries"))
        };
        let dir_entries: Vec<KeyedEntry> = (0..partition.num_cells() as u32)
            .map(|c| KeyedEntry {
                key: c as u64,
                value: partition.cell_members(c).len() as f64,
            })
            .collect();
        let cell_dir = MerkleBTree::build(dir_entries, fanout).expect("cells exist");
        HypHints {
            partition,
            hyper_tree,
            cell_dir,
            build_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Signs the hyper-edge tree root (ZERO digest if no borders — the
    /// signature still binds that fact).
    pub fn sign_hyper(&self, keypair: &RsaKeyPair, fanout: u32) -> SignedRoot {
        let (root, leaves) = match &self.hyper_tree {
            Some(t) => (t.root(), t.len() as u64),
            None => (spnet_crypto::digest::Digest::ZERO, 0),
        };
        SignedRoot::sign(
            keypair,
            root,
            AdsMeta {
                tag: AdsTag::HyperEdges,
                leaf_count: leaves,
                fanout,
                params: Vec::new(),
            },
        )
    }

    /// Owner-side incremental repair after one edge-weight change:
    /// recomputes only the hyper-edges whose shortest border-to-border
    /// path can route through the changed edge (a crossing path comes
    /// within ε of the stored distance, before or after the change).
    ///
    /// Dirty pairs are recomputed grouped by their **lower-index**
    /// border in [`GridPartition::all_borders`] order — the same SSSP
    /// source [`HypHints::build`] uses — so repaired values carry the
    /// exact bits a fresh build of the updated graph would produce,
    /// and clean pairs keep theirs. A snapshot-loaded (paged,
    /// read-only) tree is densified from its entries first. Returns
    /// the number of hyper-edges recomputed.
    pub(crate) fn repair_hyper_edges(
        &mut self,
        g: &Graph,
        change: &crate::methods::EdgeChange,
        old: &crate::methods::ChangeDists,
    ) -> Result<usize, crate::update::UpdateError> {
        use crate::update::{UpdateError, DIRTY_EPS};
        let rebuild = |e: MbTreeError| UpdateError::Rebuild(e.to_string());
        let Some(tree) = self.hyper_tree.as_mut() else {
            return Ok(0); // single cell, no borders: nothing materialized
        };
        if tree.is_paged() {
            let fanout = tree.tree().fanout();
            *tree = MerkleBTree::build(tree.all_entries().map_err(rebuild)?, fanout)
                .map_err(rebuild)?;
        }
        let du_n = spnet_graph::search::with_thread_workspace(|ws| ws.sssp(g, change.u).dist_vec());
        let dv_n = spnet_graph::search::with_thread_workspace(|ws| ws.sssp(g, change.v).dist_vec());
        let borders = self.partition.all_borders();
        // Best distance from a to b through the changed edge, given
        // endpoint distance vectors of one graph.
        let via = |da: &[f64], db: &[f64], w: f64, a: NodeId, b: NodeId| {
            (da[a.index()] + db[b.index()]).min(db[a.index()] + da[b.index()]) + w
        };
        let mut by_source: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        let mut repaired = 0usize;
        for (i, &b1) in borders.iter().enumerate() {
            let mut targets = Vec::new();
            for &b2 in &borders[i + 1..] {
                let d_old = tree
                    .get(hyper_key(b1, b2))
                    .ok_or_else(|| UpdateError::Rebuild("hyper-edge missing".into()))?;
                let via_o = via(&old.from_u, &old.from_v, change.old_weight, b1, b2);
                let via_n = via(&du_n, &dv_n, change.new_weight, b1, b2);
                // Slack errs toward dirty: a false positive recomputes
                // an unchanged (bit-identical) value.
                let slack = DIRTY_EPS * (1.0 + d_old.abs());
                if via_o <= d_old + slack || via_n <= d_old + slack {
                    targets.push(b2);
                }
            }
            if !targets.is_empty() {
                repaired += targets.len();
                by_source.push((b1, targets));
            }
        }
        let fresh: Vec<Vec<KeyedEntry>> = crate::par::map_jobs(&by_source, |(b, targets)| {
            spnet_graph::search::with_thread_workspace(|ws| {
                let sssp = ws.sssp(g, *b);
                targets
                    .iter()
                    .map(|&b2| KeyedEntry {
                        key: hyper_key(*b, b2),
                        value: sssp.dist(b2),
                    })
                    .collect()
            })
        });
        for e in fresh.into_iter().flatten() {
            tree.update_value(e.key, e.value).map_err(rebuild)?;
        }
        Ok(repaired)
    }

    /// Signs the cell-directory root.
    pub fn sign_cell_dir(&self, keypair: &RsaKeyPair, fanout: u32) -> SignedRoot {
        SignedRoot::sign(
            keypair,
            self.cell_dir.root(),
            AdsMeta {
                tag: AdsTag::CellDirectory,
                leaf_count: self.cell_dir.len() as u64,
                fanout,
                params: Vec::new(),
            },
        )
    }

    /// Provider side: the coarse node set — all nodes of the source and
    /// target cells.
    pub fn coarse_nodes(&self, vs: NodeId, vt: NodeId) -> Vec<NodeId> {
        let cs = self.partition.cell_of(vs);
        let ct = self.partition.cell_of(vt);
        let mut nodes: Vec<NodeId> = self.partition.cell_members(cs).to_vec();
        if ct != cs {
            nodes.extend_from_slice(self.partition.cell_members(ct));
        }
        nodes.sort();
        nodes
    }

    /// Provider side: the hyper-edge keys the proof must carry — every
    /// pair between the source-cell border set and the target-cell
    /// border set (all pairs within the cell when `cs == ct`).
    pub fn hyper_keys(&self, vs: NodeId, vt: NodeId) -> Vec<u64> {
        self.batch_hyper_keys(&[(vs, vt)])
    }

    /// Provider side, batched: the deduplicated union of hyper-edge
    /// keys over all queries. Queries sharing a cell pair contribute
    /// the same keys once, so each touched cell's border-distance
    /// matrix ships (and is Merkle-verified) once per batch.
    pub fn batch_hyper_keys(&self, queries: &[(NodeId, NodeId)]) -> Vec<u64> {
        let mut keys: HashSet<u64> = HashSet::new();
        let mut seen_cell_pairs: HashSet<(u32, u32)> = HashSet::new();
        for &(vs, vt) in queries {
            let cs = self.partition.cell_of(vs);
            let ct = self.partition.cell_of(vt);
            if !seen_cell_pairs.insert((cs.min(ct), cs.max(ct))) {
                continue;
            }
            let bs = self.partition.cell_borders(cs);
            let bt = self.partition.cell_borders(ct);
            for &a in &bs {
                for &b in &bt {
                    if a != b {
                        keys.insert(hyper_key(a, b));
                    }
                }
            }
        }
        let mut out: Vec<u64> = keys.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Provider side, batched: the deduplicated union of
    /// cell-directory keys (touched cell ids) over all queries.
    pub fn batch_dir_keys(&self, queries: &[(NodeId, NodeId)]) -> Vec<u64> {
        let mut cells: BTreeSet<u64> = BTreeSet::new();
        for &(vs, vt) in queries {
            cells.insert(self.partition.cell_of(vs) as u64);
            cells.insert(self.partition.cell_of(vt) as u64);
        }
        cells.into_iter().collect()
    }
}

/// Client side: authenticates the two HYP auxiliary structures —
/// owner signatures and Merkle roots — ahead of `verify_hyp_impl`.
/// Shared by the single-query and batched verification paths so the
/// authentication rules cannot drift between them. Roots pinned at
/// session open (already RSA-verified there) are accepted by byte
/// equality; the Merkle reconstructions below always run.
pub(crate) fn verify_hyp_aux(
    ctx: &VerifyCtx<'_>,
    hyper: &KeyedProof,
    hyper_signed_root: &SignedRoot,
    cell_dir: &KeyedProof,
    cell_dir_signed_root: &SignedRoot,
) -> Result<(), VerifyError> {
    if !ctx.trusts(hyper_signed_root) && !hyper_signed_root.verify(ctx.pk) {
        return Err(VerifyError::BadSignature);
    }
    if !ctx.trusts(cell_dir_signed_root) && !cell_dir_signed_root.verify(ctx.pk) {
        return Err(VerifyError::BadSignature);
    }
    // An empty hyper proof is acceptable only when the touched cells
    // are border-free: verify_hyp fails on the first needed pair
    // otherwise, so no explicit check is required here.
    if !hyper.entries.is_empty() {
        let root = hyper
            .reconstruct_root()
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if root != hyper_signed_root.root {
            return Err(VerifyError::RootMismatch);
        }
    }
    let dir_root = cell_dir
        .reconstruct_root()
        .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
    if dir_root != cell_dir_signed_root.root {
        return Err(VerifyError::RootMismatch);
    }
    Ok(())
}

/// Client side: verifies the HYP ΓS and returns the proven optimum,
/// with optional per-batch state: queries of one batch
/// that touch the same cell share one authenticated cell subgraph
/// instead of rebuilding it per endpoint, and their in-cell distance
/// rows come out of **one multi-source sweep per touched cell**
/// (planned in [`HypMethod::prepare_batch_verify`]) instead of one
/// Dijkstra per endpoint. Both accelerations are bit-transparent: the
/// proven optimum equals the stateless single-query verification's.
pub(crate) fn verify_hyp_impl(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    hyper: &KeyedProof,
    cell_dir: &KeyedProof,
    vs: NodeId,
    vt: NodeId,
    state: Option<&HypBatchState>,
) -> Result<f64, VerifyError> {
    if vs == vt {
        return Ok(0.0);
    }
    let ts = tuples
        .get(&vs)
        .ok_or(VerifyError::MissingEndpointTuple(vs))?;
    let tt = tuples
        .get(&vt)
        .ok_or(VerifyError::MissingEndpointTuple(vt))?;
    let cs = ts
        .cell
        .ok_or(VerifyError::MetaMismatch("source tuple lacks cell info"))?
        .cell;
    let ct = tt
        .cell
        .ok_or(VerifyError::MetaMismatch("target tuple lacks cell info"))?
        .cell;

    // Completeness of the coarse proof: the signed directory tells the
    // client how many nodes each cell must contain.
    for cell in if cs == ct { vec![cs] } else { vec![cs, ct] } {
        let expected = cell_dir
            .value_for(cell as u64)
            .ok_or(VerifyError::MissingProofPart("cell directory entry"))?
            as usize;
        let got = tuples
            .values()
            .filter(|t| t.cell.is_some_and(|ci| ci.cell == cell))
            .count();
        if got < expected {
            return Err(VerifyError::MetaMismatch("incomplete cell in coarse proof"));
        }
    }

    // In-cell Dijkstras from both endpoints, on a dense node-index
    // remap of each cell (no per-pop hashing). The remap is only built
    // after the completeness check above, so a cached cell graph is
    // always the full authentic cell.
    let cache = state.map(|st| &st.cells);
    let cg_s = cell_graph(tuples, cs, cache)?;
    let cg_t = if ct == cs {
        Arc::clone(&cg_s)
    } else {
        cell_graph(tuples, ct, cache)?
    };
    let din_s = in_cell_distances(&cg_s, cs, vs, state)?;
    let din_t = in_cell_distances(&cg_t, ct, vt, state)?;

    // Border sets, from authenticated flags, restricted to in-cell
    // reachable nodes (unreachable borders cannot host the first/last
    // crossing of the optimum).
    let bs = din_s.reachable_borders();
    let bt = din_t.reachable_borders();

    let mut best = f64::INFINITY;
    if cs == ct {
        if let Some(d) = din_s.dist_to(vt) {
            best = d;
        }
    }
    for &b1 in &bs {
        for &b2 in &bt {
            if b1 == b2 {
                continue;
            }
            let w = hyper
                .value_for(hyper_key(b1, b2))
                .ok_or(VerifyError::MissingDistanceKey { a: b1, b: b2 })?;
            let cand = din_s.dist_to(b1).expect("b1 is reachable")
                + w
                + din_t.dist_to(b2).expect("b2 is reachable");
            if cand < best {
                best = cand;
            }
        }
    }
    if best.is_infinite() {
        return Err(VerifyError::CoarseUnreachable);
    }
    Ok(best)
}

/// In-cell distances from `v`, served from the batch's planned
/// multi-source sweep when possible, else by a solo in-cell Dijkstra.
/// Both routes are bit-identical (`multi_sssp_rows` projects each
/// source's row exactly as its solo search would produce it).
fn in_cell_distances<'a>(
    cg: &'a Arc<CellGraph>,
    cell: u32,
    v: NodeId,
    state: Option<&HypBatchState>,
) -> Result<CellDistances<'a>, VerifyError> {
    if let Some(st) = state {
        if let Some(dist) = st.planned_row(cell, v, cg) {
            return Ok(CellDistances { cg, dist });
        }
        st.solo.fetch_add(1, Ordering::Relaxed);
    }
    cg.distances_from(v)
}

/// Per-batch HYP verifier state: the cell-graph cache plus the
/// multi-source sweep plan and its lazily computed distance rows.
///
/// [`HypMethod::prepare_batch_verify`] groups the batch's query
/// endpoints by their authenticated cell; the first verification job
/// to need a cell's rows runs **one** calibrated multi-source sweep
/// (seeding every planned endpoint of that cell) and publishes the
/// per-endpoint rows through a [`OnceLock`], so concurrent jobs
/// neither duplicate nor partially observe the sweep. Endpoints the
/// plan or the sweep missed (duplicate-id pools, oversized product
/// spaces) fall back to a solo in-cell Dijkstra with identical bits.
#[derive(Default)]
pub(crate) struct HypBatchState {
    /// Cache of authenticated in-cell CSR remaps, keyed by cell id.
    pub(crate) cells: CellGraphCache,
    /// Cell id → deduplicated query endpoints needing rows there.
    plan: Mutex<HashMap<u32, Vec<NodeId>>>,
    /// Cell id → once-computed endpoint rows from that cell's sweep.
    #[allow(clippy::type_complexity)]
    rows: Mutex<HashMap<u32, Arc<OnceLock<HashMap<NodeId, Arc<Vec<f64>>>>>>>,
    /// Multi-source sweeps actually run (one per touched cell).
    sweeps: AtomicU64,
    /// Solo per-endpoint fallback searches (zero on the planned path).
    solo: AtomicU64,
}

impl HypBatchState {
    /// Installs the cell → endpoints sweep plan (once, before fan-out).
    fn set_plan(&self, plan: HashMap<u32, Vec<NodeId>>) {
        *self.plan.lock().expect("hyp plan poisoned") = plan;
    }

    /// The planned in-cell distance row for endpoint `v` of `cell`,
    /// running the cell's one multi-source sweep on first use.
    fn planned_row(&self, cell: u32, v: NodeId, cg: &CellGraph) -> Option<Arc<Vec<f64>>> {
        let once = {
            let mut rows = self.rows.lock().expect("hyp rows poisoned");
            Arc::clone(rows.entry(cell).or_default())
        };
        let computed = once.get_or_init(|| {
            let sources: Vec<NodeId> = self
                .plan
                .lock()
                .expect("hyp plan poisoned")
                .get(&cell)
                .cloned()
                .unwrap_or_default();
            // Only endpoints actually present in the authenticated
            // cell participate; the rest fall back (and fail with the
            // proper per-query error there).
            let present: Vec<(NodeId, NodeId)> = sources
                .iter()
                .filter_map(|&id| cg.local.get(&id).map(|&l| (id, NodeId(l))))
                .collect();
            let n = cg.sub.num_nodes();
            if present.is_empty() || present.len().saturating_mul(n) >= u32::MAX as usize {
                // Product space too large for one sweep: leave the map
                // empty and let every endpoint take the solo route.
                return HashMap::new();
            }
            self.sweeps.fetch_add(1, Ordering::Relaxed);
            let locals: Vec<NodeId> = present.iter().map(|&(_, l)| l).collect();
            let swept = spnet_graph::search::with_thread_workspace(|ws| {
                ws.multi_sssp_rows(&cg.sub, &locals)
            });
            present
                .iter()
                .zip(swept)
                .map(|(&(id, _), row)| (id, Arc::new(row)))
                .collect()
        });
        computed.get(&v).cloned()
    }

    /// Number of multi-source sweeps run so far (test observability).
    #[cfg(test)]
    pub(crate) fn sweep_count(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Number of solo fallback searches run so far (test observability).
    #[cfg(test)]
    pub(crate) fn solo_count(&self) -> u64 {
        self.solo.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for HypBatchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HypBatchState({:?}, {} sweeps)",
            self.cells,
            self.sweeps.load(Ordering::Relaxed)
        )
    }
}

/// Resolves a cell's authenticated subgraph, through the per-batch
/// cache when one is supplied.
fn cell_graph(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    cell: u32,
    cache: Option<&CellGraphCache>,
) -> Result<Arc<CellGraph>, VerifyError> {
    match cache {
        Some(c) => c.get_or_build(cell, tuples),
        None => Ok(Arc::new(CellGraph::build(tuples, cell)?)),
    }
}

/// A compact dense remap of one cell's authenticated tuples: the
/// in-cell CSR subgraph every endpoint Dijkstra of that cell runs on.
///
/// The seed implementation ran Dijkstra directly over
/// `HashMap<NodeId, …>` state, paying several hash lookups per edge
/// relaxation; PR 1 remapped each cell to `0..k` per *endpoint*. Now
/// the remap is built once per cell and shared — within one query
/// when both endpoints share a cell, and across a whole batch via
/// [`CellGraphCache`].
pub(crate) struct CellGraph {
    /// Local index → node id (ascending).
    ids: Vec<NodeId>,
    /// Node id → local index.
    local: HashMap<NodeId, u32>,
    /// The in-cell CSR subgraph (local indices).
    sub: Graph,
    /// Local index → authenticated border flag.
    border: Vec<bool>,
}

impl CellGraph {
    /// Assembles the cell's subgraph from authenticated adjacency;
    /// each undirected edge is added once, from its lower endpoint.
    fn build(
        tuples: &HashMap<NodeId, &ExtendedTuple>,
        cell: u32,
    ) -> Result<CellGraph, VerifyError> {
        // Gather the cell's nodes in ascending id order (determinism).
        let mut ids: Vec<NodeId> = tuples
            .values()
            .filter(|t| t.cell.is_some_and(|ci| ci.cell == cell))
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        let local: HashMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut b = spnet_graph::GraphBuilder::with_capacity(ids.len(), ids.len() * 2);
        for _ in &ids {
            b.add_node(0.0, 0.0);
        }
        let mut border = vec![false; ids.len()];
        for (li, &id) in ids.iter().enumerate() {
            let t = tuples[&id];
            border[li] = t.cell.is_some_and(|ci| ci.is_border);
            for &(u, w) in &t.adj {
                if let Some(&lu) = local.get(&u) {
                    if (li as u32) < lu {
                        b.add_edge(NodeId(li as u32), NodeId(lu), w).map_err(|_| {
                            VerifyError::MetaMismatch("malformed in-cell adjacency")
                        })?;
                    }
                }
            }
        }
        let sub = b
            .try_build()
            .map_err(|_| VerifyError::MetaMismatch("malformed in-cell adjacency"))?;
        Ok(CellGraph {
            ids,
            local,
            sub,
            border,
        })
    }

    /// Runs the in-cell Dijkstra from `source` on the thread's reused
    /// dense [`spnet_graph::search::SearchWorkspace`].
    fn distances_from(&self, source: NodeId) -> Result<CellDistances<'_>, VerifyError> {
        let source_local = *self
            .local
            .get(&source)
            .ok_or(VerifyError::MissingEndpointTuple(source))?;
        let dist = spnet_graph::search::with_thread_workspace(|ws| {
            ws.sssp(&self.sub, NodeId(source_local)).dist_vec()
        });
        Ok(CellDistances {
            cg: self,
            dist: Arc::new(dist),
        })
    }
}

/// A per-batch cache of [`CellGraph`]s keyed by cell id, shared
/// (behind a lock) by every per-query verification job of one batch.
/// Builds are deterministic functions of the authenticated pool, so a
/// cache hit returns exactly what a rebuild would.
#[derive(Default)]
pub(crate) struct CellGraphCache {
    inner: Mutex<HashMap<u32, Arc<CellGraph>>>,
}

impl CellGraphCache {
    fn get_or_build(
        &self,
        cell: u32,
        tuples: &HashMap<NodeId, &ExtendedTuple>,
    ) -> Result<Arc<CellGraph>, VerifyError> {
        if let Some(hit) = self.inner.lock().expect("cell cache poisoned").get(&cell) {
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock (other cells can proceed); racing
        // builders converge on the first insert.
        let built = Arc::new(CellGraph::build(tuples, cell)?);
        Ok(Arc::clone(
            self.inner
                .lock()
                .expect("cell cache poisoned")
                .entry(cell)
                .or_insert(built),
        ))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().expect("cell cache poisoned").len()
    }
}

impl std::fmt::Debug for CellGraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "CellGraphCache({len} cells)")
    }
}

/// In-cell shortest-path distances from one endpoint over a (possibly
/// shared) [`CellGraph`].
struct CellDistances<'a> {
    cg: &'a CellGraph,
    /// Local index → in-cell distance from the endpoint (∞ unreached);
    /// shared when served from a batch sweep's row store.
    dist: Arc<Vec<f64>>,
}

impl CellDistances<'_> {
    /// In-cell distance to `v`, `None` when unreached or outside the
    /// cell.
    fn dist_to(&self, v: NodeId) -> Option<f64> {
        let i = *self.cg.local.get(&v)? as usize;
        self.dist[i].is_finite().then(|| self.dist[i])
    }

    /// Authenticated border nodes reachable in-cell, ascending by id.
    fn reachable_borders(&self) -> Vec<NodeId> {
        self.cg
            .ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.cg.border[i] && self.dist[i].is_finite())
            .map(|(_, &v)| v)
            .collect()
    }
}

/// An empty keyed proof — shipped when the touched cells have no
/// borders at all (single populated cell): verification then relies on
/// in-cell distances alone, and the owner's signature binds the
/// emptiness.
pub(crate) fn empty_keyed_proof(fanout: u32) -> KeyedProof {
    KeyedProof {
        entries: vec![],
        positions: vec![],
        merkle: spnet_crypto::merkle::MerkleProof {
            entries: vec![],
            leaf_count: 0,
            fanout,
        },
    }
}

/// HYP's [`AuthMethod`] implementation: grid partition + signed
/// hyper-edge/cell-directory trees as hints, the source/target cells
/// plus border-pair hyper-edges as ΓS, Theorem 2's border-pair
/// combination as verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct HypMethod;

impl HypMethod {
    /// The HYP hints out of a provider package.
    fn hints(pkg: &ProviderPackage) -> (&HypHints, &SignedRoot, &SignedRoot) {
        match &pkg.hints {
            MethodHints::Hyp {
                hints,
                hyper_signed,
                cell_dir_signed,
            } => (hints, hyper_signed, cell_dir_signed),
            _ => unreachable!("HypMethod dispatched with non-HYP hints"),
        }
    }

    /// Coarse cells plus reported-path nodes outside them — the node
    /// set both the single-query proof and a batched query ship.
    fn covered_nodes(hints: &HypHints, vs: NodeId, vt: NodeId, path: &Path) -> Vec<NodeId> {
        let coarse = hints.coarse_nodes(vs, vt);
        let coarse_set: BTreeSet<NodeId> = coarse.iter().copied().collect();
        coarse
            .into_iter()
            .chain(
                path.nodes
                    .iter()
                    .copied()
                    .filter(|v| !coarse_set.contains(v)),
            )
            .collect()
    }
}

impl AuthMethod for HypMethod {
    fn name(&self) -> &'static str {
        "HYP"
    }

    fn params_code(&self) -> u8 {
        4
    }

    fn build_hints(
        &self,
        g: &Graph,
        config: &MethodConfig,
        setup: &SetupConfig,
        keypair: &RsaKeyPair,
    ) -> (MethodHints, MethodParams) {
        let MethodConfig::Hyp { cells } = config else {
            unreachable!("HypMethod dispatched with non-HYP config");
        };
        let hints = HypHints::build(g, *cells, setup.fanout);
        let hyper_signed = hints.sign_hyper(keypair, setup.fanout as u32);
        let cell_dir_signed = hints.sign_cell_dir(keypair, setup.fanout as u32);
        (
            MethodHints::Hyp {
                hints,
                hyper_signed,
                cell_dir_signed,
            },
            MethodParams::Hyp,
        )
    }

    fn make_tuple(&self, g: &Graph, v: NodeId, hints: &MethodHints) -> ExtendedTuple {
        let MethodHints::Hyp { hints, .. } = hints else {
            unreachable!("HypMethod dispatched with non-HYP hints");
        };
        ExtendedTuple::with_cell(g, v, &hints.partition)
    }

    fn wants_change_dists(&self) -> bool {
        true
    }

    /// HYP repair: the partition and cell directory are pure geometry
    /// — a weight change cannot touch them (the directory signature
    /// keeps its exact bytes) — so only dirty hyper-edges are
    /// recomputed and only the hyper root is re-signed.
    fn repair_hints(
        &self,
        g: &Graph,
        change: &crate::methods::EdgeChange,
        hints: &mut MethodHints,
        keypair: &RsaKeyPair,
    ) -> Result<crate::methods::DirtySet, crate::update::UpdateError> {
        let MethodHints::Hyp {
            hints: h,
            hyper_signed,
            ..
        } = hints
        else {
            return Err(crate::update::UpdateError::Rebuild(
                "HYP repair dispatched with non-HYP hints".into(),
            ));
        };
        let old = change.old_dists.as_ref().ok_or_else(|| {
            crate::update::UpdateError::Rebuild("missing pre-update endpoint distances".into())
        })?;
        let repaired = h.repair_hyper_edges(g, change, old)?;
        let fanout = hyper_signed.meta.fanout;
        *hyper_signed = h.sign_hyper(keypair, fanout);
        Ok(crate::methods::DirtySet {
            tuples: Vec::new(),
            aux_repaired: repaired,
            aux_resigned: 1,
            new_params: None,
        })
    }

    fn snapshot_hints(
        &self,
        hints: &MethodHints,
        w: &mut spnet_store::SnapshotWriter,
    ) -> Result<(), SnapshotError> {
        let MethodHints::Hyp {
            hints: h,
            hyper_signed,
            cell_dir_signed,
        } = hints
        else {
            return Err(SnapshotError::Corrupt("HYP hints expected"));
        };
        let mut e = Encoder::new();
        e.put_u32(h.partition.side());
        e.put_u32(cell_dir_signed.meta.fanout);
        e.put_f64(h.build_seconds);
        e.put_u64(h.hyper_tree.as_ref().map_or(0, |t| t.len() as u64));
        e.put_u64(h.cell_dir.len() as u64);
        w.blob(snapshot::SEC_HYP_CONFIG, e.bytes())?;
        w.blob(
            snapshot::SEC_HYP_HYPER_SIGNED,
            &snapshot::encode_signed_root(hyper_signed),
        )?;
        w.blob(
            snapshot::SEC_HYP_DIR_SIGNED,
            &snapshot::encode_signed_root(cell_dir_signed),
        )?;
        if let Some(t) = &h.hyper_tree {
            snapshot::write_btree(
                w,
                t,
                snapshot::SEC_HYP_HYPER_ENTRIES,
                snapshot::SEC_HYP_HYPER_KEYS,
                snapshot::SEC_HYP_HYPER_TREE,
            )?;
        }
        snapshot::write_btree(
            w,
            &h.cell_dir,
            snapshot::SEC_HYP_DIR_ENTRIES,
            snapshot::SEC_HYP_DIR_KEYS,
            snapshot::SEC_HYP_DIR_TREE,
        )
    }

    fn load_hints(
        &self,
        g: &Graph,
        store: &spnet_store::NodeStore,
    ) -> Result<MethodHints, SnapshotError> {
        let cfg = store.blob(snapshot::SEC_HYP_CONFIG)?;
        let mut d = Decoder::new(&cfg);
        let side = d.take_u32()?;
        let fanout = d.take_u32()? as usize;
        let build_seconds = d.take_f64()?;
        let hyper_len = d.take_u64()? as usize;
        let dir_len = d.take_u64()? as usize;
        d.finish()?;
        if side == 0 || fanout < 2 {
            return Err(SnapshotError::Corrupt("HYP config out of range"));
        }

        let hyper_signed =
            snapshot::decode_signed_root(&store.blob(snapshot::SEC_HYP_HYPER_SIGNED)?)?;
        let cell_dir_signed =
            snapshot::decode_signed_root(&store.blob(snapshot::SEC_HYP_DIR_SIGNED)?)?;
        if hyper_signed.meta.tag != AdsTag::HyperEdges
            || cell_dir_signed.meta.tag != AdsTag::CellDirectory
        {
            return Err(SnapshotError::Corrupt(
                "HYP signed root carries a foreign tag",
            ));
        }
        if hyper_signed.meta.fanout as usize != fanout
            || cell_dir_signed.meta.fanout as usize != fanout
        {
            return Err(SnapshotError::Corrupt("HYP fanout contradicts signed meta"));
        }

        // The partition is a deterministic function of the graph and
        // grid side; the border flags it yields are cross-checked by
        // the authenticated tuples at verification time.
        let partition = GridPartition::build(g, side);

        let hyper_tree = if hyper_len == 0 {
            if hyper_signed.meta.leaf_count != 0
                || hyper_signed.root != spnet_crypto::digest::Digest::ZERO
            {
                return Err(SnapshotError::Corrupt(
                    "empty hyper tree contradicts its signed root",
                ));
            }
            None
        } else {
            let t = snapshot::load_btree(
                store,
                hyper_len,
                fanout,
                snapshot::SEC_HYP_HYPER_ENTRIES,
                snapshot::SEC_HYP_HYPER_KEYS,
                snapshot::SEC_HYP_HYPER_TREE,
            )?;
            if hyper_signed.meta.leaf_count != t.len() as u64 || hyper_signed.root != t.root() {
                return Err(SnapshotError::Corrupt(
                    "HYP hyper root does not match loaded tree",
                ));
            }
            Some(t)
        };

        let cell_dir = snapshot::load_btree(
            store,
            dir_len,
            fanout,
            snapshot::SEC_HYP_DIR_ENTRIES,
            snapshot::SEC_HYP_DIR_KEYS,
            snapshot::SEC_HYP_DIR_TREE,
        )?;
        if cell_dir_signed.meta.leaf_count != cell_dir.len() as u64
            || cell_dir_signed.root != cell_dir.root()
        {
            return Err(SnapshotError::Corrupt(
                "HYP directory root does not match loaded tree",
            ));
        }
        if cell_dir.len() != partition.num_cells() {
            return Err(SnapshotError::Corrupt("cell directory size mismatch"));
        }

        Ok(MethodHints::Hyp {
            hints: HypHints {
                partition,
                hyper_tree,
                cell_dir,
                build_seconds,
            },
            hyper_signed,
            cell_dir_signed,
        })
    }

    fn prove(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError> {
        let (hints, hyper_signed, cell_dir_signed) = Self::hints(pkg);
        let coarse = hints.coarse_nodes(vs, vt);
        let coarse_set: BTreeSet<NodeId> = coarse.iter().copied().collect();
        let extra: Vec<NodeId> = path
            .nodes
            .iter()
            .copied()
            .filter(|v| !coarse_set.contains(v))
            .collect();
        let cell_tuples: Vec<Arc<ExtendedTuple>> =
            coarse.iter().map(|&v| pkg.ads.tuple_shared(v)).collect();
        let path_tuples: Vec<Arc<ExtendedTuple>> =
            extra.iter().map(|&v| pkg.ads.tuple_shared(v)).collect();
        let keys = hints.hyper_keys(vs, vt);
        let hyper = match &hints.hyper_tree {
            Some(t) => t
                .prove_keys(&keys)
                .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?,
            None => empty_keyed_proof(pkg.ads.fanout() as u32),
        };
        let cell_dir = hints
            .cell_dir
            .prove_keys(&hints.batch_dir_keys(&[(vs, vt)]))
            .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?;
        let covered: Vec<NodeId> = coarse.into_iter().chain(extra).collect();
        Ok((
            SpProof::Hyp {
                cell_tuples,
                path_tuples,
                hyper,
                hyper_signed_root: hyper_signed.clone(),
                cell_dir,
                cell_dir_signed_root: cell_dir_signed.clone(),
            },
            covered,
        ))
    }

    fn batch_members(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Vec<NodeId> {
        let (hints, _, _) = Self::hints(pkg);
        Self::covered_nodes(hints, vs, vt, path)
    }

    fn prove_batch(
        &self,
        pkg: &ProviderPackage,
        queries: &[(NodeId, NodeId)],
    ) -> Result<BatchAux, ProviderError> {
        let (hints, hyper_signed, cell_dir_signed) = Self::hints(pkg);
        let keys = hints.batch_hyper_keys(queries);
        let hyper = match &hints.hyper_tree {
            Some(t) => t
                .prove_keys(&keys)
                .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?,
            None => empty_keyed_proof(pkg.ads.fanout() as u32),
        };
        let cell_dir = hints
            .cell_dir
            .prove_keys(&hints.batch_dir_keys(queries))
            .map_err(|e| ProviderError::ProofAssembly(e.to_string()))?;
        Ok(BatchAux::Hyp {
            hyper,
            hyper_signed_root: hyper_signed.clone(),
            cell_dir,
            cell_dir_signed_root: cell_dir_signed.clone(),
        })
    }

    fn matches_proof(&self, sp: &SpProof) -> bool {
        matches!(sp, SpProof::Hyp { .. })
    }

    fn verify(
        &self,
        ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        sp: &SpProof,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        let SpProof::Hyp {
            hyper,
            hyper_signed_root,
            cell_dir,
            cell_dir_signed_root,
            ..
        } = sp
        else {
            return Err(VerifyError::MetaMismatch(
                "proof shape does not match method",
            ));
        };
        // Authenticate both auxiliary structures first.
        verify_hyp_aux(
            ctx,
            hyper,
            hyper_signed_root,
            cell_dir,
            cell_dir_signed_root,
        )?;
        verify_hyp_impl(tuples, hyper, cell_dir, vs, vt, None)
    }

    fn verify_batch_aux<'a>(
        &self,
        ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        aux: &'a BatchAux,
    ) -> Result<AuxContext<'a>, VerifyError> {
        match aux {
            BatchAux::Hyp {
                hyper,
                hyper_signed_root,
                cell_dir,
                cell_dir_signed_root,
            } => {
                verify_hyp_aux(
                    ctx,
                    hyper,
                    hyper_signed_root,
                    cell_dir,
                    cell_dir_signed_root,
                )?;
                Ok(AuxContext::Hyp { hyper, cell_dir })
            }
            _ => Err(VerifyError::MetaMismatch(
                "batch proof shape does not match signed method",
            )),
        }
    }

    fn prepare_batch_verify(
        &self,
        _params: &MethodParams,
        queries: &[(NodeId, NodeId)],
        batch: &crate::batch::BatchAnswer,
        state: &BatchVerifyState,
    ) {
        // Group the batch's query endpoints by their authenticated
        // cell. The plan is advisory: a per-query job only consumes a
        // planned row after ITS OWN completeness check passed, and any
        // endpoint the plan mislabels (e.g. a malicious duplicate-id
        // pool) simply misses the row store and takes the bit-identical
        // solo route.
        let mut cell_of: HashMap<NodeId, u32> = HashMap::with_capacity(batch.pool.len());
        for t in &batch.pool {
            if let Some(ci) = t.cell {
                cell_of.entry(t.id).or_insert(ci.cell);
            }
        }
        let mut plan: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &(vs, vt) in queries {
            if vs == vt {
                continue; // verified as 0.0 without any search
            }
            for v in [vs, vt] {
                if let Some(&c) = cell_of.get(&v) {
                    let endpoints = plan.entry(c).or_default();
                    if !endpoints.contains(&v) {
                        endpoints.push(v);
                    }
                }
            }
        }
        state.hyp.set_plan(plan);
    }

    fn verify_batch_query(
        &self,
        _params: &MethodParams,
        ctx: &AuxContext<'_>,
        state: &BatchVerifyState,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        let AuxContext::Hyp { hyper, cell_dir } = ctx else {
            unreachable!("verify_batch_aux checked the pairing");
        };
        verify_hyp_impl(tuples, hyper, cell_dir, vs, vt, Some(&state.hyp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn setup(seed: u64, cells: usize) -> (Graph, HypHints) {
        let g = grid_network(12, 12, 1.2, seed);
        let hints = HypHints::build(&g, cells, 4);
        (g, hints)
    }

    fn proof_parts(
        g: &Graph,
        hints: &HypHints,
        vs: NodeId,
        vt: NodeId,
        path_nodes: &[NodeId],
    ) -> (Vec<ExtendedTuple>, KeyedProof, KeyedProof) {
        let coarse = hints.coarse_nodes(vs, vt);
        let mut nodes: Vec<NodeId> = coarse.clone();
        for &v in path_nodes {
            if !nodes.contains(&v) {
                nodes.push(v);
            }
        }
        let tuples: Vec<ExtendedTuple> = nodes
            .iter()
            .map(|&v| ExtendedTuple::with_cell(g, v, &hints.partition))
            .collect();
        let keys = hints.hyper_keys(vs, vt);
        let hyper = match &hints.hyper_tree {
            Some(t) => t.prove_keys(&keys).unwrap(),
            None => panic!("test graphs always have borders"),
        };
        let cs = hints.partition.cell_of(vs);
        let ct = hints.partition.cell_of(vt);
        let mut dir_keys = vec![cs as u64];
        if ct != cs {
            dir_keys.push(ct as u64);
        }
        dir_keys.sort();
        let cell_dir = hints.cell_dir.prove_keys(&dir_keys).unwrap();
        (tuples, hyper, cell_dir)
    }

    fn as_map(tuples: &[ExtendedTuple]) -> HashMap<NodeId, &ExtendedTuple> {
        tuples.iter().map(|t| (t.id, t)).collect()
    }

    #[test]
    fn client_recovers_exact_distance_cross_cell() {
        let (g, hints) = setup(600, 9);
        for (s, t) in [(0u32, 143u32), (3, 140), (130, 10)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let p = dijkstra_path(&g, s, t).unwrap();
            let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
            let got = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, None).unwrap();
            assert!(
                (got - p.distance).abs() <= 1e-9 * p.distance.max(1.0),
                "({s},{t}): got {got}, want {}",
                p.distance
            );
        }
    }

    #[test]
    fn client_recovers_exact_distance_same_cell() {
        let (g, hints) = setup(601, 4);
        // Find two nodes in the same cell.
        let part = &hints.partition;
        let cell0 = (0..part.num_cells() as u32)
            .find(|&c| part.cell_members(c).len() >= 2)
            .unwrap();
        let ms = part.cell_members(cell0);
        let (s, t) = (ms[0], ms[ms.len() - 1]);
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let got = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, None).unwrap();
        assert!((got - p.distance).abs() <= 1e-9 * p.distance.max(1.0));
    }

    #[test]
    fn hyper_edges_are_exact_distances() {
        let (g, hints) = setup(602, 9);
        let borders = hints.partition.all_borders();
        let tree = hints.hyper_tree.as_ref().unwrap();
        for (i, &b1) in borders.iter().enumerate().take(5) {
            for &b2 in borders.iter().skip(i + 1).take(5) {
                let w = tree.get(hyper_key(b1, b2)).unwrap();
                let d = dijkstra_path(&g, b1, b2).unwrap().distance;
                assert!((w - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dropped_border_detected_via_directory() {
        // The attack the cell directory exists for: omit a border node
        // of the source cell.
        let (g, hints) = setup(603, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let cs = hints.partition.cell_of(s);
        let victim = hints.partition.cell_borders(cs)[0];
        let reduced: Vec<ExtendedTuple> = tuples.into_iter().filter(|t_| t_.id != victim).collect();
        let err = verify_hyp_impl(&as_map(&reduced), &hyper, &dir, s, t, None);
        assert!(err.is_err(), "incomplete cell must be rejected");
    }

    #[test]
    fn missing_hyper_edge_detected() {
        let (g, hints) = setup(604, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, mut hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        // The provider hides the candidate crossings. (Dropping a single
        // entry is only detected when its border pair is in-cell
        // reachable, which depends on the generated graph; an empty
        // entry list fails on the first needed pair unconditionally.)
        hyper.entries.clear();
        hyper.positions.clear();
        let err = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, None);
        assert!(matches!(err, Err(VerifyError::MissingDistanceKey { .. })));
    }

    #[test]
    fn missing_endpoint_detected() {
        let (g, hints) = setup(605, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let reduced: Vec<ExtendedTuple> = tuples.into_iter().filter(|t_| t_.id != s).collect();
        let err = verify_hyp_impl(&as_map(&reduced), &hyper, &dir, s, t, None);
        assert_eq!(err, Err(VerifyError::MissingEndpointTuple(s)));
    }

    #[test]
    fn trivial_query() {
        let (_, _hints) = setup(606, 4);
        let map = HashMap::new();
        let hyper = KeyedProof {
            entries: vec![],
            positions: vec![],
            merkle: spnet_crypto::merkle::MerkleProof {
                entries: vec![],
                leaf_count: 1,
                fanout: 2,
            },
        };
        let dir = hyper.clone();
        assert_eq!(
            verify_hyp_impl(&map, &hyper, &dir, NodeId(3), NodeId(3), None).unwrap(),
            0.0
        );
    }

    #[test]
    fn same_cell_query_that_must_exit_the_cell() {
        // The optimum between two same-cell nodes can leave the cell:
        // A—B costs 100 directly, but A—C—B (through the other cell)
        // costs 2. Theorem 2's border-pair combination must find it.
        use spnet_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0, 1.0);
        let b_ = b.add_node(2.0, 1.0);
        let c = b.add_node(9.0, 1.0);
        b.add_edge(a, b_, 100.0).unwrap();
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, b_, 1.0).unwrap();
        let g = b.build();
        let hints = HypHints::build(&g, 4, 2);
        assert_eq!(hints.partition.cell_of(a), hints.partition.cell_of(b_));
        assert_ne!(hints.partition.cell_of(a), hints.partition.cell_of(c));
        let p = dijkstra_path(&g, a, b_).unwrap();
        assert_eq!(p.distance, 2.0, "optimum goes through the other cell");
        let (tuples, hyper, dir) = proof_parts(&g, &hints, a, b_, &p.nodes);
        let got = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, a, b_, None).unwrap();
        assert_eq!(got, 2.0);
    }

    #[test]
    fn endpoint_on_border_works() {
        // A query whose source IS a border node: the prefix is trivial.
        let (g, hints) = setup(609, 9);
        let borders = hints.partition.all_borders();
        let s = borders[0];
        let t = borders[borders.len() - 1];
        if hints.partition.cell_of(s) == hints.partition.cell_of(t) {
            return; // want a cross-cell query on this seed
        }
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let got = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, None).unwrap();
        assert!((got - p.distance).abs() <= 1e-9 * p.distance.max(1.0));
    }

    #[test]
    fn more_cells_fewer_coarse_nodes() {
        // Figure 13a's mechanism: more cells ⇒ smaller cells ⇒ smaller
        // coarse proof.
        let g = grid_network(16, 16, 1.15, 607);
        let few = HypHints::build(&g, 4, 4);
        let many = HypHints::build(&g, 64, 4);
        let (s, t) = (NodeId(0), NodeId(255));
        assert!(many.coarse_nodes(s, t).len() < few.coarse_nodes(s, t).len());
    }

    #[test]
    fn build_seconds_recorded() {
        let (_, hints) = setup(608, 9);
        assert!(hints.build_seconds >= 0.0);
    }

    #[test]
    fn cell_graph_cache_shares_remaps_and_preserves_results() {
        let (g, hints) = setup(611, 9);
        let queries = [(NodeId(0), NodeId(143)), (NodeId(1), NodeId(142))];
        // An unplanned batch state: the cell-graph cache is shared,
        // while every endpoint takes the solo-Dijkstra fallback.
        let state = HypBatchState::default();
        for &(s, t) in &queries {
            let p = dijkstra_path(&g, s, t).unwrap();
            // A pooled map large enough for both queries (as a batch
            // pool would be): both cells complete + path nodes.
            let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
            let plain = verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, None).unwrap();
            let cached =
                verify_hyp_impl(&as_map(&tuples), &hyper, &dir, s, t, Some(&state)).unwrap();
            assert_eq!(
                plain.to_bits(),
                cached.to_bits(),
                "cache must not change the proven optimum"
            );
        }
        // Both queries touch the same two cells: two remaps total, not
        // four endpoint rebuilds.
        assert_eq!(state.cells.len(), 2);
        // No plan was installed, so no sweeps ran and all four
        // endpoint searches fell back to solo Dijkstras.
        assert_eq!(state.sweep_count(), 0);
        assert_eq!(state.solo_count(), 4);
    }

    #[test]
    fn batch_keys_are_union_of_single_query_keys() {
        let (_, hints) = setup(610, 9);
        let queries = [
            (NodeId(0), NodeId(143)),
            (NodeId(3), NodeId(140)),
            (NodeId(143), NodeId(0)), // swapped cell pair: dedups away
            (NodeId(130), NodeId(10)),
        ];
        let batch = hints.batch_hyper_keys(&queries);
        let mut union: BTreeSet<u64> = BTreeSet::new();
        for &(s, t) in &queries {
            union.extend(hints.hyper_keys(s, t));
        }
        assert_eq!(batch, union.into_iter().collect::<Vec<_>>());
        assert!(batch.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");

        let dirs = hints.batch_dir_keys(&queries);
        let mut dir_union: BTreeSet<u64> = BTreeSet::new();
        for &(s, t) in &queries {
            dir_union.insert(hints.partition.cell_of(s) as u64);
            dir_union.insert(hints.partition.cell_of(t) as u64);
        }
        assert_eq!(dirs, dir_union.into_iter().collect::<Vec<_>>());
    }
}
