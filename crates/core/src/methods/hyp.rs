//! HYP — hyper-graph verification (Section V-B).
//!
//! The owner partitions the network into a grid of `p` cells, marks
//! border nodes, and materializes a hyper-edge weight
//! `W*(b, b′) = dist(b, b′)` for **every pair of border nodes**
//! (the paper's footnote 1) in a signed Merkle B-tree. A signed *cell
//! directory* (cell id → population count) additionally lets the client
//! check it received the complete source and target cells — without
//! it, a malicious provider could silently drop border nodes and
//! inflate the verified optimum.
//!
//! The provider ships (coarse proof) all tuples of the source and
//! target cells plus the hyper-edges between their border sets, and
//! (fine proof) the tuples of reported-path nodes in intermediate
//! cells. The client:
//!
//! 1. authenticates everything against the signed roots,
//! 2. runs in-cell Dijkstra from `vs` and `vt`,
//! 3. combines `dist_in(vs,b) + W*(b,b′) + dist_in(b′,vt)` over all
//!    border pairs (Theorem 2) to obtain the exact optimum,
//! 4. checks the reported path's length equals that optimum.

use crate::ads::{AdsMeta, AdsTag, SignedRoot};
use crate::error::VerifyError;
use crate::tuple::ExtendedTuple;
use spnet_crypto::mbtree::{composite_key, KeyedEntry, KeyedProof, MerkleBTree};
use spnet_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use spnet_graph::partition::GridPartition;
use spnet_graph::{Graph, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The owner-side HYP hints.
#[derive(Debug, Clone)]
pub struct HypHints {
    /// The grid partition (cell ids and border flags also live inside
    /// the authenticated tuples).
    pub partition: GridPartition,
    /// Hyper-edge weights for all border pairs, keyed by the normalized
    /// composite `(min, max)`.
    pub hyper_tree: Option<MerkleBTree>,
    /// Cell directory: cell id → node count.
    pub cell_dir: MerkleBTree,
    /// Construction wall-clock seconds (border Dijkstras + tree
    /// hashing) for Figure 13b.
    pub build_seconds: f64,
}

/// Normalized hyper-edge key for an unordered border pair.
pub fn hyper_key(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    composite_key(lo, hi)
}

impl HypHints {
    /// Runs the owner-side construction: partition, border Dijkstras,
    /// hyper-edge tree, cell directory.
    ///
    /// The all-pairs border distances (footnote 1) dominate this cost;
    /// with the `parallel` feature the border sources fan out over
    /// threads, each reusing its thread's search workspace. Entries are
    /// sorted by key afterwards, so the tree is identical either way.
    pub fn build(g: &Graph, cells: usize, fanout: usize) -> Self {
        let start = std::time::Instant::now();
        let partition = GridPartition::with_cells(g, cells);
        let borders = partition.all_borders();
        let indexed: Vec<(usize, NodeId)> = borders.iter().copied().enumerate().collect();
        let per_border_entries: Vec<Vec<KeyedEntry>> = crate::par::map_jobs(&indexed, |&(i, b)| {
            spnet_graph::search::with_thread_workspace(|ws| {
                let sssp = ws.sssp(g, b);
                borders[i + 1..]
                    .iter()
                    .map(|&b2| KeyedEntry {
                        key: hyper_key(b, b2),
                        value: sssp.dist(b2),
                    })
                    .collect()
            })
        });
        let mut entries: Vec<KeyedEntry> = per_border_entries.into_iter().flatten().collect();
        entries.sort_by_key(|e| e.key);
        let hyper_tree = if entries.is_empty() {
            None
        } else {
            Some(MerkleBTree::build(entries, fanout).expect("sorted entries"))
        };
        let dir_entries: Vec<KeyedEntry> = (0..partition.num_cells() as u32)
            .map(|c| KeyedEntry {
                key: c as u64,
                value: partition.cell_members(c).len() as f64,
            })
            .collect();
        let cell_dir = MerkleBTree::build(dir_entries, fanout).expect("cells exist");
        HypHints {
            partition,
            hyper_tree,
            cell_dir,
            build_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Signs the hyper-edge tree root (ZERO digest if no borders — the
    /// signature still binds that fact).
    pub fn sign_hyper(&self, keypair: &RsaKeyPair, fanout: u32) -> SignedRoot {
        let (root, leaves) = match &self.hyper_tree {
            Some(t) => (t.root(), t.len() as u64),
            None => (spnet_crypto::digest::Digest::ZERO, 0),
        };
        SignedRoot::sign(
            keypair,
            root,
            AdsMeta {
                tag: AdsTag::HyperEdges,
                leaf_count: leaves,
                fanout,
                params: Vec::new(),
            },
        )
    }

    /// Signs the cell-directory root.
    pub fn sign_cell_dir(&self, keypair: &RsaKeyPair, fanout: u32) -> SignedRoot {
        SignedRoot::sign(
            keypair,
            self.cell_dir.root(),
            AdsMeta {
                tag: AdsTag::CellDirectory,
                leaf_count: self.cell_dir.len() as u64,
                fanout,
                params: Vec::new(),
            },
        )
    }

    /// Provider side: the coarse node set — all nodes of the source and
    /// target cells.
    pub fn coarse_nodes(&self, vs: NodeId, vt: NodeId) -> Vec<NodeId> {
        let cs = self.partition.cell_of(vs);
        let ct = self.partition.cell_of(vt);
        let mut nodes: Vec<NodeId> = self.partition.cell_members(cs).to_vec();
        if ct != cs {
            nodes.extend_from_slice(self.partition.cell_members(ct));
        }
        nodes.sort();
        nodes
    }

    /// Provider side: the hyper-edge keys the proof must carry — every
    /// pair between the source-cell border set and the target-cell
    /// border set (all pairs within the cell when `cs == ct`).
    pub fn hyper_keys(&self, vs: NodeId, vt: NodeId) -> Vec<u64> {
        self.batch_hyper_keys(&[(vs, vt)])
    }

    /// Provider side, batched: the deduplicated union of hyper-edge
    /// keys over all queries. Queries sharing a cell pair contribute
    /// the same keys once, so each touched cell's border-distance
    /// matrix ships (and is Merkle-verified) once per batch.
    pub fn batch_hyper_keys(&self, queries: &[(NodeId, NodeId)]) -> Vec<u64> {
        let mut keys: HashSet<u64> = HashSet::new();
        let mut seen_cell_pairs: HashSet<(u32, u32)> = HashSet::new();
        for &(vs, vt) in queries {
            let cs = self.partition.cell_of(vs);
            let ct = self.partition.cell_of(vt);
            if !seen_cell_pairs.insert((cs.min(ct), cs.max(ct))) {
                continue;
            }
            let bs = self.partition.cell_borders(cs);
            let bt = self.partition.cell_borders(ct);
            for &a in &bs {
                for &b in &bt {
                    if a != b {
                        keys.insert(hyper_key(a, b));
                    }
                }
            }
        }
        let mut out: Vec<u64> = keys.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Provider side, batched: the deduplicated union of
    /// cell-directory keys (touched cell ids) over all queries.
    pub fn batch_dir_keys(&self, queries: &[(NodeId, NodeId)]) -> Vec<u64> {
        let mut cells: BTreeSet<u64> = BTreeSet::new();
        for &(vs, vt) in queries {
            cells.insert(self.partition.cell_of(vs) as u64);
            cells.insert(self.partition.cell_of(vt) as u64);
        }
        cells.into_iter().collect()
    }
}

/// Client side: authenticates the two HYP auxiliary structures —
/// owner signatures and Merkle roots — ahead of [`verify_hyp`].
/// Shared by the single-query and batched verification paths so the
/// authentication rules cannot drift between them.
pub(crate) fn verify_hyp_aux(
    pk: &RsaPublicKey,
    hyper: &KeyedProof,
    hyper_signed_root: &SignedRoot,
    cell_dir: &KeyedProof,
    cell_dir_signed_root: &SignedRoot,
) -> Result<(), VerifyError> {
    if !hyper_signed_root.verify(pk) || !cell_dir_signed_root.verify(pk) {
        return Err(VerifyError::BadSignature);
    }
    // An empty hyper proof is acceptable only when the touched cells
    // are border-free: verify_hyp fails on the first needed pair
    // otherwise, so no explicit check is required here.
    if !hyper.entries.is_empty() {
        let root = hyper
            .reconstruct_root()
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if root != hyper_signed_root.root {
            return Err(VerifyError::RootMismatch);
        }
    }
    let dir_root = cell_dir
        .reconstruct_root()
        .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
    if dir_root != cell_dir_signed_root.root {
        return Err(VerifyError::RootMismatch);
    }
    Ok(())
}

/// Client side: verifies the HYP ΓS and returns the proven optimum.
///
/// `tuples` must already be integrity-verified; `hyper` and `cell_dir`
/// must already be root/signature-verified by the caller (the
/// crate-internal `verify_hyp_aux`).
pub fn verify_hyp(
    tuples: &HashMap<NodeId, &ExtendedTuple>,
    hyper: &KeyedProof,
    cell_dir: &KeyedProof,
    vs: NodeId,
    vt: NodeId,
) -> Result<f64, VerifyError> {
    if vs == vt {
        return Ok(0.0);
    }
    let ts = tuples
        .get(&vs)
        .ok_or(VerifyError::MissingEndpointTuple(vs))?;
    let tt = tuples
        .get(&vt)
        .ok_or(VerifyError::MissingEndpointTuple(vt))?;
    let cs = ts
        .cell
        .ok_or(VerifyError::MetaMismatch("source tuple lacks cell info"))?
        .cell;
    let ct = tt
        .cell
        .ok_or(VerifyError::MetaMismatch("target tuple lacks cell info"))?
        .cell;

    // Completeness of the coarse proof: the signed directory tells the
    // client how many nodes each cell must contain.
    for cell in if cs == ct { vec![cs] } else { vec![cs, ct] } {
        let expected = cell_dir
            .value_for(cell as u64)
            .ok_or(VerifyError::MissingProofPart("cell directory entry"))?
            as usize;
        let got = tuples
            .values()
            .filter(|t| t.cell.is_some_and(|ci| ci.cell == cell))
            .count();
        if got < expected {
            return Err(VerifyError::MetaMismatch("incomplete cell in coarse proof"));
        }
    }

    // In-cell Dijkstras from both endpoints, on a dense node-index
    // remap of each cell (no per-pop hashing).
    let din_s = CellDistances::compute(tuples, vs, cs)?;
    let din_t = CellDistances::compute(tuples, vt, ct)?;

    // Border sets, from authenticated flags, restricted to in-cell
    // reachable nodes (unreachable borders cannot host the first/last
    // crossing of the optimum).
    let bs = din_s.reachable_borders();
    let bt = din_t.reachable_borders();

    let mut best = f64::INFINITY;
    if cs == ct {
        if let Some(d) = din_s.dist_to(vt) {
            best = d;
        }
    }
    for &b1 in &bs {
        for &b2 in &bt {
            if b1 == b2 {
                continue;
            }
            let w = hyper
                .value_for(hyper_key(b1, b2))
                .ok_or(VerifyError::MissingDistanceKey { a: b1, b: b2 })?;
            let cand = din_s.dist_to(b1).expect("b1 is reachable")
                + w
                + din_t.dist_to(b2).expect("b2 is reachable");
            if cand < best {
                best = cand;
            }
        }
    }
    if best.is_infinite() {
        return Err(VerifyError::CoarseUnreachable);
    }
    Ok(best)
}

/// In-cell shortest-path distances from one endpoint, computed on a
/// compact dense remap of the cell's authenticated tuples.
///
/// The seed implementation ran Dijkstra directly over
/// `HashMap<NodeId, …>` state, paying several hash lookups per edge
/// relaxation. Here the cell's nodes are remapped once to `0..k`
/// (ascending id), an in-cell CSR subgraph is assembled from the
/// authenticated adjacency lists, and the search runs on the thread's
/// reused dense [`spnet_graph::search::SearchWorkspace`].
struct CellDistances {
    /// Local index → node id (ascending).
    ids: Vec<NodeId>,
    /// Node id → local index.
    local: HashMap<NodeId, u32>,
    /// Local index → in-cell distance from the endpoint (∞ unreached).
    dist: Vec<f64>,
    /// Local index → authenticated border flag.
    border: Vec<bool>,
}

impl CellDistances {
    fn compute(
        tuples: &HashMap<NodeId, &ExtendedTuple>,
        source: NodeId,
        cell: u32,
    ) -> Result<CellDistances, VerifyError> {
        // Gather the cell's nodes in ascending id order (determinism).
        let mut ids: Vec<NodeId> = tuples
            .values()
            .filter(|t| t.cell.is_some_and(|ci| ci.cell == cell))
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        let local: HashMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let source_local = *local
            .get(&source)
            .ok_or(VerifyError::MissingEndpointTuple(source))?;
        // Assemble the in-cell subgraph from authenticated adjacency;
        // each undirected edge is added once, from its lower endpoint.
        let mut b = spnet_graph::GraphBuilder::with_capacity(ids.len(), ids.len() * 2);
        for _ in &ids {
            b.add_node(0.0, 0.0);
        }
        let mut border = vec![false; ids.len()];
        for (li, &id) in ids.iter().enumerate() {
            let t = tuples[&id];
            border[li] = t.cell.is_some_and(|ci| ci.is_border);
            for &(u, w) in &t.adj {
                if let Some(&lu) = local.get(&u) {
                    if (li as u32) < lu {
                        b.add_edge(NodeId(li as u32), NodeId(lu), w).map_err(|_| {
                            VerifyError::MetaMismatch("malformed in-cell adjacency")
                        })?;
                    }
                }
            }
        }
        let sub = b
            .try_build()
            .map_err(|_| VerifyError::MetaMismatch("malformed in-cell adjacency"))?;
        let dist = spnet_graph::search::with_thread_workspace(|ws| {
            ws.sssp(&sub, NodeId(source_local)).dist_vec()
        });
        Ok(CellDistances {
            ids,
            local,
            dist,
            border,
        })
    }

    /// In-cell distance to `v`, `None` when unreached or outside the
    /// cell.
    fn dist_to(&self, v: NodeId) -> Option<f64> {
        let i = *self.local.get(&v)? as usize;
        self.dist[i].is_finite().then(|| self.dist[i])
    }

    /// Authenticated border nodes reachable in-cell, ascending by id.
    fn reachable_borders(&self) -> Vec<NodeId> {
        self.ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.border[i] && self.dist[i].is_finite())
            .map(|(_, &v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn setup(seed: u64, cells: usize) -> (Graph, HypHints) {
        let g = grid_network(12, 12, 1.2, seed);
        let hints = HypHints::build(&g, cells, 4);
        (g, hints)
    }

    fn proof_parts(
        g: &Graph,
        hints: &HypHints,
        vs: NodeId,
        vt: NodeId,
        path_nodes: &[NodeId],
    ) -> (Vec<ExtendedTuple>, KeyedProof, KeyedProof) {
        let coarse = hints.coarse_nodes(vs, vt);
        let mut nodes: Vec<NodeId> = coarse.clone();
        for &v in path_nodes {
            if !nodes.contains(&v) {
                nodes.push(v);
            }
        }
        let tuples: Vec<ExtendedTuple> = nodes
            .iter()
            .map(|&v| ExtendedTuple::with_cell(g, v, &hints.partition))
            .collect();
        let keys = hints.hyper_keys(vs, vt);
        let hyper = match &hints.hyper_tree {
            Some(t) => t.prove_keys(&keys).unwrap(),
            None => panic!("test graphs always have borders"),
        };
        let cs = hints.partition.cell_of(vs);
        let ct = hints.partition.cell_of(vt);
        let mut dir_keys = vec![cs as u64];
        if ct != cs {
            dir_keys.push(ct as u64);
        }
        dir_keys.sort();
        let cell_dir = hints.cell_dir.prove_keys(&dir_keys).unwrap();
        (tuples, hyper, cell_dir)
    }

    fn as_map(tuples: &[ExtendedTuple]) -> HashMap<NodeId, &ExtendedTuple> {
        tuples.iter().map(|t| (t.id, t)).collect()
    }

    #[test]
    fn client_recovers_exact_distance_cross_cell() {
        let (g, hints) = setup(600, 9);
        for (s, t) in [(0u32, 143u32), (3, 140), (130, 10)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let p = dijkstra_path(&g, s, t).unwrap();
            let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
            let got = verify_hyp(&as_map(&tuples), &hyper, &dir, s, t).unwrap();
            assert!(
                (got - p.distance).abs() <= 1e-9 * p.distance.max(1.0),
                "({s},{t}): got {got}, want {}",
                p.distance
            );
        }
    }

    #[test]
    fn client_recovers_exact_distance_same_cell() {
        let (g, hints) = setup(601, 4);
        // Find two nodes in the same cell.
        let part = &hints.partition;
        let cell0 = (0..part.num_cells() as u32)
            .find(|&c| part.cell_members(c).len() >= 2)
            .unwrap();
        let ms = part.cell_members(cell0);
        let (s, t) = (ms[0], ms[ms.len() - 1]);
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let got = verify_hyp(&as_map(&tuples), &hyper, &dir, s, t).unwrap();
        assert!((got - p.distance).abs() <= 1e-9 * p.distance.max(1.0));
    }

    #[test]
    fn hyper_edges_are_exact_distances() {
        let (g, hints) = setup(602, 9);
        let borders = hints.partition.all_borders();
        let tree = hints.hyper_tree.as_ref().unwrap();
        for (i, &b1) in borders.iter().enumerate().take(5) {
            for &b2 in borders.iter().skip(i + 1).take(5) {
                let w = tree.get(hyper_key(b1, b2)).unwrap();
                let d = dijkstra_path(&g, b1, b2).unwrap().distance;
                assert!((w - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dropped_border_detected_via_directory() {
        // The attack the cell directory exists for: omit a border node
        // of the source cell.
        let (g, hints) = setup(603, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let cs = hints.partition.cell_of(s);
        let victim = hints.partition.cell_borders(cs)[0];
        let reduced: Vec<ExtendedTuple> = tuples.into_iter().filter(|t_| t_.id != victim).collect();
        let err = verify_hyp(&as_map(&reduced), &hyper, &dir, s, t);
        assert!(err.is_err(), "incomplete cell must be rejected");
    }

    #[test]
    fn missing_hyper_edge_detected() {
        let (g, hints) = setup(604, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, mut hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        // The provider hides the candidate crossings. (Dropping a single
        // entry is only detected when its border pair is in-cell
        // reachable, which depends on the generated graph; an empty
        // entry list fails on the first needed pair unconditionally.)
        hyper.entries.clear();
        hyper.positions.clear();
        let err = verify_hyp(&as_map(&tuples), &hyper, &dir, s, t);
        assert!(matches!(err, Err(VerifyError::MissingDistanceKey { .. })));
    }

    #[test]
    fn missing_endpoint_detected() {
        let (g, hints) = setup(605, 9);
        let (s, t) = (NodeId(0), NodeId(143));
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let reduced: Vec<ExtendedTuple> = tuples.into_iter().filter(|t_| t_.id != s).collect();
        let err = verify_hyp(&as_map(&reduced), &hyper, &dir, s, t);
        assert_eq!(err, Err(VerifyError::MissingEndpointTuple(s)));
    }

    #[test]
    fn trivial_query() {
        let (_, _hints) = setup(606, 4);
        let map = HashMap::new();
        let hyper = KeyedProof {
            entries: vec![],
            positions: vec![],
            merkle: spnet_crypto::merkle::MerkleProof {
                entries: vec![],
                leaf_count: 1,
                fanout: 2,
            },
        };
        let dir = hyper.clone();
        assert_eq!(
            verify_hyp(&map, &hyper, &dir, NodeId(3), NodeId(3)).unwrap(),
            0.0
        );
    }

    #[test]
    fn same_cell_query_that_must_exit_the_cell() {
        // The optimum between two same-cell nodes can leave the cell:
        // A—B costs 100 directly, but A—C—B (through the other cell)
        // costs 2. Theorem 2's border-pair combination must find it.
        use spnet_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0, 1.0);
        let b_ = b.add_node(2.0, 1.0);
        let c = b.add_node(9.0, 1.0);
        b.add_edge(a, b_, 100.0).unwrap();
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, b_, 1.0).unwrap();
        let g = b.build();
        let hints = HypHints::build(&g, 4, 2);
        assert_eq!(hints.partition.cell_of(a), hints.partition.cell_of(b_));
        assert_ne!(hints.partition.cell_of(a), hints.partition.cell_of(c));
        let p = dijkstra_path(&g, a, b_).unwrap();
        assert_eq!(p.distance, 2.0, "optimum goes through the other cell");
        let (tuples, hyper, dir) = proof_parts(&g, &hints, a, b_, &p.nodes);
        let got = verify_hyp(&as_map(&tuples), &hyper, &dir, a, b_).unwrap();
        assert_eq!(got, 2.0);
    }

    #[test]
    fn endpoint_on_border_works() {
        // A query whose source IS a border node: the prefix is trivial.
        let (g, hints) = setup(609, 9);
        let borders = hints.partition.all_borders();
        let s = borders[0];
        let t = borders[borders.len() - 1];
        if hints.partition.cell_of(s) == hints.partition.cell_of(t) {
            return; // want a cross-cell query on this seed
        }
        let p = dijkstra_path(&g, s, t).unwrap();
        let (tuples, hyper, dir) = proof_parts(&g, &hints, s, t, &p.nodes);
        let got = verify_hyp(&as_map(&tuples), &hyper, &dir, s, t).unwrap();
        assert!((got - p.distance).abs() <= 1e-9 * p.distance.max(1.0));
    }

    #[test]
    fn more_cells_fewer_coarse_nodes() {
        // Figure 13a's mechanism: more cells ⇒ smaller cells ⇒ smaller
        // coarse proof.
        let g = grid_network(16, 16, 1.15, 607);
        let few = HypHints::build(&g, 4, 4);
        let many = HypHints::build(&g, 64, 4);
        let (s, t) = (NodeId(0), NodeId(255));
        assert!(many.coarse_nodes(s, t).len() < few.coarse_nodes(s, t).len());
    }

    #[test]
    fn build_seconds_recorded() {
        let (_, hints) = setup(608, 9);
        assert!(hints.build_seconds >= 0.0);
    }

    #[test]
    fn batch_keys_are_union_of_single_query_keys() {
        let (_, hints) = setup(610, 9);
        let queries = [
            (NodeId(0), NodeId(143)),
            (NodeId(3), NodeId(140)),
            (NodeId(143), NodeId(0)), // swapped cell pair: dedups away
            (NodeId(130), NodeId(10)),
        ];
        let batch = hints.batch_hyper_keys(&queries);
        let mut union: BTreeSet<u64> = BTreeSet::new();
        for &(s, t) in &queries {
            union.extend(hints.hyper_keys(s, t));
        }
        assert_eq!(batch, union.into_iter().collect::<Vec<_>>());
        assert!(batch.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");

        let dirs = hints.batch_dir_keys(&queries);
        let mut dir_union: BTreeSet<u64> = BTreeSet::new();
        for &(s, t) in &queries {
            dir_union.insert(hints.partition.cell_of(s) as u64);
            dir_union.insert(hints.partition.cell_of(t) as u64);
        }
        assert_eq!(dirs, dir_union.into_iter().collect::<Vec<_>>());
    }
}
