//! FULL — fully materialized distances (Section IV-B).
//!
//! The owner materializes `dist(vᵢ, vⱼ)` for **every** pair of nodes
//! and certifies them in a distance Merkle tree; the provider's ΓS is a
//! single tuple `⟨vs.id, vt.id, dist⟩` with its Merkle path.
//!
//! ## Realization
//!
//! The paper prescribes Floyd–Warshall (O(|V|³) time, O(|V|²) space)
//! and a Merkle B-tree over all |V|² tuples. Materializing |V|²
//! digests is memory-prohibitive beyond ~10⁴ nodes, so the tree here is
//! the equivalent **two-level** structure: one *row tree* per source
//! node over its |V| distance tuples, and a *top tree* over the row
//! roots. Only the row roots are retained (O(|V|) memory); the provider
//! regenerates a row on demand (one Dijkstra) when assembling a proof.
//! Construction still performs the full all-pairs computation and hashes
//! all |V|² tuples — exactly the cost the paper's Figures 8c/9b measure
//! — and proof size stays O(f·log|V|). See `DESIGN.md` §4.

use crate::ads::{AdsMeta, AdsTag, SignedRoot};
use crate::batch::{AuxContext, BatchAux, BatchVerifyState};
use crate::enc::{Decoder, Encoder};
use crate::error::{ProviderError, VerifyError};
use crate::methods::{AuthMethod, MethodConfig, MethodParams, TupleMap, VerifyCtx};
use crate::owner::{MethodHints, ProviderPackage, SetupConfig};
use crate::proof::SpProof;
use crate::snapshot::{self, SnapshotError};
use crate::tuple::ExtendedTuple;
use spnet_crypto::digest::{Digest, DIGEST_LEN};
use spnet_crypto::mbtree::{composite_key, split_key, KeyedEntry};
use spnet_crypto::merkle::{MerkleProof, MerkleTree};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::algo::floyd_warshall;
use spnet_graph::algo::floyd_warshall::DistanceMatrix;
use spnet_graph::path::close;
use spnet_graph::search::with_thread_workspace;
use spnet_graph::{Graph, NodeId, Path};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// The FULL method's authenticated distance structure.
#[derive(Debug, Clone)]
pub struct DistanceAds {
    fanout: usize,
    /// Root of each source's row tree.
    row_roots: Vec<Digest>,
    /// Tree over the row roots.
    top: MerkleTree,
    /// Floyd–Warshall mode retains the full matrix (the paper's FULL
    /// stores all O(|V|²) distances at the provider; it is only
    /// feasible for small networks anyway). Dijkstra mode regenerates
    /// rows on demand instead, keeping memory O(|V|).
    matrix: Option<DistanceMatrix>,
    /// Provider-side LRU over hot sources: proving a row costs one
    /// Dijkstra (Dijkstra mode) plus |V| leaf hashes either way, so
    /// repeated-source batches reuse the regenerated row tree instead
    /// of rebuilding it per batch.
    row_cache: RowCache,
}

/// One cached source row: its distance values and rebuilt row tree.
#[derive(Debug)]
struct RowEntry {
    values: Vec<f64>,
    tree: MerkleTree,
}

/// A small thread-safe LRU (MRU-front vector; capacities this small
/// make linear scans cheaper than any linked structure). The cache is
/// pure memoization of a deterministic function of the immutable
/// graph, so cloning a [`DistanceAds`] starts a fresh empty cache and
/// hits/misses never change proof bytes.
struct RowCache {
    capacity: usize,
    inner: Mutex<Vec<(u32, Arc<RowEntry>)>>,
}

/// Default number of hot source rows a provider retains.
const ROW_CACHE_CAPACITY: usize = 64;

impl RowCache {
    fn new(capacity: usize) -> Self {
        RowCache {
            capacity,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Looks up a source row, refreshing its recency on hit.
    fn get(&self, source: u32) -> Option<Arc<RowEntry>> {
        let mut inner = self.inner.lock().expect("row cache poisoned");
        let pos = inner.iter().position(|(s, _)| *s == source)?;
        let hit = inner.remove(pos);
        let entry = Arc::clone(&hit.1);
        inner.insert(0, hit);
        Some(entry)
    }

    /// Inserts a computed row, evicting the least recently used one
    /// beyond capacity. Racing inserts of the same source keep the
    /// first (both are identical by determinism).
    fn insert(&self, source: u32, entry: Arc<RowEntry>) {
        let mut inner = self.inner.lock().expect("row cache poisoned");
        if inner.iter().any(|(s, _)| *s == source) {
            return;
        }
        inner.insert(0, (source, entry));
        inner.truncate(self.capacity);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().expect("row cache poisoned").len()
    }
}

impl Clone for RowCache {
    fn clone(&self) -> Self {
        RowCache::new(self.capacity)
    }
}

impl std::fmt::Debug for RowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.inner.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "RowCache({len}/{})", self.capacity)
    }
}

/// Construction statistics (reported by the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullBuildStats {
    /// Number of materialized distance tuples (|V|²).
    pub tuples: u64,
    /// Wall-clock seconds of the all-pairs computation + hashing.
    pub seconds: f64,
}

impl DistanceAds {
    /// Builds the distance ADS.
    ///
    /// With `use_floyd_warshall` the all-pairs matrix is computed by the
    /// paper's O(|V|³) algorithm first; otherwise each row comes from
    /// one Dijkstra (identical output).
    pub fn build(g: &Graph, fanout: usize, use_floyd_warshall: bool) -> (Self, FullBuildStats) {
        let start = std::time::Instant::now();
        let n = g.num_nodes();
        assert!(n > 0, "empty graph");
        let fw = use_floyd_warshall.then(|| floyd_warshall::floyd_warshall(g));
        let row_roots = build_row_roots(g, fw.as_ref(), fanout);
        let top = MerkleTree::build(row_roots.clone(), fanout).expect("non-empty");
        let stats = FullBuildStats {
            tuples: (n as u64) * (n as u64),
            seconds: start.elapsed().as_secs_f64(),
        };
        (
            DistanceAds {
                fanout,
                row_roots,
                top,
                matrix: fw,
                row_cache: RowCache::new(ROW_CACHE_CAPACITY),
            },
            stats,
        )
    }

    /// The signed root digest.
    pub fn root(&self) -> Digest {
        self.top.root()
    }

    /// Signed-meta for this structure.
    pub fn meta(&self) -> AdsMeta {
        AdsMeta {
            tag: AdsTag::Distance,
            leaf_count: (self.row_roots.len() as u64) * (self.row_roots.len() as u64),
            fanout: self.fanout as u32,
            params: Vec::new(),
        }
    }

    /// Owner-side signing helper.
    pub fn sign(&self, keypair: &RsaKeyPair) -> SignedRoot {
        SignedRoot::sign(keypair, self.root(), self.meta())
    }

    /// Regenerates the materialized distance row of source `vs` (from
    /// the retained matrix in Floyd–Warshall mode, or one Dijkstra).
    fn row_values(&self, g: &Graph, vs: NodeId) -> Vec<f64> {
        match &self.matrix {
            Some(m) => m.row(vs.index()).to_vec(),
            None => with_thread_workspace(|ws| ws.sssp(g, vs).dist_vec()),
        }
    }

    /// Rebuilds the row tree of source `vs` from its values.
    fn row_tree(&self, vs: NodeId, row: &[f64]) -> MerkleTree {
        let leaves: Vec<Digest> = row
            .iter()
            .enumerate()
            .map(|(t, &d)| entry(vs.0, t as u32, d).digest())
            .collect();
        let tree = MerkleTree::build(leaves, self.fanout).expect("non-empty row");
        debug_assert_eq!(tree.root(), self.row_roots[vs.index()]);
        tree
    }

    /// The (values, row tree) of source `vs`, through the hot-source
    /// LRU: a repeated source costs a cache lookup instead of a
    /// Dijkstra + |V| leaf hashes.
    fn cached_row(&self, g: &Graph, vs: NodeId) -> Arc<RowEntry> {
        if let Some(hit) = self.row_cache.get(vs.0) {
            return hit;
        }
        let values = self.row_values(g, vs);
        let tree = self.row_tree(vs, &values);
        let fresh = Arc::new(RowEntry { values, tree });
        self.row_cache.insert(vs.0, Arc::clone(&fresh));
        fresh
    }

    /// Provider side: assembles the distance proof for `(vs, vt)`.
    ///
    /// Regenerates row `vs` with one Dijkstra (the materialized values
    /// are a deterministic function of the owner's graph, which the
    /// provider holds) unless the hot-source LRU still holds it.
    pub fn prove(&self, g: &Graph, vs: NodeId, vt: NodeId) -> FullDistanceProof {
        let row = self.cached_row(g, vs);
        let row_proof = row
            .tree
            .prove([vt.index()].into_iter().collect())
            .expect("row proof");
        let top_proof = self
            .top
            .prove([vs.index()].into_iter().collect())
            .expect("top proof");
        FullDistanceProof {
            entry: entry(vs.0, vt.0, row.values[vt.index()]),
            row_index: vt.0,
            row_proof,
            top_index: vs.0,
            top_proof,
        }
    }

    /// Provider side, batched: one pooled proof for all `pairs`.
    ///
    /// Queries are grouped by source row, so a row is regenerated (one
    /// Dijkstra + |V| leaf hashes) **once per distinct source** no
    /// matter how many queries read it, every row proof is a single
    /// multi-target Merkle cover, and one shared top-tree cover spans
    /// all touched rows. Row assembly fans out over threads via the
    /// crate's `par::map_jobs` under the default `parallel` feature.
    pub fn prove_batch(&self, g: &Graph, pairs: &[(NodeId, NodeId)]) -> FullBatchProof {
        let mut by_source: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for &(vs, vt) in pairs {
            by_source.entry(vs.0).or_default().insert(vt.0);
        }
        let groups: Vec<(u32, Vec<u32>)> = by_source
            .into_iter()
            .map(|(s, ts)| (s, ts.into_iter().collect()))
            .collect();
        let rows = crate::par::map_jobs(&groups, |(s, targets)| {
            let vs = NodeId(*s);
            let row = self.cached_row(g, vs);
            let row_proof = row
                .tree
                .prove(targets.iter().map(|&t| t as usize).collect())
                .expect("row proof");
            FullRowProof {
                source: *s,
                entries: targets
                    .iter()
                    .map(|&t| entry(*s, t, row.values[t as usize]))
                    .collect(),
                row_proof,
            }
        });
        let top_proof = self
            .top
            .prove(rows.iter().map(|r| r.source as usize).collect())
            .expect("top proof");
        FullBatchProof { rows, top_proof }
    }

    /// Owner-side incremental repair: recomputes the given source rows
    /// on the (already-patched) graph, patches their row roots and
    /// top-tree leaf paths in place, and drops the hot-row cache
    /// (cached rows of dirty sources are stale). In Floyd–Warshall
    /// mode the retained matrix rows are overwritten with the
    /// recomputed values so row digests stay consistent with what the
    /// provider re-serves. Returns the number of rows repaired.
    pub(crate) fn repair_rows(
        &mut self,
        g: &Graph,
        rows: &[u32],
    ) -> Result<usize, crate::update::UpdateError> {
        // A snapshot-loaded (File backend) top tree is paged and
        // read-only; the resident row roots rebuild it dense so the
        // leaf updates below can apply.
        if self.top.dense_levels().is_none() {
            self.top = MerkleTree::build(self.row_roots.clone(), self.fanout)
                .map_err(|e| crate::update::UpdateError::Rebuild(e.to_string()))?;
        }
        let fresh: Vec<(u32, Vec<f64>)> = crate::par::map_jobs(rows, |&s| {
            let row = with_thread_workspace(|ws| ws.sssp(g, NodeId(s)).dist_vec());
            (s, row)
        });
        for (s, row) in fresh {
            if let Some(m) = &mut self.matrix {
                m.set_row(s as usize, &row);
            }
            let root = row_root(s, &row, self.fanout);
            self.row_roots[s as usize] = root;
            self.top
                .update_leaf(s as usize, root)
                .map_err(|e| crate::update::UpdateError::Rebuild(e.to_string()))?;
        }
        self.row_cache = RowCache::new(ROW_CACHE_CAPACITY);
        Ok(rows.len())
    }
}

/// Builds the Merkle root of one source row.
fn row_root(s: u32, row: &[f64], fanout: usize) -> Digest {
    let leaves: Vec<Digest> = row
        .iter()
        .enumerate()
        .map(|(t, &d)| entry(s, t as u32, d).digest())
        .collect();
    MerkleTree::build(leaves, fanout)
        .expect("non-empty row")
        .root()
}

/// One Merkle row-root per source node.
///
/// The all-pairs computation + |V|² tuple hashing is the paper's FULL
/// construction cost (Figures 8c/9b); with the `parallel` feature the
/// sources fan out over threads, each reusing its thread's search
/// workspace. Rows are independent deterministic functions of the
/// graph, so the roots are identical either way.
fn build_row_roots(g: &Graph, fw: Option<&DistanceMatrix>, fanout: usize) -> Vec<Digest> {
    let sources: Vec<usize> = (0..g.num_nodes()).collect();
    crate::par::map_jobs(&sources, |&s| match fw {
        Some(m) => row_root(s as u32, m.row(s), fanout),
        None => with_thread_workspace(|ws| {
            let row = ws.sssp(g, NodeId(s as u32)).dist_vec();
            row_root(s as u32, &row, fanout)
        }),
    })
}

fn entry(s: u32, t: u32, d: f64) -> KeyedEntry {
    KeyedEntry {
        key: composite_key(s, t),
        value: d,
    }
}

/// The FULL distance proof: one materialized tuple plus its two-level
/// Merkle path.
#[derive(Debug, Clone, PartialEq)]
pub struct FullDistanceProof {
    /// The tuple `⟨vs.id, vt.id, dist(vs, vt)⟩`.
    pub entry: KeyedEntry,
    /// Leaf index of `vt` in the row tree.
    pub row_index: u32,
    /// Row-tree cover digests.
    pub row_proof: MerkleProof,
    /// Leaf index of `vs` in the top tree.
    pub top_index: u32,
    /// Top-tree cover digests.
    pub top_proof: MerkleProof,
}

impl FullDistanceProof {
    /// Number of digest items (the paper's S-prf count for FULL).
    pub fn num_items(&self) -> usize {
        1 + self.row_proof.num_items() + self.top_proof.num_items()
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + 4 + 4 + self.row_proof.size_bytes() + self.top_proof.size_bytes()
    }

    /// Client side: checks the proof against the signed distance root
    /// and returns the authenticated `dist(vs, vt)`.
    pub fn verify(&self, vs: NodeId, vt: NodeId, signed_root: &Digest) -> Result<f64, VerifyError> {
        if self.entry.key != composite_key(vs.0, vt.0) {
            return Err(VerifyError::MissingDistanceKey { a: vs, b: vt });
        }
        let row_root = self
            .row_proof
            .reconstruct_root(&[(self.row_index as usize, self.entry.digest())])
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        let top_root = self
            .top_proof
            .reconstruct_root(&[(self.top_index as usize, row_root)])
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if top_root != *signed_root {
            return Err(VerifyError::RootMismatch);
        }
        Ok(self.entry.value)
    }
}

/// One source row's slice of a batched FULL proof: the distance
/// entries of every target queried from that source plus a single
/// multi-leaf Merkle cover over the row tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FullRowProof {
    /// Source node id — also the row's leaf index in the top tree.
    pub source: u32,
    /// Distance entries for the queried targets, ascending by target
    /// id. Row-tree leaf positions are the target ids carried in the
    /// composite keys, so positions need not ship separately.
    pub entries: Vec<KeyedEntry>,
    /// Row-tree cover digests for all entry positions at once.
    pub row_proof: MerkleProof,
}

/// FULL's batched ΓS: per-source row proofs sharing one top-tree cover
/// (and, at the batch layer, one signed distance root for all of them).
#[derive(Debug, Clone, PartialEq)]
pub struct FullBatchProof {
    /// Row proofs, strictly ascending by source id.
    pub rows: Vec<FullRowProof>,
    /// Top-tree cover digests spanning every touched row root.
    pub top_proof: MerkleProof,
}

impl FullBatchProof {
    /// Number of digest/entry items (the batched S-prf count).
    pub fn num_items(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.entries.len() + r.row_proof.num_items())
            .sum::<usize>()
            + self.top_proof.num_items()
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| 4 + r.entries.len() * 16 + r.row_proof.size_bytes())
            .sum::<usize>()
            + self.top_proof.size_bytes()
    }

    /// Client side: authenticates every carried entry against the
    /// signed distance root **once**, returning the proven distances
    /// keyed by `composite_key(vs, vt)`.
    ///
    /// Entry digests bind `(source, target, dist)`, row positions are
    /// derived from the keys, and the reconstructed two-level root must
    /// equal `signed_root` — so a provider can neither move, swap nor
    /// alter any pooled entry without detection.
    pub fn verify(&self, signed_root: &Digest) -> Result<HashMap<u64, f64>, VerifyError> {
        let mut top_leaves: Vec<(usize, Digest)> = Vec::with_capacity(self.rows.len());
        let mut proven: HashMap<u64, f64> = HashMap::new();
        let mut last_source: Option<u32> = None;
        for row in &self.rows {
            if last_source.is_some_and(|p| p >= row.source) {
                return Err(VerifyError::MalformedIntegrityProof(
                    "batch row sources not strictly ascending".into(),
                ));
            }
            last_source = Some(row.source);
            let mut leaves = Vec::with_capacity(row.entries.len());
            for e in &row.entries {
                let (s, t) = split_key(e.key);
                if s != row.source {
                    return Err(VerifyError::MalformedIntegrityProof(
                        "batch row entry keyed outside its row".into(),
                    ));
                }
                leaves.push((t as usize, e.digest()));
                proven.insert(e.key, e.value);
            }
            let row_root = row
                .row_proof
                .reconstruct_root(&leaves)
                .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
            top_leaves.push((row.source as usize, row_root));
        }
        let top_root = self
            .top_proof
            .reconstruct_root(&top_leaves)
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if top_root != *signed_root {
            return Err(VerifyError::RootMismatch);
        }
        Ok(proven)
    }
}

/// FULL's [`AuthMethod`] implementation: the all-pairs distance ADS as
/// hints, a single authenticated `⟨vs, vt, dist⟩` tuple (plus the
/// reported path's tuples) as ΓS, two Merkle path reconstructions as
/// verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullMethod;

impl FullMethod {
    /// The FULL hints out of a provider package.
    fn hints(pkg: &ProviderPackage) -> (&DistanceAds, &SignedRoot) {
        match &pkg.hints {
            MethodHints::Full {
                ads, signed_root, ..
            } => (ads, signed_root),
            _ => unreachable!("FullMethod dispatched with non-FULL hints"),
        }
    }
}

impl AuthMethod for FullMethod {
    fn name(&self) -> &'static str {
        "FULL"
    }

    fn params_code(&self) -> u8 {
        2
    }

    fn build_hints(
        &self,
        g: &Graph,
        config: &MethodConfig,
        setup: &SetupConfig,
        keypair: &RsaKeyPair,
    ) -> (MethodHints, MethodParams) {
        let MethodConfig::Full { use_floyd_warshall } = config else {
            unreachable!("FullMethod dispatched with non-FULL config");
        };
        let (ads, stats) = DistanceAds::build(g, setup.fanout, *use_floyd_warshall);
        let signed_root = ads.sign(keypair);
        (
            MethodHints::Full {
                ads,
                signed_root,
                stats,
            },
            MethodParams::Full,
        )
    }

    fn make_tuple(&self, g: &Graph, v: NodeId, _hints: &MethodHints) -> ExtendedTuple {
        ExtendedTuple::base(g, v)
    }

    fn wants_change_dists(&self) -> bool {
        true
    }

    /// FULL repair: a materialized distance `d(s, t)` can only change
    /// if a shortest tree rooted at `s` routes through the updated
    /// edge, which requires `|d(s,u) − d(s,v)|` to reach the edge
    /// weight (before or after the change). Rows failing that test on
    /// both graphs are untouched — their roots, matrix bits and proof
    /// bytes stay identical to a fresh build. One re-sign total.
    fn repair_hints(
        &self,
        g: &Graph,
        change: &crate::methods::EdgeChange,
        hints: &mut MethodHints,
        keypair: &RsaKeyPair,
    ) -> Result<crate::methods::DirtySet, crate::update::UpdateError> {
        let MethodHints::Full {
            ads, signed_root, ..
        } = hints
        else {
            return Err(crate::update::UpdateError::Rebuild(
                "FULL repair dispatched with non-FULL hints".into(),
            ));
        };
        let old = change.old_dists.as_ref().ok_or_else(|| {
            crate::update::UpdateError::Rebuild("missing pre-update endpoint distances".into())
        })?;
        let du_new = with_thread_workspace(|ws| ws.sssp(g, change.u).dist_vec());
        let dv_new = with_thread_workspace(|ws| ws.sssp(g, change.v).dist_vec());
        let dirty_rows: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&s| {
                let i = s as usize;
                crate::update::edge_is_tight(old.from_u[i], old.from_v[i], change.old_weight)
                    || crate::update::edge_is_tight(du_new[i], dv_new[i], change.new_weight)
            })
            .collect();
        let repaired = ads.repair_rows(g, &dirty_rows)?;
        *signed_root = ads.sign(keypair);
        Ok(crate::methods::DirtySet {
            tuples: Vec::new(),
            aux_repaired: repaired,
            aux_resigned: 1,
            new_params: None,
        })
    }

    fn snapshot_hints(
        &self,
        hints: &MethodHints,
        w: &mut spnet_store::SnapshotWriter,
    ) -> Result<(), SnapshotError> {
        let MethodHints::Full {
            ads,
            signed_root,
            stats,
        } = hints
        else {
            return Err(SnapshotError::Corrupt("FULL hints expected"));
        };
        w.blob(
            snapshot::SEC_FULL_SIGNED,
            &snapshot::encode_signed_root(signed_root),
        )?;
        let mut e = Encoder::new();
        e.put_u32(ads.fanout as u32);
        e.put_u64(ads.row_roots.len() as u64);
        e.put_u64(stats.tuples);
        e.put_f64(stats.seconds);
        e.put_bool(ads.matrix.is_some());
        w.blob(snapshot::SEC_FULL_CONFIG, e.bytes())?;
        w.paged(
            snapshot::SEC_FULL_ROWROOTS,
            &snapshot::digests_to_bytes(&ads.row_roots),
            snapshot::PAGE_DIGESTS * DIGEST_LEN,
        )?;
        // Floyd–Warshall mode must persist the matrix raw: FW and
        // Dijkstra sum in different orders, and row digests hash the
        // exact f64 bit patterns.
        if let Some(m) = &ads.matrix {
            let raw: Vec<u8> = m.raw().iter().flat_map(|d| d.to_le_bytes()).collect();
            w.paged(snapshot::SEC_FULL_MATRIX, &raw, 4096)?;
        }
        Ok(())
    }

    fn load_hints(
        &self,
        g: &Graph,
        store: &spnet_store::NodeStore,
    ) -> Result<MethodHints, SnapshotError> {
        let signed_root = snapshot::decode_signed_root(&store.blob(snapshot::SEC_FULL_SIGNED)?)?;
        let cfg = store.blob(snapshot::SEC_FULL_CONFIG)?;
        let mut d = Decoder::new(&cfg);
        let fanout = d.take_u32()? as usize;
        let n = d.take_u64()? as usize;
        let tuples = d.take_u64()?;
        let seconds = d.take_f64()?;
        let has_matrix = d.take_bool()?;
        d.finish()?;
        if n != g.num_nodes() || fanout < 2 {
            return Err(SnapshotError::Corrupt("FULL geometry mismatch"));
        }
        let row_roots =
            snapshot::digests_from_bytes(&store.paged_all(snapshot::SEC_FULL_ROWROOTS)?)?;
        if row_roots.len() != n {
            return Err(SnapshotError::Corrupt("FULL row-root count mismatch"));
        }
        let matrix = if has_matrix {
            let raw = store.paged_all(snapshot::SEC_FULL_MATRIX)?;
            if raw.len() != n * n * 8 {
                return Err(SnapshotError::Corrupt("FULL matrix size mismatch"));
            }
            let data: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                .collect();
            Some(
                DistanceMatrix::from_raw(n, data)
                    .ok_or(SnapshotError::Corrupt("FULL matrix shape"))?,
            )
        } else {
            None
        };
        // The top tree is O(|V|) digests — rebuilding it from the
        // persisted row roots is cheap on both backends and reproduces
        // the owner's tree bit-identically.
        let top = MerkleTree::build(row_roots.clone(), fanout)?;
        let ads = DistanceAds {
            fanout,
            row_roots,
            top,
            matrix,
            row_cache: RowCache::new(ROW_CACHE_CAPACITY),
        };
        if signed_root.root != ads.root() || signed_root.meta != ads.meta() {
            return Err(SnapshotError::Corrupt(
                "FULL signed root does not match loaded distance tree",
            ));
        }
        Ok(MethodHints::Full {
            ads,
            signed_root,
            stats: FullBuildStats { tuples, seconds },
        })
    }

    fn prove(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError> {
        let (dads, signed_root) = Self::hints(pkg);
        let full = dads.prove(&pkg.graph, vs, vt);
        let path_tuples: Vec<Arc<ExtendedTuple>> = path
            .nodes
            .iter()
            .map(|&v| pkg.ads.tuple_shared(v))
            .collect();
        Ok((
            SpProof::Distance {
                full,
                signed_root: signed_root.clone(),
                path_tuples,
            },
            path.nodes.clone(),
        ))
    }

    fn batch_members(
        &self,
        _pkg: &ProviderPackage,
        _vs: NodeId,
        _vt: NodeId,
        path: &Path,
    ) -> Vec<NodeId> {
        // FULL proves the optimum from the distance tree; the pool only
        // authenticates the reported path.
        path.nodes.clone()
    }

    fn prove_batch(
        &self,
        pkg: &ProviderPackage,
        queries: &[(NodeId, NodeId)],
    ) -> Result<BatchAux, ProviderError> {
        let (dads, signed_root) = Self::hints(pkg);
        Ok(BatchAux::Full {
            proof: dads.prove_batch(&pkg.graph, queries),
            signed_root: signed_root.clone(),
        })
    }

    fn matches_proof(&self, sp: &SpProof) -> bool {
        matches!(sp, SpProof::Distance { .. })
    }

    fn verify(
        &self,
        ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        sp: &SpProof,
        _tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        let SpProof::Distance {
            full, signed_root, ..
        } = sp
        else {
            return Err(VerifyError::MetaMismatch(
                "proof shape does not match method",
            ));
        };
        // A root pinned at session open was RSA-verified there; byte
        // equality replaces the signature check.
        if !ctx.trusts(signed_root) && !signed_root.verify(ctx.pk) {
            return Err(VerifyError::BadSignature);
        }
        full.verify(vs, vt, &signed_root.root)
    }

    fn verify_batch_aux<'a>(
        &self,
        ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        aux: &'a BatchAux,
    ) -> Result<AuxContext<'a>, VerifyError> {
        match aux {
            BatchAux::Full { proof, signed_root } => {
                if !ctx.trusts(signed_root) && !signed_root.verify(ctx.pk) {
                    return Err(VerifyError::BadSignature);
                }
                Ok(AuxContext::Full(proof.verify(&signed_root.root)?))
            }
            _ => Err(VerifyError::MetaMismatch(
                "batch proof shape does not match signed method",
            )),
        }
    }

    fn verify_batch_query(
        &self,
        _params: &MethodParams,
        ctx: &AuxContext<'_>,
        _state: &BatchVerifyState,
        _tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError> {
        let AuxContext::Full(dists) = ctx else {
            unreachable!("verify_batch_aux checked the pairing");
        };
        dists
            .get(&composite_key(vs.0, vt.0))
            .copied()
            .ok_or(VerifyError::MissingDistanceKey { a: vs, b: vt })
    }

    fn prove_range_aux(
        &self,
        pkg: &ProviderPackage,
        source: NodeId,
        members: &[(NodeId, f64)],
    ) -> Result<BatchAux, ProviderError> {
        // One pooled row proof attests every member distance under the
        // signed distance tree — all members share the source's row, so
        // the whole attestation is one multi-target row cover.
        let pairs: Vec<(NodeId, NodeId)> = members.iter().map(|&(v, _)| (source, v)).collect();
        self.prove_batch(pkg, &pairs)
    }

    fn verify_range_aux(
        &self,
        ctx: &VerifyCtx<'_>,
        params: &MethodParams,
        aux: &BatchAux,
        source: NodeId,
        members: &[(NodeId, f64)],
    ) -> Result<(), VerifyError> {
        // Rejects a Subgraph downgrade outright (the signed method is
        // FULL, so the aux must carry the distance-tree attestation).
        let AuxContext::Full(dists) = self.verify_batch_aux(ctx, params, aux)? else {
            unreachable!("FULL verify_batch_aux yields a Full context");
        };
        for &(v, claimed) in members {
            let proven = dists
                .get(&composite_key(source.0, v.0))
                .copied()
                .ok_or(VerifyError::MissingDistanceKey { a: source, b: v })?;
            if !close(claimed, proven) {
                return Err(VerifyError::RangeDistanceMismatch {
                    node: v,
                    claimed,
                    recomputed: proven,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn build(seed: u64, fw: bool) -> (Graph, DistanceAds) {
        let g = grid_network(7, 7, 1.15, seed);
        let (ads, stats) = DistanceAds::build(&g, 4, fw);
        assert_eq!(stats.tuples, 49 * 49);
        (g, ads)
    }

    #[test]
    fn floyd_warshall_and_dijkstra_builds_agree_semantically() {
        // Summation order differs between the two algorithms, so the
        // hashed f64 bit patterns (hence roots) may differ; the proven
        // distances must still agree within float tolerance and each
        // proof must verify against its own signed root.
        let (g, a1) = build(400, true);
        let (_, a2) = build(400, false);
        for (s, t) in [(0u32, 48u32), (5, 17)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let d1 = a1.prove(&g, s, t).verify(s, t, &a1.root()).unwrap();
            let d2 = a2.prove(&g, s, t).verify(s, t, &a2.root()).unwrap();
            assert!((d1 - d2).abs() <= 1e-9 * d1.max(1.0));
        }
    }

    #[test]
    fn prove_verify_round_trip() {
        let (g, ads) = build(401, false);
        let root = ads.root();
        for (s, t) in [(0u32, 48u32), (3, 40), (48, 0), (7, 7)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let proof = ads.prove(&g, s, t);
            let d = proof.verify(s, t, &root).unwrap();
            let expected = if s == t {
                0.0
            } else {
                dijkstra_path(&g, s, t).unwrap().distance
            };
            assert!((d - expected).abs() < 1e-9, "({s},{t})");
        }
    }

    #[test]
    fn forged_distance_detected() {
        let (g, ads) = build(402, false);
        let (s, t) = (NodeId(0), NodeId(30));
        let mut proof = ads.prove(&g, s, t);
        proof.entry.value *= 2.0;
        assert_eq!(
            proof.verify(s, t, &ads.root()),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn wrong_pair_detected() {
        let (g, ads) = build(403, false);
        let proof = ads.prove(&g, NodeId(0), NodeId(30));
        // Presenting the proof for a different query pair.
        assert!(matches!(
            proof.verify(NodeId(0), NodeId(31), &ads.root()),
            Err(VerifyError::MissingDistanceKey { .. })
        ));
    }

    #[test]
    fn moved_indices_detected() {
        let (g, ads) = build(404, false);
        let (s, t) = (NodeId(2), NodeId(9));
        let mut proof = ads.prove(&g, s, t);
        proof.row_index += 1;
        let r = proof.verify(s, t, &ads.root());
        assert!(
            r == Err(VerifyError::RootMismatch)
                || matches!(r, Err(VerifyError::MalformedIntegrityProof(_)))
        );
    }

    #[test]
    fn proof_size_logarithmic() {
        let g = grid_network(16, 16, 1.1, 405);
        let (ads, _) = DistanceAds::build(&g, 4, false);
        let proof = ads.prove(&g, NodeId(0), NodeId(255));
        // Two trees of 256 leaves at fanout 4: 4 levels each, ≤ 3 cover
        // digests per level.
        assert!(proof.num_items() <= 1 + 2 * 4 * 3 + 2);
        assert!(proof.size_bytes() < 1500, "{}", proof.size_bytes());
    }

    #[test]
    fn build_stats_sane() {
        let g = grid_network(5, 5, 1.1, 406);
        let (_, stats) = DistanceAds::build(&g, 2, true);
        assert_eq!(stats.tuples, 625);
        assert!(stats.seconds >= 0.0);
    }

    const BATCH_PAIRS: [(u32, u32); 5] = [(0, 48), (0, 30), (3, 40), (48, 0), (7, 7)];

    fn batch_pairs() -> Vec<(NodeId, NodeId)> {
        BATCH_PAIRS
            .iter()
            .map(|&(s, t)| (NodeId(s), NodeId(t)))
            .collect()
    }

    #[test]
    fn batch_proof_matches_single_proofs() {
        let (g, ads) = build(407, false);
        let pairs = batch_pairs();
        let batch = ads.prove_batch(&g, &pairs);
        let proven = batch.verify(&ads.root()).unwrap();
        for &(s, t) in &pairs {
            let single = ads.prove(&g, s, t).verify(s, t, &ads.root()).unwrap();
            let batched = proven[&composite_key(s.0, t.0)];
            assert_eq!(batched.to_bits(), single.to_bits(), "({s},{t})");
        }
        // Queries sharing a source share one row proof.
        assert_eq!(batch.rows.len(), 4, "4 distinct sources");
    }

    #[test]
    fn batch_proof_smaller_than_single_sum() {
        let (g, ads) = build(408, false);
        let pairs = batch_pairs();
        let batch = ads.prove_batch(&g, &pairs);
        let singles: usize = pairs
            .iter()
            .map(|&(s, t)| ads.prove(&g, s, t).size_bytes())
            .sum();
        assert!(
            batch.size_bytes() < singles,
            "batch {} ≥ single sum {}",
            batch.size_bytes(),
            singles
        );
    }

    #[test]
    fn batch_tampered_entry_detected() {
        let (g, ads) = build(409, false);
        let pairs = batch_pairs();
        let honest = ads.prove_batch(&g, &pairs);
        for row in 0..honest.rows.len() {
            let mut evil = honest.clone();
            evil.rows[row].entries[0].value += 1.0;
            assert!(
                matches!(evil.verify(&ads.root()), Err(VerifyError::RootMismatch)),
                "row {row}"
            );
        }
    }

    #[test]
    fn batch_swapped_key_detected() {
        let (g, ads) = build(410, false);
        let pairs = batch_pairs();
        let honest = ads.prove_batch(&g, &pairs);
        // Re-keying an entry to a different target moves its claimed
        // leaf position: the reconstruction must fail or mismatch.
        let mut evil = honest.clone();
        let e = &mut evil.rows[0].entries[0];
        e.key = composite_key(split_key(e.key).0, split_key(e.key).1 + 1);
        assert!(evil.verify(&ads.root()).is_err());
        // Re-keying it to a different *row* is rejected outright.
        let mut evil2 = honest;
        evil2.rows[0].entries[0].key = composite_key(u32::MAX, 0);
        assert!(matches!(
            evil2.verify(&ads.root()),
            Err(VerifyError::MalformedIntegrityProof(_))
        ));
    }

    #[test]
    fn row_cache_reuses_hot_sources_across_proofs() {
        let (g, ads) = build(412, false);
        assert_eq!(ads.row_cache.len(), 0);
        let p1 = ads.prove(&g, NodeId(0), NodeId(30));
        assert_eq!(ads.row_cache.len(), 1, "first proof fills the cache");
        let p2 = ads.prove(&g, NodeId(0), NodeId(31));
        assert_eq!(ads.row_cache.len(), 1, "same source hits, not refills");
        assert!(p1.verify(NodeId(0), NodeId(30), &ads.root()).is_ok());
        assert!(p2.verify(NodeId(0), NodeId(31), &ads.root()).is_ok());
        // Batches reuse rows across calls and stay byte-identical.
        let pairs = batch_pairs();
        let b1 = ads.prove_batch(&g, &pairs);
        let b2 = ads.prove_batch(&g, &pairs);
        assert_eq!(b1, b2, "cached rows must not change proof bytes");
        assert!(b1.verify(&ads.root()).is_ok());
        // A clone starts cold (memoization is per-instance).
        assert_eq!(ads.clone().row_cache.len(), 0);
    }

    #[test]
    fn row_cache_evicts_least_recently_used() {
        let mk = |n: u32| {
            Arc::new(RowEntry {
                values: vec![n as f64],
                tree: MerkleTree::build(vec![Digest::ZERO], 2).unwrap(),
            })
        };
        let rc = RowCache::new(2);
        rc.insert(1, mk(1));
        rc.insert(2, mk(2));
        assert!(rc.get(1).is_some()); // refresh 1 → LRU is 2
        rc.insert(3, mk(3));
        assert!(rc.get(2).is_none(), "LRU entry evicted");
        assert!(rc.get(1).is_some() && rc.get(3).is_some());
        assert_eq!(rc.len(), 2);
    }

    #[test]
    fn batch_unsorted_rows_rejected() {
        let (g, ads) = build(411, false);
        let pairs = batch_pairs();
        let mut evil = ads.prove_batch(&g, &pairs);
        assert!(evil.rows.len() >= 2);
        evil.rows.swap(0, 1);
        assert!(matches!(
            evil.verify(&ads.root()),
            Err(VerifyError::MalformedIntegrityProof(_))
        ));
    }
}
