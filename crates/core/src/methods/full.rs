//! FULL — fully materialized distances (Section IV-B).
//!
//! The owner materializes `dist(vᵢ, vⱼ)` for **every** pair of nodes
//! and certifies them in a distance Merkle tree; the provider's ΓS is a
//! single tuple `⟨vs.id, vt.id, dist⟩` with its Merkle path.
//!
//! ## Realization
//!
//! The paper prescribes Floyd–Warshall (O(|V|³) time, O(|V|²) space)
//! and a Merkle B-tree over all |V|² tuples. Materializing |V|²
//! digests is memory-prohibitive beyond ~10⁴ nodes, so the tree here is
//! the equivalent **two-level** structure: one *row tree* per source
//! node over its |V| distance tuples, and a *top tree* over the row
//! roots. Only the row roots are retained (O(|V|) memory); the provider
//! regenerates a row on demand (one Dijkstra) when assembling a proof.
//! Construction still performs the full all-pairs computation and hashes
//! all |V|² tuples — exactly the cost the paper's Figures 8c/9b measure
//! — and proof size stays O(f·log|V|). See `DESIGN.md` §4.

use crate::ads::{AdsMeta, AdsTag, SignedRoot};
use crate::error::VerifyError;
use spnet_crypto::digest::Digest;
use spnet_crypto::mbtree::{composite_key, KeyedEntry};
use spnet_crypto::merkle::{MerkleProof, MerkleTree};
use spnet_crypto::rsa::RsaKeyPair;
use spnet_graph::algo::floyd_warshall;
use spnet_graph::algo::floyd_warshall::DistanceMatrix;
use spnet_graph::search::with_thread_workspace;
use spnet_graph::{Graph, NodeId};

/// The FULL method's authenticated distance structure.
#[derive(Debug, Clone)]
pub struct DistanceAds {
    fanout: usize,
    /// Root of each source's row tree.
    row_roots: Vec<Digest>,
    /// Tree over the row roots.
    top: MerkleTree,
    /// Floyd–Warshall mode retains the full matrix (the paper's FULL
    /// stores all O(|V|²) distances at the provider; it is only
    /// feasible for small networks anyway). Dijkstra mode regenerates
    /// rows on demand instead, keeping memory O(|V|).
    matrix: Option<DistanceMatrix>,
}

/// Construction statistics (reported by the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullBuildStats {
    /// Number of materialized distance tuples (|V|²).
    pub tuples: u64,
    /// Wall-clock seconds of the all-pairs computation + hashing.
    pub seconds: f64,
}

impl DistanceAds {
    /// Builds the distance ADS.
    ///
    /// With `use_floyd_warshall` the all-pairs matrix is computed by the
    /// paper's O(|V|³) algorithm first; otherwise each row comes from
    /// one Dijkstra (identical output).
    pub fn build(g: &Graph, fanout: usize, use_floyd_warshall: bool) -> (Self, FullBuildStats) {
        let start = std::time::Instant::now();
        let n = g.num_nodes();
        assert!(n > 0, "empty graph");
        let fw = use_floyd_warshall.then(|| floyd_warshall::floyd_warshall(g));
        let row_roots = build_row_roots(g, fw.as_ref(), fanout);
        let top = MerkleTree::build(row_roots.clone(), fanout).expect("non-empty");
        let stats = FullBuildStats {
            tuples: (n as u64) * (n as u64),
            seconds: start.elapsed().as_secs_f64(),
        };
        (
            DistanceAds {
                fanout,
                row_roots,
                top,
                matrix: fw,
            },
            stats,
        )
    }

    /// The signed root digest.
    pub fn root(&self) -> Digest {
        self.top.root()
    }

    /// Signed-meta for this structure.
    pub fn meta(&self) -> AdsMeta {
        AdsMeta {
            tag: AdsTag::Distance,
            leaf_count: (self.row_roots.len() as u64) * (self.row_roots.len() as u64),
            fanout: self.fanout as u32,
            params: Vec::new(),
        }
    }

    /// Owner-side signing helper.
    pub fn sign(&self, keypair: &RsaKeyPair) -> SignedRoot {
        SignedRoot::sign(keypair, self.root(), self.meta())
    }

    /// Provider side: assembles the distance proof for `(vs, vt)`.
    ///
    /// Regenerates row `vs` with one Dijkstra (the materialized values
    /// are a deterministic function of the owner's graph, which the
    /// provider holds).
    pub fn prove(&self, g: &Graph, vs: NodeId, vt: NodeId) -> FullDistanceProof {
        let row: Vec<f64> = match &self.matrix {
            Some(m) => m.row(vs.index()).to_vec(),
            None => with_thread_workspace(|ws| ws.sssp(g, vs).dist_vec()),
        };
        let leaves: Vec<Digest> = row
            .iter()
            .enumerate()
            .map(|(t, &d)| entry(vs.0, t as u32, d).digest())
            .collect();
        let row_tree = MerkleTree::build(leaves, self.fanout).expect("non-empty row");
        debug_assert_eq!(row_tree.root(), self.row_roots[vs.index()]);
        let row_proof = row_tree
            .prove([vt.index()].into_iter().collect())
            .expect("row proof");
        let top_proof = self
            .top
            .prove([vs.index()].into_iter().collect())
            .expect("top proof");
        FullDistanceProof {
            entry: entry(vs.0, vt.0, row[vt.index()]),
            row_index: vt.0,
            row_proof,
            top_index: vs.0,
            top_proof,
        }
    }
}

/// Builds the Merkle root of one source row.
fn row_root(s: u32, row: &[f64], fanout: usize) -> Digest {
    let leaves: Vec<Digest> = row
        .iter()
        .enumerate()
        .map(|(t, &d)| entry(s, t as u32, d).digest())
        .collect();
    MerkleTree::build(leaves, fanout)
        .expect("non-empty row")
        .root()
}

/// One Merkle row-root per source node.
///
/// The all-pairs computation + |V|² tuple hashing is the paper's FULL
/// construction cost (Figures 8c/9b); with the `parallel` feature the
/// sources fan out over threads, each reusing its thread's search
/// workspace. Rows are independent deterministic functions of the
/// graph, so the roots are identical either way.
fn build_row_roots(g: &Graph, fw: Option<&DistanceMatrix>, fanout: usize) -> Vec<Digest> {
    let sources: Vec<usize> = (0..g.num_nodes()).collect();
    crate::par::map_jobs(&sources, |&s| match fw {
        Some(m) => row_root(s as u32, m.row(s), fanout),
        None => with_thread_workspace(|ws| {
            let row = ws.sssp(g, NodeId(s as u32)).dist_vec();
            row_root(s as u32, &row, fanout)
        }),
    })
}

fn entry(s: u32, t: u32, d: f64) -> KeyedEntry {
    KeyedEntry {
        key: composite_key(s, t),
        value: d,
    }
}

/// The FULL distance proof: one materialized tuple plus its two-level
/// Merkle path.
#[derive(Debug, Clone, PartialEq)]
pub struct FullDistanceProof {
    /// The tuple `⟨vs.id, vt.id, dist(vs, vt)⟩`.
    pub entry: KeyedEntry,
    /// Leaf index of `vt` in the row tree.
    pub row_index: u32,
    /// Row-tree cover digests.
    pub row_proof: MerkleProof,
    /// Leaf index of `vs` in the top tree.
    pub top_index: u32,
    /// Top-tree cover digests.
    pub top_proof: MerkleProof,
}

impl FullDistanceProof {
    /// Number of digest items (the paper's S-prf count for FULL).
    pub fn num_items(&self) -> usize {
        1 + self.row_proof.num_items() + self.top_proof.num_items()
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + 4 + 4 + self.row_proof.size_bytes() + self.top_proof.size_bytes()
    }

    /// Client side: checks the proof against the signed distance root
    /// and returns the authenticated `dist(vs, vt)`.
    pub fn verify(&self, vs: NodeId, vt: NodeId, signed_root: &Digest) -> Result<f64, VerifyError> {
        if self.entry.key != composite_key(vs.0, vt.0) {
            return Err(VerifyError::MissingDistanceKey { a: vs, b: vt });
        }
        let row_root = self
            .row_proof
            .reconstruct_root(&[(self.row_index as usize, self.entry.digest())])
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        let top_root = self
            .top_proof
            .reconstruct_root(&[(self.top_index as usize, row_root)])
            .map_err(|e| VerifyError::MalformedIntegrityProof(e.to_string()))?;
        if top_root != *signed_root {
            return Err(VerifyError::RootMismatch);
        }
        Ok(self.entry.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::algo::dijkstra_path;
    use spnet_graph::gen::grid_network;

    fn build(seed: u64, fw: bool) -> (Graph, DistanceAds) {
        let g = grid_network(7, 7, 1.15, seed);
        let (ads, stats) = DistanceAds::build(&g, 4, fw);
        assert_eq!(stats.tuples, 49 * 49);
        (g, ads)
    }

    #[test]
    fn floyd_warshall_and_dijkstra_builds_agree_semantically() {
        // Summation order differs between the two algorithms, so the
        // hashed f64 bit patterns (hence roots) may differ; the proven
        // distances must still agree within float tolerance and each
        // proof must verify against its own signed root.
        let (g, a1) = build(400, true);
        let (_, a2) = build(400, false);
        for (s, t) in [(0u32, 48u32), (5, 17)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let d1 = a1.prove(&g, s, t).verify(s, t, &a1.root()).unwrap();
            let d2 = a2.prove(&g, s, t).verify(s, t, &a2.root()).unwrap();
            assert!((d1 - d2).abs() <= 1e-9 * d1.max(1.0));
        }
    }

    #[test]
    fn prove_verify_round_trip() {
        let (g, ads) = build(401, false);
        let root = ads.root();
        for (s, t) in [(0u32, 48u32), (3, 40), (48, 0), (7, 7)] {
            let (s, t) = (NodeId(s), NodeId(t));
            let proof = ads.prove(&g, s, t);
            let d = proof.verify(s, t, &root).unwrap();
            let expected = if s == t {
                0.0
            } else {
                dijkstra_path(&g, s, t).unwrap().distance
            };
            assert!((d - expected).abs() < 1e-9, "({s},{t})");
        }
    }

    #[test]
    fn forged_distance_detected() {
        let (g, ads) = build(402, false);
        let (s, t) = (NodeId(0), NodeId(30));
        let mut proof = ads.prove(&g, s, t);
        proof.entry.value *= 2.0;
        assert_eq!(
            proof.verify(s, t, &ads.root()),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn wrong_pair_detected() {
        let (g, ads) = build(403, false);
        let proof = ads.prove(&g, NodeId(0), NodeId(30));
        // Presenting the proof for a different query pair.
        assert!(matches!(
            proof.verify(NodeId(0), NodeId(31), &ads.root()),
            Err(VerifyError::MissingDistanceKey { .. })
        ));
    }

    #[test]
    fn moved_indices_detected() {
        let (g, ads) = build(404, false);
        let (s, t) = (NodeId(2), NodeId(9));
        let mut proof = ads.prove(&g, s, t);
        proof.row_index += 1;
        let r = proof.verify(s, t, &ads.root());
        assert!(
            r == Err(VerifyError::RootMismatch)
                || matches!(r, Err(VerifyError::MalformedIntegrityProof(_)))
        );
    }

    #[test]
    fn proof_size_logarithmic() {
        let g = grid_network(16, 16, 1.1, 405);
        let (ads, _) = DistanceAds::build(&g, 4, false);
        let proof = ads.prove(&g, NodeId(0), NodeId(255));
        // Two trees of 256 leaves at fanout 4: 4 levels each, ≤ 3 cover
        // digests per level.
        assert!(proof.num_items() <= 1 + 2 * 4 * 3 + 2);
        assert!(proof.size_bytes() < 1500, "{}", proof.size_bytes());
    }

    #[test]
    fn build_stats_sane() {
        let g = grid_network(5, 5, 1.1, 406);
        let (_, stats) = DistanceAds::build(&g, 2, true);
        assert_eq!(stats.tuples, 625);
        assert!(stats.seconds >= 0.0);
    }
}
