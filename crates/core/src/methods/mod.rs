//! The four verification methods: DIJ, FULL, LDM, HYP.
//!
//! Each method module provides the owner-side hint construction, the
//! provider-side ΓS assembly, and the client-side ΓS verification,
//! packaged as an [`AuthMethod`] trait implementation. The method
//! identity and its public parameters are bound into the signed
//! network-root metadata so that a provider cannot silently downgrade
//! or re-parameterize a method.
//!
//! The enums in this module ([`MethodConfig`], [`MethodParams`]) and
//! [`MethodHints`] are thin configuration /
//! wire adapters: each resolves to its method's trait object via a
//! `method()` accessor, and the provider, client, batch, owner, update
//! and tamper paths all dispatch through the trait — no per-method
//! `match` survives in those hot paths.

pub mod dij;
pub mod full;
pub mod hyp;
pub mod ldm;

use crate::ads::SignedRoot;
use crate::batch::{AuxContext, BatchAnswer, BatchAux, BatchVerifyState};
use crate::enc::{DecodeError, Decoder, Encoder};
use crate::error::{ProviderError, VerifyError};
use crate::owner::{MethodHints, ProviderPackage, SetupConfig};
use crate::proof::SpProof;
use crate::tuple::ExtendedTuple;
use spnet_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use spnet_graph::landmark::{CompressionStrategy, LandmarkStrategy};
use spnet_graph::{Graph, NodeId, Path};
use std::collections::HashMap;

/// The authenticated tuples of a proof, keyed by node id — the shape
/// both the single-query and the batched ΓS verifications consume.
pub type TupleMap<'a> = HashMap<NodeId, &'a ExtendedTuple>;

/// Auxiliary signed roots a verifier has **already RSA-verified** —
/// typically once, at [`crate::service::SpService::open_session`].
///
/// FULL ships its signed distance-tree root with every answer/batch,
/// HYP its signed hyper-edge and cell-directory roots; without pinning
/// each chunk of a stream pays those signature checks again. A method
/// verification that finds its aux root **byte-identical** to a pinned
/// one skips the RSA check (Merkle root reconstructions still run); a
/// root *not* covered by the pin set falls back to the full signature
/// check, so pinning is purely an accelerator and never widens what a
/// client accepts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PinnedAux {
    roots: Vec<SignedRoot>,
}

impl PinnedAux {
    /// Pins the given roots. The caller vouches it RSA-verified every
    /// one of them against the owner key it trusts.
    pub fn new(roots: Vec<SignedRoot>) -> Self {
        PinnedAux { roots }
    }

    /// True if `root` is byte-identical to a pinned root.
    pub fn covers(&self, root: &SignedRoot) -> bool {
        self.roots.iter().any(|r| r == root)
    }

    /// Number of pinned roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// What a client-side verification trusts: the owner's public key and
/// (optionally) the aux signed roots pinned at session open. Bundled
/// so every [`AuthMethod`] verification entry point receives both
/// through one parameter.
#[derive(Debug, Clone, Copy)]
pub struct VerifyCtx<'a> {
    /// The owner public key the client trusts.
    pub pk: &'a RsaPublicKey,
    /// Session-pinned aux roots, if any.
    pub pins: Option<&'a PinnedAux>,
}

impl<'a> VerifyCtx<'a> {
    /// A context with no pinned aux roots (every signed root pays its
    /// own RSA check).
    pub fn new(pk: &'a RsaPublicKey) -> Self {
        VerifyCtx { pk, pins: None }
    }

    /// A context with session-pinned aux roots.
    pub fn with_pins(pk: &'a RsaPublicKey, pins: &'a PinnedAux) -> Self {
        VerifyCtx {
            pk,
            pins: Some(pins),
        }
    }

    /// True if `root` may skip its RSA check: it is byte-identical to
    /// a root this context already verified.
    pub fn trusts(&self, root: &SignedRoot) -> bool {
        self.pins.is_some_and(|p| p.covers(root))
    }
}

/// A single undirected edge-weight change, as seen by
/// [`AuthMethod::repair_hints`]. The graph passed alongside already
/// carries `new_weight`; methods that need shortest-path state of the
/// *pre-update* graph read it from `old_dists`, which the update
/// driver computes before patching the CSR (only when the method's
/// [`AuthMethod::wants_change_dists`] asks for it).
#[derive(Debug, Clone)]
pub struct EdgeChange {
    /// One endpoint of the changed edge.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The weight before the update.
    pub old_weight: f64,
    /// The weight after the update.
    pub new_weight: f64,
    /// Single-source distances from `u` and `v` on the **old** graph;
    /// present iff the method opted in via `wants_change_dists`.
    pub old_dists: Option<ChangeDists>,
}

/// Pre-update single-source shortest-path distances from the changed
/// edge's endpoints (indexed by node id).
#[derive(Debug, Clone)]
pub struct ChangeDists {
    /// `dist_old(u, ·)`.
    pub from_u: Vec<f64>,
    /// `dist_old(v, ·)`.
    pub from_v: Vec<f64>,
}

/// What an incremental hint repair touched — the owner's re-signing
/// and re-publication bill for one edge update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtySet {
    /// Nodes whose extended tuples must be rebuilt and re-proven into
    /// the network tree (the update driver handles the rebuild; the
    /// changed edge's endpoints are always included).
    pub tuples: Vec<NodeId>,
    /// Auxiliary structure entries (distance rows, hyper-edges,
    /// landmark vectors) the repair recomputed.
    pub aux_repaired: usize,
    /// Auxiliary signed roots re-signed by the repair (the network
    /// root's own re-sign is accounted by the driver).
    pub aux_resigned: usize,
    /// Replacement public parameters, when the repair moved a signed
    /// scalar (LDM's quantization step λ tracks `Dmax`, which an edge
    /// change can shift). The update driver encodes them into the
    /// network root's metadata before re-signing; `None` keeps the
    /// previous metadata byte-for-byte.
    pub new_params: Option<MethodParams>,
}

/// One verification method's complete lifecycle, as a trait object.
///
/// The paper's four methods (DIJ, FULL, LDM, HYP) share one protocol —
/// the **owner** builds authenticated hints, the **provider** assembles
/// `(P_rslt, ΓS, ΓT)` per query, and the **client** verifies against
/// owner-signed roots. This trait captures that lifecycle so the
/// provider ([`crate::ServiceProvider`]), client ([`crate::Client`]),
/// batch layer ([`crate::batch`]) and the [`crate::service::SpService`]
/// facade serve every method through one dispatch point. New methods
/// plug in by implementing this trait and registering a wire code.
///
/// Implementations are stateless unit structs; all per-deployment
/// state flows through [`MethodHints`] (provider side) and
/// [`MethodParams`] (client side, authenticated by the signed root
/// metadata). Obtain an instance from [`MethodConfig::method`],
/// [`MethodParams::method`] or [`MethodHints::method`].
pub trait AuthMethod: Send + Sync {
    /// Short display name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Wire code bound into signed metadata (`1..=4` for the built-in
    /// methods).
    fn params_code(&self) -> u8;

    // ---- owner side ----------------------------------------------------

    /// Owner-side hint construction: builds (and signs, where the
    /// method has auxiliary trees) everything the provider needs
    /// beyond the network ADS, plus the public parameters the client
    /// must learn authentically.
    ///
    /// `config` carries the method's tuning knobs and must be the same
    /// [`MethodConfig`] variant this trait object was resolved from.
    fn build_hints(
        &self,
        g: &Graph,
        config: &MethodConfig,
        setup: &SetupConfig,
        keypair: &RsaKeyPair,
    ) -> (MethodHints, MethodParams);

    /// Builds one node's extended tuple (the network-ADS leaf payload),
    /// embedding whatever per-node hint data the method requires.
    fn make_tuple(&self, g: &Graph, v: NodeId, hints: &MethodHints) -> ExtendedTuple;

    /// Whether [`AuthMethod::repair_hints`] needs pre-update distances
    /// from the changed edge's endpoints ([`EdgeChange::old_dists`]).
    /// Methods that materialize global distance information (FULL,
    /// LDM, HYP) use them to bound the dirty set; DIJ does not.
    fn wants_change_dists(&self) -> bool {
        false
    }

    /// Owner-side incremental repair after one edge-weight change:
    /// recomputes exactly the hint entries the change can have
    /// invalidated and re-signs the affected auxiliary roots, instead
    /// of republishing. `g` already carries the new weight. Returns
    /// the [`DirtySet`] — the nodes whose network tuples the update
    /// driver must rebuild, plus the repair's crypto bill.
    ///
    /// The default (DIJ, whose hints are empty) repairs nothing and
    /// marks only the changed edge's endpoints dirty.
    fn repair_hints(
        &self,
        _g: &Graph,
        change: &EdgeChange,
        _hints: &mut MethodHints,
        _keypair: &RsaKeyPair,
    ) -> Result<DirtySet, crate::update::UpdateError> {
        Ok(DirtySet {
            tuples: vec![change.u, change.v],
            ..DirtySet::default()
        })
    }

    // ---- persistence ---------------------------------------------------

    /// Writes this method's hint sections into a snapshot (see
    /// [`crate::snapshot`] for the section-id map). Signed auxiliary
    /// roots are persisted as their canonical bytes — the owner signs
    /// nothing here. The default writes nothing (DIJ has no hints).
    fn snapshot_hints(
        &self,
        _hints: &MethodHints,
        _w: &mut spnet_store::SnapshotWriter,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Ok(())
    }

    /// Reconstructs this method's hints from a snapshot **without any
    /// signing**: persisted signed roots are decoded and checked
    /// structurally against the loaded trees. The caller
    /// ([`crate::snapshot::load_package`]) RSA-verifies every root
    /// returned through [`MethodHints::aux_roots`] against the
    /// persisted owner key.
    fn load_hints(
        &self,
        g: &Graph,
        store: &spnet_store::NodeStore,
    ) -> Result<MethodHints, crate::snapshot::SnapshotError>;

    // ---- provider side -------------------------------------------------

    /// Algorithm 1, lines 2–3: assembles ΓS for one query and returns
    /// it with the node list ΓT must cover, in the exact order the
    /// proof ships them.
    fn prove(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Result<(SpProof, Vec<NodeId>), ProviderError>;

    /// The node set one batched query contributes to the shared tuple
    /// pool (the same Γ the single-query proof would ship).
    fn batch_members(
        &self,
        pkg: &ProviderPackage,
        vs: NodeId,
        vt: NodeId,
        path: &Path,
    ) -> Vec<NodeId>;

    /// Assembles the method-specific pooled hint proofs for a batch
    /// ([`BatchAux`]), shipped once per batch.
    fn prove_batch(
        &self,
        pkg: &ProviderPackage,
        queries: &[(NodeId, NodeId)],
    ) -> Result<BatchAux, ProviderError>;

    // ---- client side ---------------------------------------------------

    /// Whether a ΓS payload has the shape this method's verification
    /// expects — the signed method code must match the proof shape, or
    /// a malicious provider could downgrade the verification method.
    fn matches_proof(&self, sp: &SpProof) -> bool;

    /// Verifies ΓS for one query against already integrity-verified
    /// tuples, returning the proven optimum `dist(vs, vt)`. Aux signed
    /// roots covered by `ctx`'s pins skip their RSA check (byte
    /// equality instead); uncovered roots are signature-verified.
    fn verify(
        &self,
        ctx: &VerifyCtx<'_>,
        params: &MethodParams,
        sp: &SpProof,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError>;

    /// Authenticates a batch's pooled hint proofs once (signatures —
    /// unless pinned in `ctx` — plus Merkle roots) and returns the
    /// context every per-query job reads.
    fn verify_batch_aux<'a>(
        &self,
        ctx: &VerifyCtx<'_>,
        params: &MethodParams,
        aux: &'a BatchAux,
    ) -> Result<AuxContext<'a>, VerifyError>;

    /// Batch-wide preparation between aux authentication and the
    /// per-query fan-out: a method may seed `state` with work plans
    /// derived from the whole batch. HYP uses this to group query
    /// endpoints by their authenticated cell so batch verification
    /// runs **one multi-source in-cell sweep per touched cell**
    /// instead of one Dijkstra per endpoint. Purely an accelerator:
    /// outcomes must be bit-identical with or without it. Default:
    /// nothing.
    fn prepare_batch_verify(
        &self,
        _params: &MethodParams,
        _queries: &[(NodeId, NodeId)],
        _batch: &BatchAnswer,
        _state: &BatchVerifyState,
    ) {
    }

    /// Verifies one batched query's ΓS against the pre-verified aux
    /// context and the query's slice of the authenticated pool.
    /// `state` carries per-batch verifier caches (e.g. HYP's in-cell
    /// CSR remaps, shared by queries touching the same cell).
    fn verify_batch_query(
        &self,
        params: &MethodParams,
        ctx: &AuxContext<'_>,
        state: &BatchVerifyState,
        tuples: &TupleMap<'_>,
        vs: NodeId,
        vt: NodeId,
    ) -> Result<f64, VerifyError>;

    // ---- range queries -------------------------------------------------

    /// Assembles the method-specific attestation shipped with a
    /// verified range answer ([`crate::queries::RangeAnswer::aux`]).
    ///
    /// The generic completeness certificate — the pooled member
    /// subgraph plus the client's escape-checked Dijkstra — is sound
    /// for every method, so the default ships nothing beyond the pool.
    /// FULL overrides this to additionally attest every member
    /// distance under its signed distance tree, mirroring the batch
    /// path's downgrade protection.
    fn prove_range_aux(
        &self,
        _pkg: &ProviderPackage,
        _source: NodeId,
        _members: &[(NodeId, f64)],
    ) -> Result<BatchAux, ProviderError> {
        Ok(BatchAux::Subgraph)
    }

    /// Authenticates a range answer's aux block against the signed
    /// method: the aux shape must match what [`Self::prove_range_aux`]
    /// produces, or a malicious provider could downgrade the range
    /// certificate of a hint-backed method to the bare subgraph form.
    fn verify_range_aux(
        &self,
        _ctx: &VerifyCtx<'_>,
        _params: &MethodParams,
        aux: &BatchAux,
        _source: NodeId,
        _members: &[(NodeId, f64)],
    ) -> Result<(), VerifyError> {
        match aux {
            BatchAux::Subgraph => Ok(()),
            _ => Err(VerifyError::MetaMismatch(
                "range proof shape does not match signed method",
            )),
        }
    }
}

/// Method selection plus owner-side tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodConfig {
    /// Dijkstra subgraph verification: no pre-computation (Section IV-A).
    Dij,
    /// Fully materialized distances (Section IV-B).
    Full {
        /// Use the O(|V|³) Floyd–Warshall (as the paper prescribes)
        /// instead of the output-equivalent all-pairs Dijkstra.
        use_floyd_warshall: bool,
    },
    /// Landmark-based verification (Section V-A).
    Ldm(LdmConfig),
    /// Hyper-graph verification (Section V-B).
    Hyp {
        /// Number of grid cells `p` (rounded to a square).
        cells: usize,
    },
}

impl MethodConfig {
    /// The method's lifecycle implementation (thin-adapter dispatch:
    /// this is the only place the config enum maps to behaviour).
    pub fn method(&self) -> &'static dyn AuthMethod {
        match self {
            MethodConfig::Dij => &dij::DijMethod,
            MethodConfig::Full { .. } => &full::FullMethod,
            MethodConfig::Ldm(_) => &ldm::LdmMethod,
            MethodConfig::Hyp { .. } => &hyp::HypMethod,
        }
    }

    /// Short display name as used in the figures.
    pub fn name(&self) -> &'static str {
        self.method().name()
    }

    /// Wire code bound into signed metadata.
    pub fn code(&self) -> u8 {
        self.method().params_code()
    }
}

/// LDM parameters (Section V-A): `c` landmarks, `b` quantization bits,
/// ξ compression threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct LdmConfig {
    /// Number of landmarks `c` (paper default 200).
    pub landmarks: usize,
    /// Quantization bits `b` (paper default 12).
    pub bits: u8,
    /// Compression threshold ξ (paper default 50.0).
    pub xi: f64,
    /// Landmark selection strategy.
    pub strategy: LandmarkStrategy,
    /// Compression strategy (paper greedy, or scalable Hilbert sweep).
    pub compression: CompressionStrategy,
}

impl Default for LdmConfig {
    fn default() -> Self {
        LdmConfig {
            landmarks: 200,
            bits: 12,
            xi: 50.0,
            strategy: LandmarkStrategy::Farthest,
            compression: CompressionStrategy::HilbertSweep,
        }
    }
}

/// The public method parameters a client must learn authentically.
///
/// Encoded into the signed network-root metadata (`AdsMeta::params`).
#[derive(Debug, Clone, PartialEq)]
pub enum MethodParams {
    /// DIJ carries no parameters.
    Dij,
    /// FULL carries no parameters.
    Full,
    /// LDM: the quantization step λ (the client's bound arithmetic
    /// needs it; Eq. 6).
    Ldm {
        /// Quantization step λ.
        lambda: f64,
    },
    /// HYP carries no parameters (cell ids and border flags live inside
    /// authenticated tuples; cell population counts live in the signed
    /// cell directory).
    Hyp,
}

impl MethodParams {
    /// Canonical encoding for `AdsMeta::params`.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            MethodParams::Dij => e.put_u8(1),
            MethodParams::Full => e.put_u8(2),
            MethodParams::Ldm { lambda } => {
                e.put_u8(3);
                e.put_f64(*lambda);
            }
            MethodParams::Hyp => e.put_u8(4),
        }
        e.into_bytes()
    }

    /// Decodes from signed metadata.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let out = match d.take_u8()? {
            1 => MethodParams::Dij,
            2 => MethodParams::Full,
            3 => MethodParams::Ldm {
                lambda: d.take_f64()?,
            },
            4 => MethodParams::Hyp,
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        Ok(out)
    }

    /// The method's lifecycle implementation — how a client that has
    /// authenticated these params dispatches verification.
    pub fn method(&self) -> &'static dyn AuthMethod {
        match self {
            MethodParams::Dij => &dij::DijMethod,
            MethodParams::Full => &full::FullMethod,
            MethodParams::Ldm { .. } => &ldm::LdmMethod,
            MethodParams::Hyp => &hyp::HypMethod,
        }
    }

    /// The method code (matches `MethodConfig::code`).
    pub fn code(&self) -> u8 {
        self.method().params_code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip() {
        for p in [
            MethodParams::Dij,
            MethodParams::Full,
            MethodParams::Ldm { lambda: 2.5 },
            MethodParams::Hyp,
        ] {
            let bytes = p.encode();
            assert_eq!(MethodParams::decode(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn params_reject_garbage() {
        assert!(MethodParams::decode(&[]).is_err());
        assert!(MethodParams::decode(&[99]).is_err());
        assert!(MethodParams::decode(&[3, 1, 2]).is_err()); // truncated λ
        assert!(MethodParams::decode(&[1, 0]).is_err()); // trailing byte
    }

    #[test]
    fn codes_consistent() {
        assert_eq!(MethodConfig::Dij.code(), MethodParams::Dij.code());
        assert_eq!(
            MethodConfig::Full {
                use_floyd_warshall: false
            }
            .code(),
            MethodParams::Full.code()
        );
        assert_eq!(
            MethodConfig::Ldm(LdmConfig::default()).code(),
            MethodParams::Ldm { lambda: 1.0 }.code()
        );
        assert_eq!(
            MethodConfig::Hyp { cells: 100 }.code(),
            MethodParams::Hyp.code()
        );
    }

    #[test]
    fn names() {
        assert_eq!(MethodConfig::Dij.name(), "DIJ");
        assert_eq!(MethodConfig::Ldm(LdmConfig::default()).name(), "LDM");
    }
}
