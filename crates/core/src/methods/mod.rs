//! The four verification methods: DIJ, FULL, LDM, HYP.
//!
//! Each method module provides the owner-side hint construction, the
//! provider-side ΓS assembly, and the client-side ΓS verification. The
//! method identity and its public parameters are bound into the signed
//! network-root metadata so that a provider cannot silently downgrade
//! or re-parameterize a method.

pub mod dij;
pub mod full;
pub mod hyp;
pub mod ldm;

use crate::enc::{DecodeError, Decoder, Encoder};
use spnet_graph::landmark::{CompressionStrategy, LandmarkStrategy};

/// Method selection plus owner-side tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodConfig {
    /// Dijkstra subgraph verification: no pre-computation (Section IV-A).
    Dij,
    /// Fully materialized distances (Section IV-B).
    Full {
        /// Use the O(|V|³) Floyd–Warshall (as the paper prescribes)
        /// instead of the output-equivalent all-pairs Dijkstra.
        use_floyd_warshall: bool,
    },
    /// Landmark-based verification (Section V-A).
    Ldm(LdmConfig),
    /// Hyper-graph verification (Section V-B).
    Hyp {
        /// Number of grid cells `p` (rounded to a square).
        cells: usize,
    },
}

impl MethodConfig {
    /// Short display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            MethodConfig::Dij => "DIJ",
            MethodConfig::Full { .. } => "FULL",
            MethodConfig::Ldm(_) => "LDM",
            MethodConfig::Hyp { .. } => "HYP",
        }
    }

    /// Wire code bound into signed metadata.
    pub fn code(&self) -> u8 {
        match self {
            MethodConfig::Dij => 1,
            MethodConfig::Full { .. } => 2,
            MethodConfig::Ldm(_) => 3,
            MethodConfig::Hyp { .. } => 4,
        }
    }
}

/// LDM parameters (Section V-A): `c` landmarks, `b` quantization bits,
/// ξ compression threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct LdmConfig {
    /// Number of landmarks `c` (paper default 200).
    pub landmarks: usize,
    /// Quantization bits `b` (paper default 12).
    pub bits: u8,
    /// Compression threshold ξ (paper default 50.0).
    pub xi: f64,
    /// Landmark selection strategy.
    pub strategy: LandmarkStrategy,
    /// Compression strategy (paper greedy, or scalable Hilbert sweep).
    pub compression: CompressionStrategy,
}

impl Default for LdmConfig {
    fn default() -> Self {
        LdmConfig {
            landmarks: 200,
            bits: 12,
            xi: 50.0,
            strategy: LandmarkStrategy::Farthest,
            compression: CompressionStrategy::HilbertSweep,
        }
    }
}

/// The public method parameters a client must learn authentically.
///
/// Encoded into the signed network-root metadata (`AdsMeta::params`).
#[derive(Debug, Clone, PartialEq)]
pub enum MethodParams {
    /// DIJ carries no parameters.
    Dij,
    /// FULL carries no parameters.
    Full,
    /// LDM: the quantization step λ (the client's bound arithmetic
    /// needs it; Eq. 6).
    Ldm {
        /// Quantization step λ.
        lambda: f64,
    },
    /// HYP carries no parameters (cell ids and border flags live inside
    /// authenticated tuples; cell population counts live in the signed
    /// cell directory).
    Hyp,
}

impl MethodParams {
    /// Canonical encoding for `AdsMeta::params`.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            MethodParams::Dij => e.put_u8(1),
            MethodParams::Full => e.put_u8(2),
            MethodParams::Ldm { lambda } => {
                e.put_u8(3);
                e.put_f64(*lambda);
            }
            MethodParams::Hyp => e.put_u8(4),
        }
        e.into_bytes()
    }

    /// Decodes from signed metadata.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let out = match d.take_u8()? {
            1 => MethodParams::Dij,
            2 => MethodParams::Full,
            3 => MethodParams::Ldm {
                lambda: d.take_f64()?,
            },
            4 => MethodParams::Hyp,
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        Ok(out)
    }

    /// The method code (matches `MethodConfig::code`).
    pub fn code(&self) -> u8 {
        match self {
            MethodParams::Dij => 1,
            MethodParams::Full => 2,
            MethodParams::Ldm { .. } => 3,
            MethodParams::Hyp => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip() {
        for p in [
            MethodParams::Dij,
            MethodParams::Full,
            MethodParams::Ldm { lambda: 2.5 },
            MethodParams::Hyp,
        ] {
            let bytes = p.encode();
            assert_eq!(MethodParams::decode(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn params_reject_garbage() {
        assert!(MethodParams::decode(&[]).is_err());
        assert!(MethodParams::decode(&[99]).is_err());
        assert!(MethodParams::decode(&[3, 1, 2]).is_err()); // truncated λ
        assert!(MethodParams::decode(&[1, 0]).is_err()); // trailing byte
    }

    #[test]
    fn codes_consistent() {
        assert_eq!(MethodConfig::Dij.code(), MethodParams::Dij.code());
        assert_eq!(
            MethodConfig::Full {
                use_floyd_warshall: false
            }
            .code(),
            MethodParams::Full.code()
        );
        assert_eq!(
            MethodConfig::Ldm(LdmConfig::default()).code(),
            MethodParams::Ldm { lambda: 1.0 }.code()
        );
        assert_eq!(
            MethodConfig::Hyp { cells: 100 }.code(),
            MethodParams::Hyp.code()
        );
    }

    #[test]
    fn names() {
        assert_eq!(MethodConfig::Dij.name(), "DIJ");
        assert_eq!(MethodConfig::Ldm(LdmConfig::default()).name(), "LDM");
    }
}
