//! Snapshot persistence: publish once, restart without re-signing.
//!
//! The ICDE 2010 protocol implicitly assumes the provider rebuilds —
//! and the owner re-signs — every authenticated structure at startup.
//! This module removes that assumption: [`save_package`] persists a
//! [`Published`] epoch into a single page-aligned snapshot file
//! (`spnet-store` format), and [`load_package`] reconstructs a
//! serving-ready [`ProviderPackage`] from it with **zero RSA signing
//! operations** — the owner's original signatures are decoded from
//! their persisted bytes and re-verified against the loaded
//! structures.
//!
//! Two load backends (see [`StoreBackend`]):
//!
//! * `Mem` — every section read and integrity-verified at open; the
//!   dense in-memory trees are rebuilt from their persisted leaves, so
//!   the result is bit-identical to a freshly built provider.
//! * `File` — Merkle levels and B-tree entry arrays stay on disk and
//!   fault in page by page; a proof touches only the pages on its
//!   path. Proof bytes are identical to the `Mem` backend.
//!
//! Trust layering: the store verifies *storage* integrity (per-section
//! and per-page digests). This module then (i) checks every loaded
//! tree structurally against its persisted [`SignedRoot`] and (ii)
//! RSA-verifies every signed root against the persisted owner public
//! key. A tampered snapshot therefore fails with a typed
//! [`SnapshotError`] at load — it can never serve verifying proofs.

use crate::ads::{AdsTag, NetworkAds, SignedRoot};
use crate::enc::{DecodeError, Decoder, Encoder};
use crate::methods::MethodParams;
use crate::owner::{ProviderPackage, Published};
use crate::tuple::ExtendedTuple;
use crate::wire::{put_signed_root, take_signed_root};
use spnet_crypto::cache::PageCacheCfg;
use spnet_crypto::digest::{Digest, DIGEST_LEN};
use spnet_crypto::mbtree::{KeyedEntry, MbTreeError, MerkleBTree};
use spnet_crypto::merkle::{MerkleError, MerkleTree};
use spnet_crypto::pager::{DigestPager, EntryPager};
use spnet_crypto::rsa::RsaPublicKey;
use spnet_graph::io::{graph_from_bytes, graph_to_bytes, IoError};
use spnet_graph::NodeId;
use spnet_store::{
    EntryPageSource, NodeStore, PageSource, SnapshotWriter, StoreBackend, StoreError, TreePager,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the snapshot inside its directory.
pub const SNAPSHOT_FILE: &str = "snapshot.spnet";

/// Digests per page of a persisted Merkle level (128 × 32 B = 4 KiB).
pub const PAGE_DIGESTS: usize = 128;

/// [`KeyedEntry`] records per page of a persisted B-tree entry array
/// (256 × 16 B = 4 KiB).
pub const PAGE_ENTRIES: usize = 256;

/// Residency bound (in pages) of each paged structure opened over a
/// lazy store: faulted pages beyond this are evicted LRU and simply
/// re-fault on the next touch. At 4 KiB pages this caps every paged
/// tree at ~2 MiB resident.
pub const PAGE_CACHE_PAGES: usize = 512;

/// The page-cache configuration for paged structures over `store`:
/// bounded at [`PAGE_CACHE_PAGES`], evictions aggregated into the
/// store's counter ([`NodeStore::evict_count`]).
fn store_cache_cfg(store: &NodeStore) -> PageCacheCfg {
    PageCacheCfg {
        capacity: PAGE_CACHE_PAGES,
        evictions: store.eviction_counter(),
    }
}

// ---- section id map -------------------------------------------------------
// Shared by every method module; blobs unless noted. Tree sections are
// one paged section per Merkle level, leaf level first.

/// The graph, in the `spnet-graph` text format (bit-exact round trip).
pub const SEC_GRAPH: u16 = 0x0001;
/// The owner's RSA public key.
pub const SEC_PUBKEY: u16 = 0x0002;
/// The signed network root (canonical wire encoding).
pub const SEC_NET_SIGNED: u16 = 0x0003;
/// The leaf ordering `O`: leaf position → node id, packed `u32` LE.
pub const SEC_NET_ORDER: u16 = 0x0004;
/// The extended tuples, node-id order, canonical encoding.
pub const SEC_NET_TUPLES: u16 = 0x0005;
/// Network Merkle tree levels (paged): `SEC_NET_TREE + level`.
pub const SEC_NET_TREE: u16 = 0x0100;

/// FULL: the signed distance-tree root.
pub const SEC_FULL_SIGNED: u16 = 0x0010;
/// FULL: row roots, packed digests (paged).
pub const SEC_FULL_ROWROOTS: u16 = 0x0011;
/// FULL: fanout, build stats, matrix mode.
pub const SEC_FULL_CONFIG: u16 = 0x0012;
/// FULL (Floyd–Warshall mode only): the raw distance matrix, row-major
/// `f64` LE (paged). Persisted because FW and Dijkstra produce
/// different bit patterns, and row digests hash the exact bits.
pub const SEC_FULL_MATRIX: u16 = 0x0014;

/// LDM: λ, ξ, c, b and the (compressed) landmark vectors.
pub const SEC_LDM_VECTORS: u16 = 0x0020;
/// LDM: owner-side build seconds.
pub const SEC_LDM_BUILD: u16 = 0x0021;
/// LDM: compression strategy byte + the selected landmark node ids
/// (dynamic updates repair vectors for the original landmark set).
pub const SEC_LDM_LANDMARKS: u16 = 0x0022;

/// HYP: grid side, tree fanout, geometry, build seconds.
pub const SEC_HYP_CONFIG: u16 = 0x0030;
/// HYP: the signed hyper-edge root.
pub const SEC_HYP_HYPER_SIGNED: u16 = 0x0031;
/// HYP: the signed cell-directory root.
pub const SEC_HYP_DIR_SIGNED: u16 = 0x0032;
/// HYP: hyper-edge B-tree first-keys (packed `u64` LE).
pub const SEC_HYP_HYPER_KEYS: u16 = 0x0033;
/// HYP: cell-directory B-tree first-keys (packed `u64` LE).
pub const SEC_HYP_DIR_KEYS: u16 = 0x0034;
/// HYP: hyper-edge B-tree entries, packed 16-byte records (paged).
pub const SEC_HYP_HYPER_ENTRIES: u16 = 0x0035;
/// HYP: cell-directory B-tree entries, packed 16-byte records (paged).
pub const SEC_HYP_DIR_ENTRIES: u16 = 0x0036;
/// HYP: hyper-edge tree levels (paged): `SEC_HYP_HYPER_TREE + level`.
pub const SEC_HYP_HYPER_TREE: u16 = 0x0300;
/// HYP: cell-directory tree levels (paged): `SEC_HYP_DIR_TREE + level`.
pub const SEC_HYP_DIR_TREE: u16 = 0x0400;

/// POI set: the signed POI root (canonical wire encoding).
pub const SEC_POI_SIGNED: u16 = 0x0040;
/// POI set: B-tree first-keys (packed `u64` LE).
pub const SEC_POI_KEYS: u16 = 0x0041;
/// POI set: B-tree entries, packed 16-byte records (paged).
pub const SEC_POI_ENTRIES: u16 = 0x0042;
/// POI set: B-tree digest levels (paged): `SEC_POI_TREE + level`.
pub const SEC_POI_TREE: u16 = 0x0500;

/// File name of the POI-set snapshot inside a snapshot directory. POIs
/// live in their own file so the network snapshot format (and
/// [`save_package`]'s signature) stays unchanged — an owner can
/// publish or re-publish a POI set without re-writing the network.
pub const POI_FILE: &str = "poi.spnet";

/// Why a snapshot save or load failed. Loads fail typed — a corrupted
/// or tampered snapshot never panics and never serves.
#[derive(Debug)]
pub enum SnapshotError {
    /// Storage layer (header, table, section or page integrity).
    Store(StoreError),
    /// A persisted structure failed canonical decoding.
    Decode(DecodeError),
    /// Merkle tree reconstruction or paged open failed.
    Merkle(MerkleError),
    /// Merkle B-tree reconstruction or paged open failed.
    MbTree(MbTreeError),
    /// The persisted graph text failed to parse.
    Graph(IoError),
    /// Filesystem error outside the store itself.
    Io(std::io::Error),
    /// An owner signature failed against the persisted public key.
    BadSignature(&'static str),
    /// Loaded structures are inconsistent with each other or with
    /// their signed metadata.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Store(e) => write!(f, "snapshot store: {e}"),
            SnapshotError::Decode(e) => write!(f, "snapshot decode: {e}"),
            SnapshotError::Merkle(e) => write!(f, "snapshot merkle: {e}"),
            SnapshotError::MbTree(e) => write!(f, "snapshot b-tree: {e}"),
            SnapshotError::Graph(e) => write!(f, "snapshot graph: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadSignature(what) => {
                write!(f, "snapshot signature check failed: {what}")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot inconsistent: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<StoreError> for SnapshotError {
    fn from(e: StoreError) -> Self {
        SnapshotError::Store(e)
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl From<MerkleError> for SnapshotError {
    fn from(e: MerkleError) -> Self {
        SnapshotError::Merkle(e)
    }
}

impl From<MbTreeError> for SnapshotError {
    fn from(e: MbTreeError) -> Self {
        SnapshotError::MbTree(e)
    }
}

impl From<IoError> for SnapshotError {
    fn from(e: IoError) -> Self {
        SnapshotError::Graph(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---- shared codec helpers -------------------------------------------------

/// Canonical bytes of a [`SignedRoot`] (the proof wire codec).
pub(crate) fn encode_signed_root(s: &SignedRoot) -> Vec<u8> {
    let mut e = Encoder::new();
    put_signed_root(&mut e, s);
    e.into_bytes()
}

/// Inverse of [`encode_signed_root`]; rejects trailing bytes.
pub(crate) fn decode_signed_root(bytes: &[u8]) -> Result<SignedRoot, SnapshotError> {
    let mut d = Decoder::new(bytes);
    let s = take_signed_root(&mut d)?;
    d.finish()?;
    Ok(s)
}

/// Packs digests into their on-disk byte layout.
pub(crate) fn digests_to_bytes(digests: &[Digest]) -> Vec<u8> {
    digests.iter().flat_map(|d| *d.as_bytes()).collect()
}

/// Inverse of [`digests_to_bytes`].
pub(crate) fn digests_from_bytes(bytes: &[u8]) -> Result<Vec<Digest>, SnapshotError> {
    if !bytes.len().is_multiple_of(DIGEST_LEN) {
        return Err(SnapshotError::Corrupt(
            "digest array length is not a multiple of the digest size",
        ));
    }
    Ok(bytes
        .chunks_exact(DIGEST_LEN)
        .map(|c| Digest(c.try_into().expect("chunk is digest-sized")))
        .collect())
}

/// Number of Merkle levels (leaves included) for `leaf_count` leaves.
fn tree_height(leaf_count: usize, fanout: usize) -> usize {
    let mut n = leaf_count.max(1);
    let mut h = 1;
    while n > 1 {
        n = n.div_ceil(fanout.max(2));
        h += 1;
    }
    h
}

/// Writes a dense Merkle tree as one paged section per level
/// (`base + level`, leaf level first).
pub(crate) fn write_tree(
    w: &mut SnapshotWriter,
    base: u16,
    tree: &MerkleTree,
) -> Result<(), SnapshotError> {
    let levels = tree
        .dense_levels()
        .ok_or(SnapshotError::Corrupt("cannot snapshot a paged tree"))?;
    for (l, level) in levels.iter().enumerate() {
        w.paged(
            base + l as u16,
            &digests_to_bytes(level),
            PAGE_DIGESTS * DIGEST_LEN,
        )?;
    }
    Ok(())
}

/// Loads a tree written by [`write_tree`] **lazily**: pages fault in
/// through the store on demand (the root page loads now). Use
/// [`load_tree_dense`] for the eager path.
pub(crate) fn load_tree_paged(
    store: &NodeStore,
    base: u16,
    leaf_count: usize,
    fanout: usize,
) -> Result<MerkleTree, SnapshotError> {
    let height = tree_height(leaf_count, fanout);
    let mut levels: Vec<PageSource> = Vec::with_capacity(height);
    for l in 0..height {
        levels.push(store.page_source(base + l as u16)?);
    }
    let pager = Arc::new(TreePager::new(levels)) as Arc<dyn DigestPager>;
    Ok(MerkleTree::open_paged_with_cache(
        pager,
        leaf_count,
        fanout,
        PAGE_DIGESTS,
        store_cache_cfg(store),
    )?)
}

/// Writes a dense Merkle B-tree: packed entry records (paged), the
/// per-page first keys (blob), and the digest tree levels.
pub(crate) fn write_btree(
    w: &mut SnapshotWriter,
    bt: &MerkleBTree,
    entries_id: u16,
    keys_id: u16,
    tree_base: u16,
) -> Result<(), SnapshotError> {
    let entries = bt
        .dense_entries()
        .ok_or(SnapshotError::Corrupt("cannot snapshot a paged B-tree"))?;
    let entry_bytes: Vec<u8> = entries.iter().flat_map(|e| e.encode()).collect();
    w.paged(entries_id, &entry_bytes, PAGE_ENTRIES * 16)?;
    let key_bytes: Vec<u8> = entries
        .chunks(PAGE_ENTRIES)
        .flat_map(|c| c[0].key.to_le_bytes())
        .collect();
    w.blob(keys_id, &key_bytes)?;
    write_tree(w, tree_base, bt.tree())
}

/// Loads a B-tree written by [`write_btree`]. On a lazy store the
/// entry array and tree levels stay on disk (page faults on access);
/// on a resident store the dense B-tree is rebuilt from its entries.
pub(crate) fn load_btree(
    store: &NodeStore,
    len: usize,
    fanout: usize,
    entries_id: u16,
    keys_id: u16,
    tree_base: u16,
) -> Result<MerkleBTree, SnapshotError> {
    if store.is_lazy() {
        let tree = load_tree_paged(store, tree_base, len, fanout)?;
        let key_bytes = store.blob(keys_id)?;
        if key_bytes.len() % 8 != 0 || key_bytes.len() / 8 != len.div_ceil(PAGE_ENTRIES) {
            return Err(SnapshotError::Corrupt("first-keys array length mismatch"));
        }
        let first_keys: Vec<u64> = key_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect();
        let pager =
            Arc::new(EntryPageSource(store.page_source(entries_id)?)) as Arc<dyn EntryPager>;
        Ok(MerkleBTree::open_paged_with_cache(
            pager,
            len,
            PAGE_ENTRIES,
            first_keys,
            tree,
            store_cache_cfg(store),
        )?)
    } else {
        let bytes = store.paged_all(entries_id)?;
        if bytes.len() != len * 16 {
            return Err(SnapshotError::Corrupt("entry array length mismatch"));
        }
        let entries: Vec<KeyedEntry> = bytes
            .chunks_exact(16)
            .map(|c| KeyedEntry::decode(c.try_into().expect("chunk is 16 bytes")))
            .collect();
        Ok(MerkleBTree::build(entries, fanout)?)
    }
}

// ---- save -----------------------------------------------------------------

/// Persists a published epoch into `dir/`[`SNAPSHOT_FILE`].
///
/// Everything a provider needs to cold-start — graph, owner public
/// key, signed roots, tuples, Merkle levels, method hints — lands in
/// one snapshot file; returns its path. The owner signs **nothing**
/// here: the signatures made at publish time are persisted as bytes.
pub fn save_package(published: &Published, dir: &Path) -> Result<PathBuf, SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(SNAPSHOT_FILE);
    let mut w = SnapshotWriter::create(&path)?;
    write_sections(&published.package, &published.public_key, &mut w)?;
    w.finish()?;
    Ok(path)
}

/// Emits every snapshot section of a package into `w` — the single
/// section-producing path behind both [`save_package`] (file writer)
/// and [`update_snapshot`] (collector writer for in-place diffing).
fn write_sections(
    pkg: &ProviderPackage,
    public_key: &RsaPublicKey,
    w: &mut SnapshotWriter,
) -> Result<(), SnapshotError> {
    let n = pkg.ads.leaf_count();
    w.blob(SEC_GRAPH, &graph_to_bytes(&pkg.graph))?;
    w.blob(SEC_PUBKEY, &public_key.to_bytes())?;
    w.blob(SEC_NET_SIGNED, &encode_signed_root(&pkg.network_root))?;

    let order_bytes: Vec<u8> = pkg
        .ads
        .order()
        .iter()
        .flat_map(|v| v.0.to_le_bytes())
        .collect();
    w.blob(SEC_NET_ORDER, &order_bytes)?;

    let mut e = Encoder::new();
    e.put_u64(n as u64);
    for v in 0..n as u32 {
        pkg.ads.tuple(NodeId(v)).encode(&mut e);
    }
    w.blob(SEC_NET_TUPLES, e.bytes())?;

    write_tree(w, SEC_NET_TREE, pkg.ads.tree())?;
    pkg.hints.method().snapshot_hints(&pkg.hints, w)
}

/// How [`update_snapshot`] hit the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotRefresh {
    /// Only the dirty pages and sections were rewritten in place.
    InPlace(spnet_store::UpdateStats),
    /// The whole file was rewritten — no snapshot existed yet, or the
    /// incremental path could not apply (section set or geometry
    /// changed beyond the in-place slack).
    FullRewrite,
}

/// Refreshes `dir/`[`SNAPSHOT_FILE`] to match `pkg` after a dynamic
/// update, rewriting **only the dirty sections and pages** in place.
///
/// The package's sections are regenerated in memory and diffed against
/// the existing file ([`spnet_store::SnapshotUpdater`]): an
/// edge-weight update that dirtied a handful of tuples touches the
/// graph/tuple blobs and the few tree pages on the dirty leaves'
/// paths, not the O(n) snapshot. Any incremental failure (missing
/// file, changed section set, a section outgrowing its 4 KiB slack)
/// falls back to a full [`save_package`]-equivalent rewrite, so the
/// call always leaves a loadable snapshot. Mid-update crashes are
/// loud: the store zeroes the header magic until the diff commits.
pub fn update_snapshot(
    pkg: &ProviderPackage,
    public_key: &RsaPublicKey,
    dir: &Path,
) -> Result<SnapshotRefresh, SnapshotError> {
    let mut w = SnapshotWriter::collector();
    write_sections(pkg, public_key, &mut w)?;
    let sections = w.into_sections()?;
    let path = dir.join(SNAPSHOT_FILE);
    let incremental = (|| {
        let mut up = spnet_store::SnapshotUpdater::open(&path)?;
        up.apply(&sections)?;
        up.finish()
    })();
    match incremental {
        Ok(stats) => Ok(SnapshotRefresh::InPlace(stats)),
        Err(_) => {
            std::fs::create_dir_all(dir)?;
            let mut w = SnapshotWriter::create(&path)?;
            write_sections(pkg, public_key, &mut w)?;
            w.finish()?;
            Ok(SnapshotRefresh::FullRewrite)
        }
    }
}

// ---- load -----------------------------------------------------------------

/// A provider package reconstructed from a snapshot — plus the
/// persisted owner public key and the backing store (kept for fault
/// accounting and chunk export).
pub struct LoadedSnapshot {
    /// Serving-ready package, signature-verified against `public_key`.
    pub package: ProviderPackage,
    /// The owner public key persisted at save time.
    pub public_key: RsaPublicKey,
    /// The open store (fault counters live here on the `File` backend).
    pub store: NodeStore,
}

/// Loads `dir/`[`SNAPSHOT_FILE`] into a serving-ready package.
///
/// Performs **zero RSA signing operations**. Every persisted signed
/// root is (i) structurally checked against the loaded structure it
/// authenticates and (ii) RSA-verified against the persisted owner
/// public key, so a snapshot that was tampered with — even one whose
/// storage digests were consistently recomputed — fails typed here.
pub fn load_package(dir: &Path, backend: StoreBackend) -> Result<LoadedSnapshot, SnapshotError> {
    let store = NodeStore::open(&dir.join(SNAPSHOT_FILE), backend)?;

    let graph = graph_from_bytes(&store.blob(SEC_GRAPH)?)?;
    let public_key = RsaPublicKey::from_bytes(&store.blob(SEC_PUBKEY)?)
        .ok_or(SnapshotError::Corrupt("undecodable owner public key"))?;
    let network_root = decode_signed_root(&store.blob(SEC_NET_SIGNED)?)?;
    if network_root.meta.tag != AdsTag::Network {
        return Err(SnapshotError::Corrupt("network root carries a foreign tag"));
    }

    let order_bytes = store.blob(SEC_NET_ORDER)?;
    if order_bytes.len() % 4 != 0 {
        return Err(SnapshotError::Corrupt("ragged order array"));
    }
    let order: Vec<NodeId> = order_bytes
        .chunks_exact(4)
        .map(|c| NodeId(u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes"))))
        .collect();

    let tuple_bytes = store.blob(SEC_NET_TUPLES)?;
    let mut d = Decoder::new(&tuple_bytes);
    let count = d.take_u64()? as usize;
    if count != graph.num_nodes() || count != order.len() {
        return Err(SnapshotError::Corrupt("tuple count mismatch"));
    }
    let mut tuples = Vec::with_capacity(count);
    for i in 0..count {
        let t = ExtendedTuple::decode(&mut d)?;
        if t.id != NodeId(i as u32) {
            return Err(SnapshotError::Corrupt("tuples out of node-id order"));
        }
        tuples.push(Arc::new(t));
    }
    d.finish()?;

    let fanout = network_root.meta.fanout as usize;
    if fanout < 2 {
        return Err(SnapshotError::Corrupt("network fanout below 2"));
    }
    let tree = if store.is_lazy() {
        load_tree_paged(&store, SEC_NET_TREE, count, fanout)?
    } else {
        // Rebuild from the authenticated tuples themselves: hashing
        // the ordered tuple digests reproduces the exact tree the
        // owner built (and cross-checks tuples against the root).
        let leaves: Vec<Digest> = order.iter().map(|v| tuples[v.index()].digest()).collect();
        MerkleTree::build(leaves, fanout)?
    };

    let ads = NetworkAds::from_parts(order, tuples, tree)
        .ok_or(SnapshotError::Corrupt("inconsistent network ADS parts"))?;
    if network_root.meta.leaf_count != ads.leaf_count() as u64 {
        return Err(SnapshotError::Corrupt("network leaf count mismatch"));
    }
    if network_root.root != ads.root() {
        return Err(SnapshotError::Corrupt(
            "network root does not match loaded tree",
        ));
    }
    if !network_root.verify(&public_key) {
        return Err(SnapshotError::BadSignature("network root"));
    }

    let params = MethodParams::decode(&network_root.meta.params)?;
    let method = params.method();
    let hints = method.load_hints(&graph, &store)?;
    for root in hints.aux_roots() {
        if !root.verify(&public_key) {
            return Err(SnapshotError::BadSignature("auxiliary root"));
        }
    }

    Ok(LoadedSnapshot {
        package: ProviderPackage {
            graph,
            ads,
            network_root,
            hints,
        },
        public_key,
        store,
    })
}

// ---- POI set --------------------------------------------------------------

/// Persists a signed POI set into `dir/`[`POI_FILE`]: the signed root
/// plus its Merkle B-tree (entries, first keys, digest levels).
pub fn save_poi_set(
    dir: &Path,
    signed: &SignedRoot,
    tree: &MerkleBTree,
) -> Result<PathBuf, SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(POI_FILE);
    let mut w = SnapshotWriter::create(&path)?;
    w.blob(SEC_POI_SIGNED, &encode_signed_root(signed))?;
    write_btree(&mut w, tree, SEC_POI_ENTRIES, SEC_POI_KEYS, SEC_POI_TREE)?;
    w.finish()?;
    Ok(path)
}

/// A POI set reconstructed from `dir/`[`POI_FILE`].
///
/// The loaded tree is structurally checked against the persisted
/// signed root; RSA verification against the owner key is the
/// caller's job (the key lives in the network snapshot, not here).
pub struct LoadedPoiSet {
    /// The owner-signed POI root.
    pub signed: SignedRoot,
    /// The POI B-tree (paged on the `File` backend).
    pub tree: MerkleBTree,
    /// The open store (fault/eviction counters on the `File` backend).
    pub store: NodeStore,
}

/// Loads a POI set written by [`save_poi_set`].
pub fn load_poi_set(dir: &Path, backend: StoreBackend) -> Result<LoadedPoiSet, SnapshotError> {
    let store = NodeStore::open(&dir.join(POI_FILE), backend)?;
    let signed = decode_signed_root(&store.blob(SEC_POI_SIGNED)?)?;
    if signed.meta.tag != AdsTag::Poi {
        return Err(SnapshotError::Corrupt("POI root carries a foreign tag"));
    }
    let len = signed.meta.leaf_count as usize;
    let fanout = signed.meta.fanout as usize;
    if len == 0 || fanout < 2 {
        return Err(SnapshotError::Corrupt("bad POI tree geometry"));
    }
    let tree = load_btree(
        &store,
        len,
        fanout,
        SEC_POI_ENTRIES,
        SEC_POI_KEYS,
        SEC_POI_TREE,
    )?;
    if tree.root() != signed.root {
        return Err(SnapshotError::Corrupt(
            "POI root does not match loaded tree",
        ));
    }
    Ok(LoadedPoiSet {
        signed,
        tree,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_height_matches_level_chain() {
        assert_eq!(tree_height(1, 2), 1);
        assert_eq!(tree_height(2, 2), 2);
        assert_eq!(tree_height(300, 4), 6); // 300,75,19,5,2,1
        assert_eq!(tree_height(81, 3), 5); // 81,27,9,3,1
    }

    #[test]
    fn digest_bytes_round_trip() {
        let ds: Vec<Digest> = (0u8..5).map(|i| Digest([i; DIGEST_LEN])).collect();
        let bytes = digests_to_bytes(&ds);
        assert_eq!(digests_from_bytes(&bytes).unwrap(), ds);
        assert!(digests_from_bytes(&bytes[..DIGEST_LEN + 1]).is_err());
    }
}
