//! Extended-tuples Φ(v) — the authenticated unit of network data.
//!
//! Equation 1 (base form):
//! `Φ(v) = ⟨v.id, v.x, v.y, {⟨v′, W(v,v′)⟩ | (v,v′) ∈ E}⟩`
//!
//! Equation 4 (LDM) additionally embeds the landmark payload Ψ(v)
//! (quantized, possibly compressed to a `(θ, ε)` reference).
//!
//! Equation 7 (HYP) additionally embeds `v.c` (cell id) and
//! `v.is_border`.
//!
//! A tuple's digest is the SHA-256 of its canonical encoding; the
//! Merkle tree over ordered tuple digests is the network ADS.

use crate::enc::{DecodeError, Decoder, Encoder};
use spnet_crypto::digest::{hash_bytes, Digest};
use spnet_graph::landmark::{CompressedVectors, NodePsi};
use spnet_graph::partition::GridPartition;
use spnet_graph::{Graph, NodeId};

/// The landmark payload inside an LDM extended-tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum PsiPayload {
    /// Full quantized index vector (representative or uncompressed
    /// node); entries are `bits`-bit integers, bit-packed on the wire
    /// (Eq. 5: the whole point of quantization is `b` bits per
    /// distance).
    Full {
        /// Bits per entry `b`.
        bits: u8,
        /// The quantized indices (each `< 2^bits`).
        q: Vec<u32>,
    },
    /// Compressed: reference node `θ` and quantized error `ε`.
    Ref {
        /// Reference node whose full vector stands in for this node's.
        theta: NodeId,
        /// Compression error `ε = ϱ(v, θ) ≤ ξ`.
        eps: f64,
    },
}

/// Packs `bits`-bit values little-endian into bytes.
fn pack_bits(q: &[u32], bits: u8) -> Vec<u8> {
    let total_bits = q.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut pos = 0usize;
    for &v in q {
        for b in 0..bits as usize {
            if (v >> b) & 1 == 1 {
                out[(pos + b) / 8] |= 1 << ((pos + b) % 8);
            }
        }
        pos += bits as usize;
    }
    out
}

/// Unpacks `n` little-endian `bits`-bit values from bytes.
fn unpack_bits(bytes: &[u8], n: usize, bits: u8) -> Option<Vec<u32>> {
    let total_bits = n * bits as usize;
    if bytes.len() != total_bits.div_ceil(8) {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    for _ in 0..n {
        let mut v = 0u32;
        for b in 0..bits as usize {
            if (bytes[(pos + b) / 8] >> ((pos + b) % 8)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        out.push(v);
        pos += bits as usize;
    }
    Some(out)
}

/// The HYP cell attributes of Eq. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellInfo {
    /// Cell identifier `v.c`.
    pub cell: u32,
    /// Border-node flag `v.is_border`.
    pub is_border: bool,
}

/// The extended-tuple Φ(v).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtendedTuple {
    /// Node identifier `v.id`.
    pub id: NodeId,
    /// Coordinate `v.x`.
    pub x: f64,
    /// Coordinate `v.y`.
    pub y: f64,
    /// Adjacency `⟨v′, W(v,v′)⟩`, sorted by neighbor id.
    pub adj: Vec<(NodeId, f64)>,
    /// LDM landmark payload (Eq. 4), if the method uses one.
    pub psi: Option<PsiPayload>,
    /// HYP cell attributes (Eq. 7), if the method uses them.
    pub cell: Option<CellInfo>,
}

impl ExtendedTuple {
    /// The base tuple of Eq. 1 for node `v` of `g`.
    pub fn base(g: &Graph, v: NodeId) -> Self {
        let (x, y) = g.coords(v);
        ExtendedTuple {
            id: v,
            x,
            y,
            adj: g.neighbors(v).collect(),
            psi: None,
            cell: None,
        }
    }

    /// The LDM tuple of Eq. 4: base plus landmark payload.
    pub fn with_psi(g: &Graph, v: NodeId, cv: &CompressedVectors) -> Self {
        let mut t = Self::base(g, v);
        t.psi = Some(match cv.node_psi(v) {
            NodePsi::Full(q) => PsiPayload::Full {
                bits: cv.bits(),
                q: q.clone(),
            },
            NodePsi::Compressed { theta, eps } => PsiPayload::Ref {
                theta: *theta,
                eps: *eps,
            },
        });
        t
    }

    /// The HYP tuple of Eq. 7: base plus cell attributes.
    pub fn with_cell(g: &Graph, v: NodeId, part: &GridPartition) -> Self {
        let mut t = Self::base(g, v);
        t.cell = Some(CellInfo {
            cell: part.cell_of(v),
            is_border: part.is_border(v),
        });
        t
    }

    /// Canonical encoding (digest pre-image and wire form).
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.id.0);
        e.put_f64(self.x);
        e.put_f64(self.y);
        e.put_u32(self.adj.len() as u32);
        for &(v, w) in &self.adj {
            e.put_u32(v.0);
            e.put_f64(w);
        }
        match &self.psi {
            None => e.put_u8(0),
            Some(PsiPayload::Full { bits, q }) => {
                e.put_u8(1);
                e.put_u8(*bits);
                e.put_u32(q.len() as u32);
                e.put_raw(&pack_bits(q, *bits));
            }
            Some(PsiPayload::Ref { theta, eps }) => {
                e.put_u8(2);
                e.put_u32(theta.0);
                e.put_f64(*eps);
            }
        }
        match &self.cell {
            None => e.put_u8(0),
            Some(ci) => {
                e.put_u8(1);
                e.put_u32(ci.cell);
                e.put_bool(ci.is_border);
            }
        }
    }

    /// Decodes one tuple from the cursor.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let id = NodeId(d.take_u32()?);
        let x = d.take_f64()?;
        let y = d.take_f64()?;
        let deg = d.take_u32()? as usize;
        if deg > 1 << 24 {
            return Err(DecodeError::LengthOverflow(deg as u64));
        }
        let mut adj = Vec::with_capacity(deg);
        for _ in 0..deg {
            adj.push((NodeId(d.take_u32()?), d.take_f64()?));
        }
        let psi = match d.take_u8()? {
            0 => None,
            1 => {
                let bits = d.take_u8()?;
                if !(1..=31).contains(&bits) {
                    return Err(DecodeError::BadTag(bits));
                }
                let c = d.take_u32()? as usize;
                if c > 1 << 20 {
                    return Err(DecodeError::LengthOverflow(c as u64));
                }
                let n_bytes = (c * bits as usize).div_ceil(8);
                let raw = d.take_raw(n_bytes)?;
                let q = unpack_bits(raw, c, bits).ok_or(DecodeError::BadTag(1))?;
                Some(PsiPayload::Full { bits, q })
            }
            2 => Some(PsiPayload::Ref {
                theta: NodeId(d.take_u32()?),
                eps: d.take_f64()?,
            }),
            t => return Err(DecodeError::BadTag(t)),
        };
        let cell = match d.take_u8()? {
            0 => None,
            1 => Some(CellInfo {
                cell: d.take_u32()?,
                is_border: d.take_bool()?,
            }),
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(ExtendedTuple {
            id,
            x,
            y,
            adj,
            psi,
            cell,
        })
    }

    /// Size of the canonical encoding in bytes.
    pub fn size_bytes(&self) -> usize {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.len()
    }

    /// The digest `H(Φ(v))`.
    pub fn digest(&self) -> Digest {
        let mut e = Encoder::new();
        self.encode(&mut e);
        hash_bytes(e.bytes())
    }

    /// Weight of the edge to `v`, if adjacent.
    pub fn edge_to(&self, v: NodeId) -> Option<f64> {
        self.adj
            .binary_search_by_key(&v, |&(u, _)| u)
            .ok()
            .map(|i| self.adj[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spnet_graph::gen::grid_network;
    use spnet_graph::landmark::{
        select_landmarks, CompressedVectors, CompressionStrategy, LandmarkStrategy,
        LandmarkVectors, QuantizedVectors,
    };

    fn sample_graph() -> Graph {
        grid_network(6, 6, 1.2, 100)
    }

    #[test]
    fn base_tuple_matches_graph() {
        let g = sample_graph();
        for v in g.nodes() {
            let t = ExtendedTuple::base(&g, v);
            assert_eq!(t.id, v);
            assert_eq!(t.adj.len(), g.degree(v));
            assert_eq!((t.x, t.y), g.coords(v));
            assert!(
                t.adj.windows(2).all(|w| w[0].0 < w[1].0),
                "sorted adjacency"
            );
        }
    }

    #[test]
    fn encode_decode_round_trip_base() {
        let g = sample_graph();
        for v in g.nodes().take(10) {
            let t = ExtendedTuple::base(&g, v);
            let mut e = Encoder::new();
            t.encode(&mut e);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let back = ExtendedTuple::decode(&mut d).unwrap();
            d.finish().unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn encode_decode_round_trip_psi_and_cell() {
        let g = sample_graph();
        let lms = select_landmarks(&g, 4, LandmarkStrategy::Farthest, 101);
        let lv = LandmarkVectors::compute(&g, &lms);
        let qv = QuantizedVectors::quantize(&lv, 8);
        let cv = CompressedVectors::build(&g, &qv, 500.0, CompressionStrategy::HilbertSweep);
        let part = GridPartition::build(&g, 3);
        for v in g.nodes() {
            for t in [
                ExtendedTuple::with_psi(&g, v, &cv),
                ExtendedTuple::with_cell(&g, v, &part),
            ] {
                let mut e = Encoder::new();
                t.encode(&mut e);
                let bytes = e.into_bytes();
                let mut d = Decoder::new(&bytes);
                let back = ExtendedTuple::decode(&mut d).unwrap();
                d.finish().unwrap();
                assert_eq!(back, t);
            }
        }
    }

    #[test]
    fn digest_changes_with_any_field() {
        let g = sample_graph();
        let t = ExtendedTuple::base(&g, NodeId(5));
        let base = t.digest();
        let mut t2 = t.clone();
        t2.x += 1.0;
        assert_ne!(t2.digest(), base);
        let mut t3 = t.clone();
        t3.adj[0].1 += 0.001; // tamper an edge weight
        assert_ne!(t3.digest(), base);
        let mut t4 = t.clone();
        t4.adj.pop(); // drop an edge
        assert_ne!(t4.digest(), base);
        let mut t5 = t.clone();
        t5.id = NodeId(6);
        assert_ne!(t5.digest(), base);
    }

    #[test]
    fn psi_affects_digest() {
        let g = sample_graph();
        let mut t = ExtendedTuple::base(&g, NodeId(3));
        let d0 = t.digest();
        t.psi = Some(PsiPayload::Full {
            bits: 8,
            q: vec![1, 2, 3],
        });
        let d1 = t.digest();
        t.psi = Some(PsiPayload::Ref {
            theta: NodeId(9),
            eps: 2.0,
        });
        let d2 = t.digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }

    #[test]
    fn cell_affects_digest() {
        let g = sample_graph();
        let mut t = ExtendedTuple::base(&g, NodeId(3));
        let d0 = t.digest();
        t.cell = Some(CellInfo {
            cell: 4,
            is_border: false,
        });
        let d1 = t.digest();
        t.cell = Some(CellInfo {
            cell: 4,
            is_border: true,
        });
        let d2 = t.digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2, "is_border must be authenticated");
    }

    #[test]
    fn edge_to_lookup() {
        let g = sample_graph();
        let v = NodeId(7);
        let t = ExtendedTuple::base(&g, v);
        for (u, w) in g.neighbors(v) {
            assert_eq!(t.edge_to(u), Some(w));
        }
        assert_eq!(t.edge_to(v), None);
    }

    #[test]
    fn size_accounting_positive_and_monotone() {
        let g = sample_graph();
        let t = ExtendedTuple::base(&g, NodeId(0));
        let s0 = t.size_bytes();
        assert!(s0 >= 4 + 8 + 8 + 4 + 2);
        let mut t2 = t.clone();
        t2.psi = Some(PsiPayload::Full {
            bits: 12,
            q: vec![0; 16],
        });
        assert!(t2.size_bytes() > s0, "psi payload adds bytes");
        let mut t3 = t.clone();
        t3.psi = Some(PsiPayload::Ref {
            theta: NodeId(1),
            eps: 0.5,
        });
        assert!(
            t3.size_bytes() < t2.size_bytes(),
            "compression shrinks tuples"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut d = Decoder::new(&[0xFF; 3]);
        assert!(ExtendedTuple::decode(&mut d).is_err());
    }
}
