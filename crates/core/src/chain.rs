//! Signature chaining — the related-work baseline for integrity proofs
//! (Section II-B; \[14, 15, 16\]).
//!
//! Instead of one Merkle tree with a single signed root, the owner
//! signs every tuple *chained* with its neighbors in the ordering:
//! `sigᵢ = Sign(H(dᵢ₋₁ ∘ dᵢ ∘ dᵢ₊₁))` where `dᵢ = H(Φ(vᵢ))` and the
//! boundary digests are zero. A proof for a tuple set carries one
//! signature per tuple plus the digests of out-of-set neighbors.
//!
//! The paper cites \[4\] for demonstrating the superiority of
//! MHT-based authentication over signature chaining; the
//! `ablation_chain` experiment in `spnet-bench` reproduces that
//! comparison for shortest-path proofs: chaining pays one RSA
//! signature (~32–64 B + an expensive verification) *per tuple* where
//! the MHT pays a few shared digests.

use crate::ads::NetworkAds;
use crate::enc::Encoder;
use crate::error::VerifyError;
use crate::tuple::ExtendedTuple;
use spnet_crypto::digest::{hash_bytes, Digest};
use spnet_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use spnet_graph::NodeId;
use std::collections::HashMap;

/// The chain signing pre-image for position `i`.
fn chain_digest(prev: &Digest, cur: &Digest, next: &Digest) -> Digest {
    let mut e = Encoder::new();
    e.put_raw(prev.as_bytes());
    e.put_raw(cur.as_bytes());
    e.put_raw(next.as_bytes());
    hash_bytes(e.bytes())
}

/// Owner-side: per-tuple chained signatures over the ADS ordering.
#[derive(Debug, Clone)]
pub struct ChainedAds {
    /// Signature per leaf position.
    sigs: Vec<RsaSignature>,
    /// Tuple digest per leaf position.
    digests: Vec<Digest>,
    /// Construction seconds (|V| RSA signatures dominate).
    pub build_seconds: f64,
}

impl ChainedAds {
    /// Signs every tuple of the (already ordered) network ADS.
    pub fn build(ads: &NetworkAds, keypair: &RsaKeyPair) -> Self {
        let start = std::time::Instant::now();
        let n = ads.leaf_count();
        // digests in leaf order
        let mut digests = vec![Digest::ZERO; n];
        for v in 0..n as u32 {
            let pos = ads.position(NodeId(v)) as usize;
            digests[pos] = ads.tuple(NodeId(v)).digest();
        }
        let at = |i: isize| -> Digest {
            if i < 0 || i as usize >= n {
                Digest::ZERO
            } else {
                digests[i as usize]
            }
        };
        let sigs = (0..n as isize)
            .map(|i| keypair.sign(&chain_digest(&at(i - 1), &at(i), &at(i + 1))))
            .collect();
        ChainedAds {
            sigs,
            digests,
            build_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Builds the chaining proof for a set of leaf positions: one
    /// signature per position plus boundary digests for out-of-set
    /// neighbors.
    pub fn prove(&self, positions: &[u32]) -> ChainProof {
        let set: std::collections::BTreeSet<u32> = positions.iter().copied().collect();
        let n = self.sigs.len() as u32;
        let mut boundary = Vec::new();
        for &p in &set {
            for nb in [p.wrapping_sub(1), p + 1] {
                if nb < n && !set.contains(&nb) {
                    boundary.push((nb, self.digests[nb as usize]));
                }
            }
        }
        boundary.sort_by_key(|&(p, _)| p);
        boundary.dedup_by_key(|&mut (p, _)| p);
        ChainProof {
            sigs: set
                .iter()
                .map(|&p| (p, self.sigs[p as usize].clone()))
                .collect(),
            boundary,
        }
    }
}

/// A signature-chaining integrity proof.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainProof {
    /// `(position, signature)` per proven tuple.
    pub sigs: Vec<(u32, RsaSignature)>,
    /// Digests of out-of-set chain neighbors.
    pub boundary: Vec<(u32, Digest)>,
}

impl ChainProof {
    /// Proof size in bytes (position + signature per tuple, position +
    /// digest per boundary entry).
    pub fn size_bytes(&self) -> usize {
        self.sigs
            .iter()
            .map(|(_, s)| 4 + s.size_bytes())
            .sum::<usize>()
            + self.boundary.len() * (4 + 32)
    }

    /// Number of proof items (signatures + boundary digests).
    pub fn num_items(&self) -> usize {
        self.sigs.len() + self.boundary.len()
    }

    /// Client-side verification: every tuple's chained signature must
    /// check out against the owner's key.
    ///
    /// `tuples` are `(position, tuple)` pairs matching `sigs` order.
    pub fn verify(
        &self,
        tuples: &[(u32, &ExtendedTuple)],
        pk: &RsaPublicKey,
        leaf_count: u32,
    ) -> Result<(), VerifyError> {
        if tuples.len() != self.sigs.len() {
            return Err(VerifyError::MalformedIntegrityProof(format!(
                "{} tuples but {} signatures",
                tuples.len(),
                self.sigs.len()
            )));
        }
        // Digest map: proven tuples + boundary digests.
        let mut digest_at: HashMap<u32, Digest> = HashMap::new();
        for (p, t) in tuples {
            digest_at.insert(*p, t.digest());
        }
        for (p, d) in &self.boundary {
            digest_at.entry(*p).or_insert(*d);
        }
        let get = |i: i64| -> Result<Digest, VerifyError> {
            if i < 0 || i >= leaf_count as i64 {
                return Ok(Digest::ZERO);
            }
            digest_at.get(&(i as u32)).copied().ok_or_else(|| {
                VerifyError::MalformedIntegrityProof(format!("missing digest at {i}"))
            })
        };
        for ((p, sig), (tp, _)) in self.sigs.iter().zip(tuples) {
            if p != tp {
                return Err(VerifyError::MalformedIntegrityProof(
                    "position order mismatch".into(),
                ));
            }
            let i = *p as i64;
            let msg = chain_digest(&get(i - 1)?, &get(i)?, &get(i + 1)?);
            if !pk.verify(&msg, sig) {
                return Err(VerifyError::BadSignature);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;
    use spnet_graph::order::NodeOrdering;
    use spnet_graph::Graph;

    fn setup() -> (Graph, NetworkAds, ChainedAds, RsaKeyPair) {
        let g = grid_network(7, 7, 1.15, 1500);
        let tuples: Vec<ExtendedTuple> = g.nodes().map(|v| ExtendedTuple::base(&g, v)).collect();
        let ads = NetworkAds::build(&g, tuples, NodeOrdering::Hilbert, 2, 1501);
        let mut rng = StdRng::seed_from_u64(1502);
        let kp = RsaKeyPair::generate(&mut rng, 256);
        let chained = ChainedAds::build(&ads, &kp);
        (g, ads, chained, kp)
    }

    fn proof_for(
        ads: &NetworkAds,
        chained: &ChainedAds,
        nodes: &[NodeId],
    ) -> (ChainProof, Vec<u32>) {
        let mut positions: Vec<u32> = nodes.iter().map(|&v| ads.position(v)).collect();
        positions.sort();
        (chained.prove(&positions), positions)
    }

    #[test]
    fn honest_proof_verifies() {
        let (_, ads, chained, kp) = setup();
        let nodes: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let (proof, positions) = proof_for(&ads, &chained, &nodes);
        let mut pairs: Vec<(u32, &ExtendedTuple)> = Vec::new();
        for &p in &positions {
            // find the node at position p
            let v = (0..ads.leaf_count() as u32)
                .map(NodeId)
                .find(|&v| ads.position(v) == p)
                .unwrap();
            pairs.push((p, ads.tuple(v)));
        }
        proof
            .verify(&pairs, kp.public_key(), ads.leaf_count() as u32)
            .unwrap();
    }

    #[test]
    fn tampered_tuple_rejected() {
        let (_, ads, chained, kp) = setup();
        let v = NodeId(3);
        let (proof, positions) = proof_for(&ads, &chained, &[v]);
        let mut evil = ads.tuple(v).clone();
        evil.adj[0].1 *= 0.5;
        let pairs = vec![(positions[0], &evil)];
        assert_eq!(
            proof.verify(&pairs, kp.public_key(), ads.leaf_count() as u32),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn wrong_position_rejected() {
        let (_, ads, chained, kp) = setup();
        let v = NodeId(3);
        let (proof, positions) = proof_for(&ads, &chained, &[v]);
        let wrong = (positions[0] + 1) % ads.leaf_count() as u32;
        let pairs = vec![(wrong, ads.tuple(v))];
        assert!(proof
            .verify(&pairs, kp.public_key(), ads.leaf_count() as u32)
            .is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let (_, ads, chained, _) = setup();
        let v = NodeId(3);
        let (proof, positions) = proof_for(&ads, &chained, &[v]);
        let mut rng = StdRng::seed_from_u64(1503);
        let other = RsaKeyPair::generate(&mut rng, 256);
        let pairs = vec![(positions[0], ads.tuple(v))];
        assert_eq!(
            proof.verify(&pairs, other.public_key(), ads.leaf_count() as u32),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn contiguous_run_shares_boundaries() {
        // A run of k consecutive positions needs only 2 boundary
        // digests — the chaining analogue of Merkle locality.
        let (_, ads, chained, _) = setup();
        let n = ads.leaf_count() as u32;
        let positions: Vec<u32> = (10..20.min(n)).collect();
        let proof = chained.prove(&positions);
        assert_eq!(proof.boundary.len(), 2);
        assert_eq!(proof.sigs.len(), positions.len());
    }

    #[test]
    fn chain_proof_larger_than_merkle_proof() {
        // The ablation's headline: per-tuple signatures dwarf shared
        // Merkle digests for realistic proof sets.
        let (_, ads, chained, _) = setup();
        let nodes: Vec<NodeId> = (0..20u32).map(NodeId).collect();
        let (chain_proof, _) = proof_for(&ads, &chained, &nodes);
        let merkle_proof = ads.prove_nodes(nodes.iter().copied()).unwrap();
        assert!(
            chain_proof.size_bytes() > merkle_proof.size_bytes(),
            "chain {} ≤ merkle {}",
            chain_proof.size_bytes(),
            merkle_proof.size_bytes()
        );
    }

    #[test]
    fn boundary_edges_of_ordering_use_zero_digest() {
        // First and last chain positions verify with ZERO sentinels.
        let (_, ads, chained, kp) = setup();
        let n = ads.leaf_count() as u32;
        for p in [0u32, n - 1] {
            let v = (0..n).map(NodeId).find(|&v| ads.position(v) == p).unwrap();
            let (proof, _) = proof_for(&ads, &chained, &[v]);
            let pairs = vec![(p, ads.tuple(v))];
            proof.verify(&pairs, kp.public_key(), n).unwrap();
        }
    }
}
