//! Attack simulation: the malicious-provider behaviours the protocol
//! must detect (Section I's threat model).
//!
//! Each [`Attack`] takes an honest answer and mutates it the way a
//! compromised or profit-driven provider would; the test-suite and the
//! `tamper_detection` example assert that clients reject every variant.

use crate::proof::Answer;
use spnet_graph::{Graph, NodeId};

/// A malicious-provider behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Report a longer (e.g. sponsor-friendly) path, with its honest
    /// length, without touching the proofs.
    SuboptimalPath,
    /// Understate the reported path's distance (pretend the detour is
    /// as short as the optimum).
    UnderstatedDistance,
    /// Halve one edge weight inside a shipped tuple (fake a shortcut).
    TamperedWeight,
    /// Drop one non-endpoint tuple from a subgraph proof.
    DroppedTuple,
    /// Splice a non-existent edge into the reported path.
    FakeEdge,
    /// Swap the reported path for a path between different endpoints.
    WrongEndpoints,
}

/// All attacks, for exhaustive test loops.
pub const ALL_ATTACKS: [Attack; 6] = [
    Attack::SuboptimalPath,
    Attack::UnderstatedDistance,
    Attack::TamperedWeight,
    Attack::DroppedTuple,
    Attack::FakeEdge,
    Attack::WrongEndpoints,
];

/// Applies `attack` to an honest `answer`.
///
/// Returns `None` when the attack is not expressible for this answer
/// (e.g. no alternative path exists for [`Attack::SuboptimalPath`], or
/// the proof carries no droppable tuple).
pub fn apply(attack: Attack, g: &Graph, answer: &Answer) -> Option<Answer> {
    let mut evil = answer.clone();
    match attack {
        Attack::SuboptimalPath => {
            // Longest-detour heuristic: take the shortest path avoiding
            // the second node of the honest path.
            let honest = &answer.path;
            if honest.nodes.len() < 3 {
                return None;
            }
            let avoid = honest.nodes[1];
            let detour = shortest_avoiding(g, honest.source(), honest.target(), avoid)?;
            if detour.distance <= honest.distance * (1.0 + 1e-9) {
                return None; // equally short — not an attack
            }
            evil.path = detour;
            Some(evil)
        }
        Attack::UnderstatedDistance => {
            evil.path.distance *= 0.9;
            Some(evil)
        }
        Attack::TamperedWeight => {
            let tuples = evil.sp.tuples_mut();
            let t = tuples.iter_mut().find(|t| !t.adj.is_empty())?;
            // Proof tuples are shared handles into the ADS table;
            // copy-on-write so the attack never corrupts the provider.
            std::sync::Arc::make_mut(t).adj[0].1 *= 0.5;
            Some(evil)
        }
        Attack::DroppedTuple => {
            let (src, tgt) = (answer.path.source(), answer.path.target());
            let tuples = evil.sp.tuples_mut();
            let idx = tuples.iter().position(|t| t.id != src && t.id != tgt)?;
            tuples.remove(idx);
            evil.integrity.positions.remove(idx);
            Some(evil)
        }
        Attack::FakeEdge => {
            // Shortcut the path: remove an interior node, pretending the
            // two nodes around it are adjacent.
            if evil.path.nodes.len() < 3 {
                return None;
            }
            let mid = evil.path.nodes.len() / 2;
            evil.path.nodes.remove(mid);
            Some(evil)
        }
        Attack::WrongEndpoints => {
            let last = *evil.path.nodes.last()?;
            let other = g
                .neighbors(last)
                .map(|(u, _)| u)
                .find(|u| !evil.path.nodes.contains(u))?;
            evil.path.nodes.push(other);
            Some(evil)
        }
    }
}

/// Shortest path from `s` to `t` in `g` that avoids node `avoid`.
fn shortest_avoiding(g: &Graph, s: NodeId, t: NodeId, avoid: NodeId) -> Option<spnet_graph::Path> {
    use spnet_graph::ofloat::OrderedF64;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(Reverse((OrderedF64::new(0.0), s.0)));
    while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
        let v = NodeId(v);
        if d > dist[v.index()] {
            continue;
        }
        if v == t {
            break;
        }
        for (u, w) in g.neighbors(v) {
            if u == avoid {
                continue;
            }
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                parent[u.index()] = Some(v);
                heap.push(Reverse((OrderedF64::new(nd), u.0)));
            }
        }
    }
    if dist[t.index()].is_infinite() {
        return None;
    }
    let mut nodes = vec![t];
    let mut cur = t;
    while let Some(p) = parent[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    Some(spnet_graph::Path {
        nodes,
        distance: dist[t.index()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::methods::{LdmConfig, MethodConfig};
    use crate::owner::{DataOwner, SetupConfig};
    use crate::provider::ServiceProvider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spnet_graph::gen::grid_network;

    fn check_all_attacks_rejected(method: MethodConfig) {
        let g = grid_network(9, 9, 1.2, 1000);
        let mut rng = StdRng::seed_from_u64(1001);
        let p = DataOwner::publish(&g, &method, &SetupConfig::default(), &mut rng);
        let provider = ServiceProvider::new(p.package);
        let client = Client::new(p.public_key);
        let (s, t) = (NodeId(0), NodeId(80));
        let honest = provider.answer(s, t).unwrap();
        client
            .verify(s, t, &honest)
            .expect("honest answer accepted");
        let mut applied = 0;
        for attack in ALL_ATTACKS {
            let Some(evil) = apply(attack, &g, &honest) else {
                continue;
            };
            applied += 1;
            let res = client.verify(s, t, &evil);
            assert!(
                res.is_err(),
                "{}: attack {attack:?} was NOT detected",
                method.name()
            );
        }
        assert!(
            applied >= 4,
            "{}: too few attacks expressible",
            method.name()
        );
    }

    #[test]
    fn dij_detects_all_attacks() {
        check_all_attacks_rejected(MethodConfig::Dij);
    }

    #[test]
    fn full_detects_all_attacks() {
        check_all_attacks_rejected(MethodConfig::Full {
            use_floyd_warshall: false,
        });
    }

    #[test]
    fn ldm_detects_all_attacks() {
        check_all_attacks_rejected(MethodConfig::Ldm(LdmConfig {
            landmarks: 8,
            ..LdmConfig::default()
        }));
    }

    #[test]
    fn hyp_detects_all_attacks() {
        check_all_attacks_rejected(MethodConfig::Hyp { cells: 9 });
    }

    #[test]
    fn suboptimal_path_specifically_caught_as_not_shortest() {
        let g = grid_network(9, 9, 1.25, 1002);
        let mut rng = StdRng::seed_from_u64(1003);
        let p = DataOwner::publish(&g, &MethodConfig::Dij, &SetupConfig::default(), &mut rng);
        let provider = ServiceProvider::new(p.package);
        let client = Client::new(p.public_key);
        let (s, t) = (NodeId(0), NodeId(80));
        let honest = provider.answer(s, t).unwrap();
        if let Some(evil) = apply(Attack::SuboptimalPath, &g, &honest) {
            let err = client.verify(s, t, &evil).unwrap_err();
            assert!(
                matches!(
                    err,
                    crate::error::VerifyError::NotShortest { .. }
                        | crate::error::VerifyError::MissingTuple(_)
                ),
                "unexpected error {err:?}"
            );
        }
    }
}
