//! Verification failure taxonomy.

use crate::update::UpdateError;
use spnet_graph::NodeId;

/// Why a client rejected an answer.
///
/// Each variant corresponds to a distinct attack or malfunction the
/// protocol must detect; the tamper test-suite exercises all of them.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A signed ADS root failed RSA verification.
    BadSignature,
    /// Reconstructed Merkle root does not match the signed root.
    RootMismatch,
    /// The Merkle proof was structurally invalid (missing/extra
    /// digests).
    MalformedIntegrityProof(String),
    /// The reported path's endpoints differ from the query.
    WrongEndpoints {
        expected: (NodeId, NodeId),
        got: (NodeId, NodeId),
    },
    /// A consecutive pair on the reported path is not an edge of any
    /// authenticated tuple.
    FakeEdge { from: NodeId, to: NodeId },
    /// The reported path's summed weight differs from its claimed
    /// distance.
    InconsistentPathDistance { claimed: f64, recomputed: f64 },
    /// The shortest-path proof's recomputed optimal distance differs
    /// from the reported path distance — the path is not shortest (or
    /// the proof subgraph was padded/trimmed).
    NotShortest { reported: f64, proven: f64 },
    /// The verification search needed a tuple absent from ΓS
    /// (Section IV-A's validity check).
    MissingTuple(NodeId),
    /// A tuple's id is inconsistent with where the proof placed it.
    TupleIdMismatch { expected: NodeId, got: NodeId },
    /// A required materialized distance key is absent (FULL / HYP).
    MissingDistanceKey { a: NodeId, b: NodeId },
    /// A proof part the method requires was not supplied.
    MissingProofPart(&'static str),
    /// HYP: a supplied cell tuple's same-cell neighbor is missing —
    /// the in-cell closure is incomplete.
    IncompleteCell { node: NodeId, missing: NodeId },
    /// HYP: the source/target node's tuple is missing from the coarse
    /// proof.
    MissingEndpointTuple(NodeId),
    /// HYP: target unreachable through the supplied coarse graph.
    CoarseUnreachable,
    /// LDM: a referenced representative's full vector is missing.
    MissingReference { node: NodeId, theta: NodeId },
    /// LDM: a tuple carries no landmark payload although the method
    /// requires one.
    MissingPsi(NodeId),
    /// The search on the proof subgraph never reached the target.
    TargetUnreachable,
    /// Signed metadata is inconsistent with the proof contents.
    MetaMismatch(&'static str),
    /// Range: a node provably within the queried radius was omitted
    /// from the claimed result set (completeness violation — the
    /// client found a relaxation escaping the claimed ball).
    RangeIncomplete {
        node: NodeId,
        dist: f64,
        radius: f64,
    },
    /// Range: a claimed member lies farther than the queried radius,
    /// or its distance could not be certified within the claimed set.
    RangeOverclaim {
        node: NodeId,
        dist: f64,
        radius: f64,
    },
    /// Range: a member's claimed distance differs from the client's
    /// recomputation over the authenticated subgraph.
    RangeDistanceMismatch {
        node: NodeId,
        claimed: f64,
        recomputed: f64,
    },
    /// Range: the answer was assembled for a different radius than the
    /// client queried.
    RangeRadiusMismatch { requested: f64, answered: f64 },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadSignature => write!(f, "owner signature invalid"),
            VerifyError::RootMismatch => write!(f, "merkle root mismatch"),
            VerifyError::MalformedIntegrityProof(m) => write!(f, "malformed integrity proof: {m}"),
            VerifyError::WrongEndpoints { expected, got } => write!(
                f,
                "endpoints ({}, {}) do not match query ({}, {})",
                got.0, got.1, expected.0, expected.1
            ),
            VerifyError::FakeEdge { from, to } => write!(f, "path uses non-edge ({from}, {to})"),
            VerifyError::InconsistentPathDistance {
                claimed,
                recomputed,
            } => {
                write!(f, "path distance {claimed} ≠ recomputed {recomputed}")
            }
            VerifyError::NotShortest { reported, proven } => {
                write!(
                    f,
                    "reported distance {reported} but proof shows optimum {proven}"
                )
            }
            VerifyError::MissingTuple(v) => write!(f, "proof misses required tuple Φ({v})"),
            VerifyError::TupleIdMismatch { expected, got } => {
                write!(f, "tuple id {got} where {expected} expected")
            }
            VerifyError::MissingDistanceKey { a, b } => {
                write!(f, "materialized distance for ({a}, {b}) missing")
            }
            VerifyError::MissingProofPart(p) => write!(f, "missing proof part: {p}"),
            VerifyError::IncompleteCell { node, missing } => {
                write!(
                    f,
                    "cell closure incomplete: {node} lists in-cell neighbor {missing}"
                )
            }
            VerifyError::MissingEndpointTuple(v) => {
                write!(f, "coarse proof misses endpoint tuple Φ({v})")
            }
            VerifyError::CoarseUnreachable => write!(f, "target unreachable via coarse graph"),
            VerifyError::MissingReference { node, theta } => {
                write!(f, "reference vector of {theta} (for {node}) missing")
            }
            VerifyError::MissingPsi(v) => write!(f, "tuple Φ({v}) lacks landmark payload"),
            VerifyError::TargetUnreachable => write!(f, "target not reached on proof subgraph"),
            VerifyError::MetaMismatch(m) => write!(f, "signed metadata mismatch: {m}"),
            VerifyError::RangeIncomplete { node, dist, radius } => {
                write!(
                    f,
                    "range answer incomplete: {node} reachable at {dist} ≤ radius {radius} but omitted"
                )
            }
            VerifyError::RangeOverclaim { node, dist, radius } => {
                write!(
                    f,
                    "range answer overclaims: {node} at {dist} beyond radius {radius}"
                )
            }
            VerifyError::RangeDistanceMismatch {
                node,
                claimed,
                recomputed,
            } => {
                write!(
                    f,
                    "range distance for {node}: claimed {claimed} ≠ recomputed {recomputed}"
                )
            }
            VerifyError::RangeRadiusMismatch {
                requested,
                answered,
            } => {
                write!(
                    f,
                    "range radius {answered} does not match query {requested}"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Errors on the service-provider side (answering, not verifying).
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderError {
    /// No path exists between the queried nodes.
    Unreachable { source: NodeId, target: NodeId },
    /// The query referenced an unknown node.
    UnknownNode(NodeId),
    /// Internal proof assembly failed (indicates a bug, kept explicit
    /// instead of panicking so harnesses can report it).
    ProofAssembly(String),
    /// A dynamic edge update failed; the typed cause is preserved so
    /// callers can match on it (e.g. [`UpdateError::NoSuchEdge`]).
    Update(UpdateError),
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderError::Unreachable { source, target } => {
                write!(f, "{target} unreachable from {source}")
            }
            ProviderError::UnknownNode(v) => write!(f, "unknown node {v}"),
            ProviderError::ProofAssembly(m) => write!(f, "proof assembly failed: {m}"),
            ProviderError::Update(e) => write!(f, "edge update failed: {e}"),
        }
    }
}

impl std::error::Error for ProviderError {}

impl From<UpdateError> for ProviderError {
    fn from(e: UpdateError) -> Self {
        ProviderError::Update(e)
    }
}
