//! The crate's single parallel/sequential fan-out point.
//!
//! Every data-parallel loop in this crate (batch proving/verification,
//! FULL row hashing, HYP border Dijkstras) routes through
//! [`map_jobs`], so the `parallel` feature flag is interpreted in
//! exactly one place and the sequential fallback cannot drift.
//!
//! Note on the offline `rayon` stand-in (`crates/compat/rayon`): it
//! spawns scoped OS threads per call rather than keeping a worker
//! pool, so thread-local [`spnet_graph::search::SearchWorkspace`]
//! reuse holds *within* one `map_jobs` call but not across calls.
//! With the real rayon (a persistent pool) reuse extends across the
//! whole query stream; the results are identical either way.

/// Maps `jobs` in input order, fanning out over threads when the
/// `parallel` feature is on (default). The sequential fallback
/// produces identical results — asserted by
/// `tests/perf_equivalence.rs`, which CI builds both ways.
pub(crate) fn map_jobs<T: Sync, R: Send>(jobs: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        jobs.par_iter().map(f).collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        jobs.iter().map(f).collect()
    }
}
